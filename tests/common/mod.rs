//! Shared generator for the seeded property-style test suites.
//!
//! The workspace builds without a route to a crates registry, so
//! `proptest` is unavailable; these suites keep the same
//! oracle-vs-kernel structure by drawing `CASES` random inputs per
//! property from the workspace's own deterministic [`Xoshiro256`]
//! generator. Failures print the case seed, so a red case reproduces
//! exactly.

#![allow(dead_code)]

use decarb::traces::rng::Xoshiro256;

/// Number of random cases per property (matches the proptest config the
/// suite used originally).
pub const CASES: u64 = 64;

/// A deterministic input generator for one property case.
pub struct Gen {
    rng: Xoshiro256,
}

impl Gen {
    /// Creates the generator for `(property, case)`; seeds never collide
    /// across properties because the label is hashed in.
    pub fn new(property: &str, case: u64) -> Self {
        Self {
            rng: Xoshiro256::from_label(property, case),
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform_in(lo, hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.rng.below(hi - lo)
    }

    /// A vector of `len ∈ [min_len, max_len)` uniform samples from
    /// `[lo, hi)`.
    pub fn vec_in(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}
