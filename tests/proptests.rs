//! Property-based tests over the core data structures and kernels.
//!
//! Each scheduling kernel is checked against a brute-force oracle on
//! arbitrary inputs, and the capacity/greener transforms are checked for
//! their conservation and bounding invariants.

use decarb::core::capacity::{water_filling, IdleCapacity};
use decarb::core::greener::{greener_trace, ADDED_RENEWABLE_CI};
use decarb::core::ksmallest::SlidingKSmallest;
use decarb::core::temporal::TemporalPlanner;
use decarb::stats::fft::{fft, ifft, Complex};
use decarb::stats::kmeans::kmeans;
use decarb::traces::{Hour, Region, TimeSeries};
use proptest::prelude::*;

/// Strategy: a positive carbon trace of 30–300 hourly samples.
fn trace_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..900.0, 30..300)
}

/// Oracle: sum of the k smallest values of a slice.
fn naive_k_sum(values: &[f64], k: usize) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.iter().take(k).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sliding_k_smallest_matches_oracle(
        values in trace_strategy(),
        k in 1usize..8,
        window in 4usize..40,
    ) {
        let mut s = SlidingKSmallest::new(k);
        for i in 0..values.len() {
            s.insert(values[i]);
            if i >= window {
                s.remove(values[i - window]);
            }
            let lo = (i + 1).saturating_sub(window);
            let expected = naive_k_sum(&values[lo..=i], k);
            prop_assert!((s.k_sum() - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn deferral_sweep_matches_naive(
        values in trace_strategy(),
        slots in 1usize..6,
        slack in 0usize..30,
    ) {
        prop_assume!(values.len() > slots + 1);
        let series = TimeSeries::new(Hour(0), values.clone());
        let planner = TemporalPlanner::new(&series);
        let count = values.len() - slots;
        let sweep = planner.deferral_sweep(Hour(0), count, slots, slack);
        for (a, &swept) in sweep.iter().enumerate() {
            // Naive: scan all allowed starts.
            let last = (a + slack).min(values.len() - slots);
            let mut best = f64::INFINITY;
            for s in a..=last {
                let cost: f64 = values[s..s + slots].iter().sum();
                if cost < best {
                    best = cost;
                }
            }
            prop_assert!((swept - best).abs() < 1e-6, "arrival {}", a);
        }
    }

    #[test]
    fn interruptible_sweep_matches_naive(
        values in trace_strategy(),
        slots in 1usize..6,
        slack in 0usize..30,
    ) {
        prop_assume!(values.len() > slots + 1);
        let series = TimeSeries::new(Hour(0), values.clone());
        let planner = TemporalPlanner::new(&series);
        let count = values.len() - slots;
        let sweep = planner.interruptible_sweep(Hour(0), count, slots, slack);
        for a in (0..count).step_by(7) {
            let end = (a + slots + slack).min(values.len());
            let expected = naive_k_sum(&values[a..end], slots);
            prop_assert!((sweep[a] - expected).abs() < 1e-6, "arrival {}", a);
        }
    }

    #[test]
    fn interruptible_never_beats_window_minimum(
        values in trace_strategy(),
        slots in 1usize..6,
        slack in 0usize..30,
    ) {
        prop_assume!(values.len() > slots + slack + 1);
        let series = TimeSeries::new(Hour(0), values.clone());
        let planner = TemporalPlanner::new(&series);
        let (hours, cost) = planner.best_interruptible(Hour(0), slots, slack);
        prop_assert_eq!(hours.len(), slots);
        // Cost is at least slots × the global window minimum.
        let min = values[..slots + slack]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        prop_assert!(cost >= min * slots as f64 - 1e-9);
        // And no worse than the best contiguous window.
        let deferred = planner.best_deferred(Hour(0), slots, slack).cost_g;
        prop_assert!(cost <= deferred + 1e-9);
    }

    #[test]
    fn prefix_sums_match_direct(values in trace_strategy()) {
        let series = TimeSeries::new(Hour(7), values.clone());
        let prefix = series.prefix_sum();
        let n = values.len();
        for from in (0..n).step_by(11) {
            for len in [0, 1, n / 3, n - from] {
                if from + len > n {
                    continue;
                }
                let direct: f64 = values[from..from + len].iter().sum();
                let fast = prefix.sum(Hour(7 + from as u32), len);
                prop_assert!((direct - fast).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fft_roundtrip(re in prop::collection::vec(-100.0f64..100.0, 1..65)) {
        let n = re.len().next_power_of_two();
        let mut data: Vec<Complex> = re.iter().map(|&r| Complex::new(r, 0.0)).collect();
        data.resize(n, Complex::default());
        let original = data.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_preserves_energy(re in prop::collection::vec(-100.0f64..100.0, 1..65)) {
        // Parseval: sum |x|^2 = (1/N) sum |X|^2.
        let n = re.len().next_power_of_two();
        let mut data: Vec<Complex> = re.iter().map(|&r| Complex::new(r, 0.0)).collect();
        data.resize(n, Complex::default());
        let time_energy: f64 = data.iter().map(|c| c.norm_sq()).sum();
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-4 * time_energy.max(1.0));
    }

    #[test]
    fn water_filling_invariants(
        mut means in prop::collection::vec(5.0f64..900.0, 2..40),
        idle_pct in 0usize..100,
    ) {
        // Attach synthetic means to distinct catalog regions.
        let catalog = decarb::traces::builtin_catalog();
        means.truncate(catalog.len());
        let regions: Vec<(&'static Region, f64)> = catalog
            .iter()
            .zip(means.iter())
            .map(|(r, &m)| (r, m))
            .collect();
        let idle = idle_pct as f64 / 100.0;
        prop_assume!(idle < 1.0);
        let outcome = water_filling(&regions, IdleCapacity::Fraction(idle), &|_, _| true);
        // Emissions never increase.
        prop_assert!(outcome.after_g <= outcome.before_g + 1e-9);
        // Moves only go to strictly greener regions.
        let mean_of = |code: &str| regions.iter().find(|(r, _)| r.code == code).unwrap().1;
        for a in &outcome.assignments {
            prop_assert!(mean_of(a.to) < mean_of(a.from));
            prop_assert!(a.amount > 0.0);
        }
        // No recipient exceeds its idle capacity.
        for (region, _) in &regions {
            let received: f64 = outcome
                .assignments
                .iter()
                .filter(|a| a.to == region.code)
                .map(|a| a.amount)
                .sum();
            prop_assert!(received <= idle + 1e-9);
        }
        // Moved load is bounded by the total load.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&outcome.moved_fraction));
    }

    #[test]
    fn greener_trace_bounded_and_monotone(
        values in prop::collection::vec(30.0f64..900.0, 24..96),
        p in 0.0f64..0.95,
    ) {
        let base = TimeSeries::new(Hour(0), values.clone());
        let greener = greener_trace(&base, p, 0);
        for ((_, g), (_, b)) in greener.iter().zip(base.iter()) {
            prop_assert!(g <= b + 1e-9, "never dirtier than the base grid");
            prop_assert!(g >= ADDED_RENEWABLE_CI.min(b) - 1e-9);
        }
        prop_assert!(greener.mean() <= base.mean() + 1e-9);
    }

    #[test]
    fn kmeans_assignments_are_valid(
        points in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 2..3usize), 1..60),
        k in 1usize..5,
    ) {
        let dims: Vec<usize> = points.iter().map(|p| p.len()).collect();
        prop_assume!(dims.windows(2).all(|w| w[0] == w[1]));
        let result = kmeans(&points, k, 99, 100).unwrap();
        prop_assert_eq!(result.assignments.len(), points.len());
        for &a in &result.assignments {
            prop_assert!(a < result.centroids.len());
        }
        // Each point is assigned to its nearest centroid.
        for (p, &a) in points.iter().zip(&result.assignments) {
            let d = |c: &Vec<f64>| -> f64 {
                c.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum()
            };
            let assigned = d(&result.centroids[a]);
            for c in &result.centroids {
                prop_assert!(assigned <= d(c) + 1e-9);
            }
        }
    }
}
