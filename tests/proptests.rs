//! Property-based tests over the core data structures and kernels.
//!
//! Each scheduling kernel is checked against a brute-force oracle on
//! randomized inputs, and the capacity/greener transforms are checked
//! for their conservation and bounding invariants. Inputs come from the
//! seeded generator in `common` (see its module docs for why proptest
//! itself is not used).

mod common;

use common::{Gen, CASES};
use decarb::core::capacity::{water_filling, IdleCapacity};
use decarb::core::greener::{greener_trace, ADDED_RENEWABLE_CI};
use decarb::core::ksmallest::SlidingKSmallest;
use decarb::core::temporal::TemporalPlanner;
use decarb::stats::fft::{fft, ifft, Complex};
use decarb::stats::kmeans::kmeans;
use decarb::traces::{Hour, Region, TimeSeries};

/// A positive carbon trace of 30–300 hourly samples.
fn trace(g: &mut Gen) -> Vec<f64> {
    g.vec_in(1.0, 900.0, 30, 300)
}

/// Oracle: sum of the k smallest values of a slice.
fn naive_k_sum(values: &[f64], k: usize) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.iter().take(k).sum()
}

#[test]
fn sliding_k_smallest_matches_oracle() {
    for case in 0..CASES {
        let mut g = Gen::new("sliding_k_smallest", case);
        let values = trace(&mut g);
        let k = g.usize_in(1, 8);
        let window = g.usize_in(4, 40);
        let mut s = SlidingKSmallest::new(k);
        for i in 0..values.len() {
            s.insert(values[i]);
            if i >= window {
                s.remove(values[i - window]);
            }
            let lo = (i + 1).saturating_sub(window);
            let expected = naive_k_sum(&values[lo..=i], k);
            assert!((s.k_sum() - expected).abs() < 1e-6, "case {case} index {i}");
        }
    }
}

#[test]
fn deferral_sweep_matches_naive() {
    for case in 0..CASES {
        let mut g = Gen::new("deferral_sweep", case);
        let values = trace(&mut g);
        let slots = g.usize_in(1, 6);
        let slack = g.usize_in(0, 30);
        let series = TimeSeries::new(Hour(0), values.clone());
        let planner = TemporalPlanner::new(&series);
        let count = values.len() - slots;
        let sweep = planner.deferral_sweep(Hour(0), count, slots, slack);
        for (a, &swept) in sweep.iter().enumerate() {
            // Naive: scan all allowed starts.
            let last = (a + slack).min(values.len() - slots);
            let mut best = f64::INFINITY;
            for s in a..=last {
                let cost: f64 = values[s..s + slots].iter().sum();
                if cost < best {
                    best = cost;
                }
            }
            assert!((swept - best).abs() < 1e-6, "case {case} arrival {a}");
        }
    }
}

#[test]
fn interruptible_sweep_matches_naive() {
    for case in 0..CASES {
        let mut g = Gen::new("interruptible_sweep", case);
        let values = trace(&mut g);
        let slots = g.usize_in(1, 6);
        let slack = g.usize_in(0, 30);
        let series = TimeSeries::new(Hour(0), values.clone());
        let planner = TemporalPlanner::new(&series);
        let count = values.len() - slots;
        let sweep = planner.interruptible_sweep(Hour(0), count, slots, slack);
        for a in (0..count).step_by(7) {
            let end = (a + slots + slack).min(values.len());
            let expected = naive_k_sum(&values[a..end], slots);
            assert!(
                (sweep[a] - expected).abs() < 1e-6,
                "case {case} arrival {a}"
            );
        }
    }
}

#[test]
fn interruptible_never_beats_window_minimum() {
    for case in 0..CASES {
        let mut g = Gen::new("interruptible_window_min", case);
        // Draw long enough traces that `slots + slack` always fits.
        let values = g.vec_in(1.0, 900.0, 40, 300);
        let slots = g.usize_in(1, 6);
        let slack = g.usize_in(0, 30);
        let series = TimeSeries::new(Hour(0), values.clone());
        let planner = TemporalPlanner::new(&series);
        let (hours, cost) = planner.best_interruptible(Hour(0), slots, slack);
        assert_eq!(hours.len(), slots, "case {case}");
        // Cost is at least slots × the global window minimum.
        let min = values[..slots + slack]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(cost >= min * slots as f64 - 1e-9, "case {case}");
        // And no worse than the best contiguous window.
        let deferred = planner.best_deferred(Hour(0), slots, slack).cost_g;
        assert!(cost <= deferred + 1e-9, "case {case}");
    }
}

#[test]
fn prefix_sums_match_direct() {
    for case in 0..CASES {
        let mut g = Gen::new("prefix_sums", case);
        let values = trace(&mut g);
        let series = TimeSeries::new(Hour(7), values.clone());
        let prefix = series.prefix_sum();
        let n = values.len();
        for from in (0..n).step_by(11) {
            for len in [0, 1, n / 3, n - from] {
                if from + len > n {
                    continue;
                }
                let direct: f64 = values[from..from + len].iter().sum();
                let fast = prefix.sum(Hour(7 + from as u32), len);
                assert!((direct - fast).abs() < 1e-6, "case {case} from {from}");
            }
        }
    }
}

#[test]
fn fft_roundtrip() {
    for case in 0..CASES {
        let mut g = Gen::new("fft_roundtrip", case);
        let re = g.vec_in(-100.0, 100.0, 1, 65);
        let n = re.len().next_power_of_two();
        let mut data: Vec<Complex> = re.iter().map(|&r| Complex::new(r, 0.0)).collect();
        data.resize(n, Complex::default());
        let original = data.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-6, "case {case}");
            assert!((a.im - b.im).abs() < 1e-6, "case {case}");
        }
    }
}

#[test]
fn fft_preserves_energy() {
    for case in 0..CASES {
        let mut g = Gen::new("fft_energy", case);
        let re = g.vec_in(-100.0, 100.0, 1, 65);
        // Parseval: sum |x|^2 = (1/N) sum |X|^2.
        let n = re.len().next_power_of_two();
        let mut data: Vec<Complex> = re.iter().map(|&r| Complex::new(r, 0.0)).collect();
        data.resize(n, Complex::default());
        let time_energy: f64 = data.iter().map(|c| c.norm_sq()).sum();
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-4 * time_energy.max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn water_filling_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new("water_filling", case);
        let mut means = g.vec_in(5.0, 900.0, 2, 40);
        let idle = g.usize_in(0, 100) as f64 / 100.0;
        // Attach synthetic means to distinct catalog regions.
        let catalog = decarb::traces::builtin_catalog();
        means.truncate(catalog.len());
        let regions: Vec<(&'static Region, f64)> = catalog
            .iter()
            .zip(means.iter())
            .map(|(r, &m)| (r, m))
            .collect();
        let outcome = water_filling(&regions, IdleCapacity::Fraction(idle), &|_, _| true);
        // Emissions never increase.
        assert!(outcome.after_g <= outcome.before_g + 1e-9, "case {case}");
        // Moves only go to strictly greener regions.
        let mean_of = |code: &str| regions.iter().find(|(r, _)| r.code == code).unwrap().1;
        for a in &outcome.assignments {
            assert!(mean_of(&a.to) < mean_of(&a.from), "case {case}");
            assert!(a.amount > 0.0, "case {case}");
        }
        // No recipient exceeds its idle capacity.
        for (region, _) in &regions {
            let received: f64 = outcome
                .assignments
                .iter()
                .filter(|a| a.to == region.code)
                .map(|a| a.amount)
                .sum();
            assert!(received <= idle + 1e-9, "case {case}");
        }
        // Moved load is bounded by the total load.
        assert!(
            (0.0..=1.0 + 1e-9).contains(&outcome.moved_fraction),
            "case {case}"
        );
    }
}

#[test]
fn greener_trace_bounded_and_monotone() {
    for case in 0..CASES {
        let mut g = Gen::new("greener_trace", case);
        let values = g.vec_in(30.0, 900.0, 24, 96);
        let p = g.f64_in(0.0, 0.95);
        let base = TimeSeries::new(Hour(0), values.clone());
        let greener = greener_trace(&base, p, 0);
        for ((_, gr), (_, b)) in greener.iter().zip(base.iter()) {
            assert!(
                gr <= b + 1e-9,
                "case {case}: never dirtier than the base grid"
            );
            assert!(gr >= ADDED_RENEWABLE_CI.min(b) - 1e-9, "case {case}");
        }
        assert!(greener.mean() <= base.mean() + 1e-9, "case {case}");
    }
}

#[test]
fn kmeans_assignments_are_valid() {
    for case in 0..CASES {
        let mut g = Gen::new("kmeans_valid", case);
        let count = g.usize_in(1, 60);
        let points: Vec<Vec<f64>> = (0..count)
            .map(|_| vec![g.f64_in(-50.0, 50.0), g.f64_in(-50.0, 50.0)])
            .collect();
        let k = g.usize_in(1, 5);
        let result = kmeans(&points, k, 99, 100).unwrap();
        assert_eq!(result.assignments.len(), points.len(), "case {case}");
        for &a in &result.assignments {
            assert!(a < result.centroids.len(), "case {case}");
        }
        // Each point is assigned to its nearest centroid.
        for (p, &a) in points.iter().zip(&result.assignments) {
            let d = |c: &Vec<f64>| -> f64 { c.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum() };
            let assigned = d(&result.centroids[a]);
            for c in &result.centroids {
                assert!(assigned <= d(c) + 1e-9, "case {case}");
            }
        }
    }
}

/// A random region with every metadata axis the container serializes:
/// group, providers, hyperscale flag, coordinates, calibration targets,
/// and a random (normalized) generation mix.
fn random_region(g: &mut Gen, code: String) -> decarb::traces::Region {
    use decarb::traces::{EnergyMix, GeoGroup, Providers};
    let groups = [
        GeoGroup::Africa,
        GeoGroup::Asia,
        GeoGroup::Europe,
        GeoGroup::NorthAmerica,
        GeoGroup::SouthAmerica,
        GeoGroup::Oceania,
        GeoGroup::Other,
    ];
    let mut providers = Providers::NONE;
    for flag in [
        Providers::GCP,
        Providers::AZURE,
        Providers::AWS,
        Providers::IBM,
        Providers::ALIBABA,
    ] {
        if g.usize_in(0, 2) == 1 {
            providers = providers.union(flag);
        }
    }
    let mut shares = [0.0f64; 9];
    for share in &mut shares {
        if g.usize_in(0, 2) == 1 {
            *share = g.f64_in(0.0, 5.0);
        }
    }
    // At least one positive share, or EnergyMix::new panics.
    shares[g.usize_in(0, 9)] += g.f64_in(0.1, 3.0);
    decarb::traces::Region {
        name: format!("Zone {code}"),
        code,
        group: groups[g.usize_in(0, groups.len())],
        lat: g.f64_in(-80.0, 80.0),
        lon: g.f64_in(-179.0, 179.0),
        providers,
        mix: EnergyMix::new(shares),
        mean_ci_2022: g.f64_in(5.0, 900.0),
        ci_delta_2020_2022: g.f64_in(-80.0, 80.0),
        daily_cv: g.f64_in(0.0, 0.4),
        periodicity: g.f64_in(0.0, 1.0),
        hyperscale_set: g.usize_in(0, 2) == 1,
    }
}

/// A random uniform-coverage dataset of `regions × hours` samples.
fn random_trace_set(g: &mut Gen, case: u64, start: Hour, hours: usize) -> decarb::traces::TraceSet {
    let region_count = g.usize_in(1, 8);
    let pairs = (0..region_count)
        .map(|i| {
            let region = random_region(g, format!("Z{case}-{i}"));
            let values = g.vec_in(1.0, 900.0, hours, hours + 1);
            (region, TimeSeries::new(start, values))
        })
        .collect();
    decarb::traces::TraceSet::from_series(pairs)
}

/// Field-by-field region equality, floats compared by bit pattern
/// (`Region` itself has no `PartialEq`).
fn assert_region_bits_eq(a: &decarb::traces::Region, b: &decarb::traces::Region, case: u64) {
    use decarb::traces::Source;
    assert_eq!(a.code, b.code, "case {case}");
    assert_eq!(a.name, b.name, "case {case}");
    assert_eq!(a.group, b.group, "case {case}: {}", a.code);
    assert_eq!(a.providers, b.providers, "case {case}: {}", a.code);
    assert_eq!(
        a.hyperscale_set, b.hyperscale_set,
        "case {case}: {}",
        a.code
    );
    for (x, y) in [
        (a.lat, b.lat),
        (a.lon, b.lon),
        (a.mean_ci_2022, b.mean_ci_2022),
        (a.ci_delta_2020_2022, b.ci_delta_2020_2022),
        (a.daily_cv, b.daily_cv),
        (a.periodicity, b.periodicity),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "case {case}: {}", a.code);
    }
    for source in Source::ALL {
        assert_eq!(
            a.mix.share(source).to_bits(),
            b.mix.share(source).to_bits(),
            "case {case}: {} share of {}",
            source.label(),
            a.code
        );
    }
}

/// Bit-exact dataset equality: intern order, ids, metadata, values.
fn assert_trace_set_bits_eq(a: &decarb::traces::TraceSet, b: &decarb::traces::TraceSet, case: u64) {
    assert_eq!(a.len(), b.len(), "case {case}");
    for ((id_a, ra, sa), (id_b, rb, sb)) in a.iter_ids().zip(b.iter_ids()) {
        assert_eq!(id_a, id_b, "case {case}");
        assert_region_bits_eq(ra, rb, case);
        assert_eq!(sa.start(), sb.start(), "case {case}: {}", ra.code);
        assert_eq!(sa.len(), sb.len(), "case {case}: {}", ra.code);
        for (va, vb) in sa.values().iter().zip(sb.values()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "case {case}: {}", ra.code);
        }
    }
}

#[test]
fn container_roundtrip_is_bit_exact() {
    use decarb::traces::container;
    for case in 0..CASES {
        let mut g = Gen::new("container_roundtrip", case);
        let start = Hour(g.usize_in(0, 40_000) as u32);
        let hours = g.usize_in(1, 240);
        let set = random_trace_set(&mut g, case, start, hours);
        let bytes = container::encode(&set).unwrap();
        let back = container::decode(&bytes, "prop").unwrap();
        assert_trace_set_bits_eq(&set, &back, case);
        let info = container::probe(&bytes, "prop").unwrap();
        assert_eq!(info.regions, set.len(), "case {case}");
        assert_eq!(info.hours, hours, "case {case}");
        assert_eq!(info.start, start, "case {case}");
    }
}

#[test]
fn container_append_equals_one_shot_pack() {
    use decarb::traces::container;
    for case in 0..CASES {
        let mut g = Gen::new("container_append", case);
        let start = Hour(g.usize_in(0, 40_000) as u32);
        let hours = g.usize_in(2, 240);
        let full = random_trace_set(&mut g, case, start, hours);
        // Split at a random interior hour; the update re-sends a random
        // amount of stored history ahead of the new rows (append must
        // ignore the overlap).
        let cut = g.usize_in(1, hours);
        let overlap = g.usize_in(0, cut + 1).min(cut);
        let slice_set = |from: usize, len: usize| -> decarb::traces::TraceSet {
            decarb::traces::TraceSet::from_series(
                full.iter()
                    .map(|(r, s)| {
                        (
                            r.clone(),
                            s.slice(Hour(start.0 + from as u32), len).unwrap(),
                        )
                    })
                    .collect(),
            )
        };
        let first = slice_set(0, cut);
        let update = slice_set(cut - overlap, hours - cut + overlap);
        let packed_first = container::encode(&first).unwrap();
        let (appended, added) = container::append(&packed_first, "prop", &update, false).unwrap();
        assert_eq!(added, hours - cut, "case {case}");
        let grown = container::decode(&appended, "prop").unwrap();
        let one_shot = container::decode(&container::encode(&full).unwrap(), "prop").unwrap();
        assert_trace_set_bits_eq(&grown, &one_shot, case);
        // The appended file verifies and reports the grown shape.
        let info = container::probe(&appended, "prop").unwrap();
        assert_eq!(info.hours, hours, "case {case}");
        assert_eq!(info.segments, 2, "case {case}");
    }
}
