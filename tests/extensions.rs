//! Cross-crate integration tests for the extension subsystems: the
//! forecasting substrate feeding core policies and the simulator, the
//! grid-dispatch substrate feeding the planners, elastic scaling against
//! the temporal kernels, and embodied carbon against the capacity sweep.

use decarb::core::capacity::{idle_sweep, IdleCapacity};
use decarb::core::elastic::elastic_plan;
use decarb::core::embodied::{net_footprint_sweep, optimal_idle, EmbodiedParams};
use decarb::core::forecast::temporal_increase_pct;
use decarb::core::signals::compare_signals;
use decarb::core::water_filling;
use decarb::forecast::{
    backtest, rolling_forecast_trace, BacktestConfig, DiurnalTemplate, Persistence, SeasonalNaive,
};
use decarb::prelude::*;
use decarb::sim::{
    CarbonAgnostic, ForecastDeferral, OverheadModel, PlannedDeferral, SimConfig, Simulator,
    ThresholdSuspend,
};
use decarb::traces::grid::{diurnal_demand, solar_availability, Fleet, Generator};
use decarb::traces::mix::Source;
use decarb::traces::time::year_start;

/// A better forecaster must translate into lower scheduling regret: the
/// chain trace → forecast → believed trace → deferral choice → true cost.
#[test]
fn better_forecasts_mean_lower_scheduling_regret() {
    let data = builtin_dataset();
    let series = data.series("US-CA").unwrap();
    let eval_start = year_start(2022);
    let eval_hours = 60 * 24;
    let (slots, slack) = (6usize, 48usize);
    let sweep = eval_hours - slots - slack;

    let regret_of = |model: &dyn Forecaster| {
        let believed = rolling_forecast_trace(model, series, eval_start, eval_hours, 24, 28 * 24);
        temporal_increase_pct(series, &believed, eval_start, sweep, slots, slack, 17)
    };
    let persistence = regret_of(&Persistence);
    let template = regret_of(&DiurnalTemplate::default());
    assert!(
        template < persistence,
        "template regret {template:.2}% must beat persistence {persistence:.2}%"
    );
    assert!(template >= 0.0, "regret is non-negative by optimality");
    // And the backtest MAPE ordering matches the regret ordering.
    let cfg = BacktestConfig::default();
    let mape_p = backtest(&Persistence, series, eval_start, eval_hours, &cfg).mape_pct;
    let mape_t = backtest(
        &DiurnalTemplate::default(),
        series,
        eval_start,
        eval_hours,
        &cfg,
    )
    .mape_pct;
    assert!(mape_t < mape_p);
}

/// The forecast-driven simulator policy lands between the carbon-agnostic
/// baseline and the clairvoyant bound across a region spectrum.
#[test]
fn forecast_policy_brackets_across_regions() {
    let data = builtin_dataset();
    let start = year_start(2022).plus(100 * 24);
    for code in ["US-CA", "DE", "SE"] {
        let region = data.id_of(code).unwrap();
        let job = Job::batch(1, region, start, 6.0, Slack::Day);
        fn run<P: decarb::sim::Policy>(
            data: &decarb::traces::TraceSet,
            region: decarb::traces::RegionId,
            start: Hour,
            job: &Job,
            policy: &mut P,
        ) -> f64 {
            let mut sim = Simulator::new(data, &[region], SimConfig::new(start, 24 * 5, 4));
            let report = sim.run(policy, std::slice::from_ref(job));
            assert_eq!(report.completed_count(), 1, "{}", data.code(region));
            report.emissions_of(1).unwrap()
        }
        let agnostic = run(&data, region, start, &job, &mut CarbonAgnostic);
        let clairvoyant = run(&data, region, start, &job, &mut PlannedDeferral);
        let forecast = run(
            &data,
            region,
            start,
            &job,
            &mut ForecastDeferral::new(SeasonalNaive::daily()),
        );
        assert!(forecast >= clairvoyant - 1e-9, "{code}");
        // On stable grids (SE) everything collapses to the same cost; on
        // diurnal grids the forecast captures most of the gap.
        let gap = agnostic - clairvoyant;
        let captured = agnostic - forecast;
        assert!(
            captured >= -0.05 * agnostic,
            "{code}: forecast may not do materially worse than agnostic"
        );
        if gap > 0.05 * agnostic {
            assert!(
                captured > 0.3 * gap,
                "{code}: captured {captured:.1} of gap {gap:.1}"
            );
        }
    }
}

/// A dispatched fleet's average-CI series is a first-class trace: the
/// temporal planner defers into its solar valley.
#[test]
fn dispatch_series_feeds_the_temporal_planner() {
    let fleet = Fleet::new(vec![
        Generator {
            name: "solar",
            source: Source::Solar,
            capacity_mw: 700.0,
            marginal_cost: 0.0,
            availability: Some(solar_availability),
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: 1500.0,
            marginal_cost: 40.0,
            availability: None,
        },
    ]);
    let series = fleet.dispatch_series(Hour(0), diurnal_demand(900.0, 150.0), 24 * 7);
    let planner = TemporalPlanner::new(&series);
    // A 3-hour job arriving at midnight defers into daylight.
    let placement = planner.best_deferred(Hour(0), 3, 20);
    let start_hod = placement.start.hour_of_day();
    assert!(
        (8..=16).contains(&start_hod),
        "deferral into the solar window, got hour {start_hod}"
    );
    assert!(placement.cost_g < planner.baseline_cost(Hour(0), 3));
}

/// Elastic scaling with ceiling 1 is exactly the paper's interruptibility
/// bound on real catalog traces.
#[test]
fn elastic_ceiling_one_equals_interruptible_bound_on_real_traces() {
    let data = builtin_dataset();
    let arrival = year_start(2022).plus(40 * 24);
    for code in ["US-CA", "DE", "IN-WE"] {
        let series = data.series(code).unwrap();
        let planner = TemporalPlanner::new(series);
        for (work, slack) in [(6usize, 24usize), (24, 168)] {
            let plan = elastic_plan(series, arrival, work, 1, work + slack);
            let (_, bound) = planner.best_interruptible(arrival, work, slack);
            assert!(
                (plan.cost_g - bound).abs() < 1e-9,
                "{code} work {work}: {} vs {bound}",
                plan.cost_g
            );
        }
    }
}

/// The embodied-carbon sweep built on the real Fig. 5(c) capacity
/// machinery has an interior optimum, and the optimum respects the
/// operational curve's endpoints.
#[test]
fn embodied_optimum_sits_inside_the_real_capacity_sweep() {
    let data = builtin_dataset();
    let means = data.annual_means(2022);
    let fractions: Vec<f64> = (0..=19).map(|i| i as f64 * 0.05).collect();
    let operational: Vec<(f64, f64)> = idle_sweep(&means, &fractions, &|_, _| true)
        .into_iter()
        .map(|(f, o)| (f, o.after_g))
        .collect();
    // Operational curve decreases — the Fig. 5(c) shape.
    for pair in operational.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-6);
    }
    let points = net_footprint_sweep(&operational, &EmbodiedParams::default());
    let best = optimal_idle(&points);
    assert!(best.idle > 0.0 && best.idle < 0.95);
    // Cross-check a single point against water_filling directly.
    let direct = water_filling(&means, IdleCapacity::Fraction(best.idle), &|_, _| true);
    assert!((direct.after_g - best.operational_g).abs() < 1e-9);
}

/// Overheads strictly order the simulator's results: zero ≤ realistic,
/// with identical decisions.
#[test]
fn overhead_models_order_simulated_emissions() {
    let data = builtin_dataset();
    let start = year_start(2022);
    let region = data.id_of("US-CA").unwrap();
    let jobs: Vec<Job> = (0..5)
        .map(|i| {
            Job::batch(
                i + 1,
                region,
                start.plus(i as usize * 200),
                24.0,
                Slack::Week,
            )
            .with_interruptible()
        })
        .collect();
    let run = |model: OverheadModel| {
        let mut sim = Simulator::new(
            &data,
            &[region],
            SimConfig::new(start, 24 * 60, 8).with_overheads(model),
        );
        sim.run(&mut ThresholdSuspend::default(), &jobs)
    };
    let ideal = run(OverheadModel::ZERO);
    let realistic = run(OverheadModel::realistic());
    assert_eq!(ideal.completed_count(), 5);
    assert_eq!(realistic.completed_count(), 5);
    assert_eq!(ideal.suspends, realistic.suspends);
    assert!(realistic.total_emissions_g > ideal.total_emissions_g);
    assert!(realistic.overhead_g > 0.0);
    // The job-attributed emissions are identical; only overhead differs.
    for i in 1..=5u64 {
        assert!((ideal.emissions_of(i).unwrap() - realistic.emissions_of(i).unwrap()).abs() < 1e-9);
    }
}

/// End-to-end signal story: on a curtailment grid the marginal schedule
/// beats the average schedule by an order of magnitude, and both are
/// reproducible from the public API alone.
#[test]
fn marginal_scheduling_beats_average_on_curtailment_grids() {
    fn night_wind(hour: Hour) -> f64 {
        if !(6..20).contains(&hour.hour_of_day()) {
            1.0
        } else {
            0.1
        }
    }
    let fleet = Fleet::new(vec![
        Generator {
            name: "must-run coal",
            source: Source::Coal,
            capacity_mw: 500.0,
            marginal_cost: -5.0,
            availability: None,
        },
        Generator {
            name: "wind",
            source: Source::Wind,
            capacity_mw: 400.0,
            marginal_cost: 0.0,
            availability: Some(night_wind),
        },
        // Solar makes the noon *average* look clean while gas stays on
        // the noon *margin* — the divergence under test.
        Generator {
            name: "solar",
            source: Source::Solar,
            capacity_mw: 800.0,
            marginal_cost: 1.0,
            availability: Some(solar_availability),
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: 1200.0,
            marginal_cost: 40.0,
            availability: None,
        },
    ]);
    let demand = |h: Hour| {
        if (8..20).contains(&h.hour_of_day()) {
            1400.0
        } else {
            800.0
        }
    };
    let cmp = compare_signals(&fleet, demand, Hour(0), 48, 4, 30, 100.0);
    assert!(cmp.average_added_kg > 10.0 * cmp.marginal_added_kg);
    assert!(cmp.marginal_efficiency() > 0.99);
}

/// The simulator is deterministic: identical inputs produce identical
/// reports, transition counts, and per-job emissions.
#[test]
fn simulator_runs_are_deterministic() {
    let data = builtin_dataset();
    let start = year_start(2022);
    let codes = ["US-CA", "DE", "SE"];
    let regions: Vec<decarb::traces::RegionId> =
        codes.iter().map(|c| data.id_of(c).unwrap()).collect();
    let jobs: Vec<Job> = (0..20)
        .map(|i| {
            Job::batch(
                i + 1,
                regions[(i % 3) as usize],
                start.plus(i as usize * 37),
                12.0,
                Slack::Week,
            )
            .with_interruptible()
        })
        .collect();
    let run = || {
        let mut sim = Simulator::new(
            &data,
            &regions,
            SimConfig::new(start, 24 * 40, 4).with_overheads(OverheadModel::realistic()),
        );
        sim.run(&mut ThresholdSuspend::default(), &jobs)
    };
    let a = run();
    let b = run();
    assert_eq!(a.completed_count(), b.completed_count());
    assert_eq!(a.suspends, b.suspends);
    assert_eq!(a.resumes, b.resumes);
    assert!((a.total_emissions_g - b.total_emissions_g).abs() < 1e-12);
    for c in &a.completed {
        assert_eq!(b.emissions_of(c.job.id), Some(c.emitted_g));
        let b_job = b.completed.iter().find(|x| x.job.id == c.job.id).unwrap();
        assert_eq!(c.started, b_job.started);
        assert_eq!(c.finished, b_job.finished);
        assert_eq!(c.region, b_job.region);
    }
}

/// Online counterpart of Fig. 5: with finite per-region capacity the
/// greenest router captures less of the spatial benefit than with
/// effectively infinite capacity, but still beats staying home.
#[test]
fn finite_capacity_erodes_online_spatial_savings() {
    let data = builtin_dataset();
    let start = year_start(2022);
    let codes = ["SE", "DE", "PL", "IN-WE", "US-CA"];
    let regions: Vec<decarb::traces::RegionId> =
        codes.iter().map(|c| data.id_of(c).unwrap()).collect();
    // A burst of simultaneous 6-hour jobs from the two dirtiest origins.
    let jobs: Vec<Job> = (0..16)
        .map(|i| {
            Job::batch(
                i + 1,
                if i % 2 == 0 { regions[3] } else { regions[2] },
                start,
                6.0,
                Slack::None,
            )
        })
        .collect();
    let run = |capacity: usize| {
        let mut sim = Simulator::new(&data, &regions, SimConfig::new(start, 200, capacity));
        let report = sim.run(&mut decarb::sim::GreenestRouter, &jobs);
        assert_eq!(report.completed_count(), jobs.len());
        report.average_ci()
    };
    let mut home_sim = Simulator::new(&data, &regions, SimConfig::new(start, 200, 64));
    let home = home_sim.run(&mut CarbonAgnostic, &jobs).average_ci();
    let unconstrained = run(64);
    let constrained = run(2);
    assert!(
        unconstrained < constrained,
        "infinite capacity must do at least as well ({unconstrained} vs {constrained})"
    );
    assert!(
        constrained < home,
        "even 2 slots per region beat staying home ({constrained} vs {home})"
    );
}
