//! Cross-crate integration tests: the analytic policies, the simulator,
//! and the dataset must agree with each other and with the paper's
//! qualitative claims.

use decarb::core::spatial::{envelope_planner, inf_migration, one_migration};
use decarb::core::temporal::{TemporalPlanner, TemporalPolicy};
use decarb::sim::{PlannedDeferral, SimConfig, Simulator};
use decarb::traces::time::{hours_in_year, year_start};
use decarb::traces::{builtin_dataset, csv, GLOBAL_AVG_CI};
use decarb::workloads::{Job, Slack};

#[test]
fn policy_hierarchy_holds_across_catalog() {
    // Interruptible ≤ deferred ≤ baseline, everywhere, for several shapes.
    let data = builtin_dataset();
    let start = year_start(2022);
    for (i, (region, series)) in data.iter().enumerate() {
        // Sample a third of the catalog to keep the test brisk.
        if i % 3 != 0 {
            continue;
        }
        let planner = TemporalPlanner::new(series);
        for (slots, slack) in [(1usize, 24usize), (24, 24), (48, 168)] {
            let arrival = start.plus(1000 + i * 37);
            let b = planner.policy_cost(TemporalPolicy::Immediate, arrival, slots, slack);
            let d = planner.policy_cost(TemporalPolicy::Deferred, arrival, slots, slack);
            let x =
                planner.policy_cost(TemporalPolicy::DeferredInterruptible, arrival, slots, slack);
            assert!(d <= b + 1e-9, "{}: deferred > baseline", region.code);
            assert!(x <= d + 1e-9, "{}: interruptible > deferred", region.code);
            assert!(x > 0.0, "{}: cost must be positive", region.code);
        }
    }
}

#[test]
fn simulator_agrees_with_analytic_planner_across_regions() {
    // Replaying the clairvoyant deferral plan through the discrete-event
    // simulator reproduces the analytic emissions exactly.
    let data = builtin_dataset();
    let start = year_start(2022);
    for code in ["US-CA", "DE", "IN-WE", "AU-SA", "SE"] {
        let region = data.id_of(code).unwrap();
        let mut sim = Simulator::new(&data, &[region], SimConfig::new(start, 24 * 20, 8));
        let job = Job::batch(1, region, start.plus(5), 12.0, Slack::Day);
        let report = sim.run(&mut PlannedDeferral, &[job]);
        let planner = TemporalPlanner::new(data.series(code).unwrap());
        let expected = planner.best_deferred(start.plus(5), 12, 24).cost_g;
        let actual = report.emissions_of(1).expect("job completed");
        assert!(
            (actual - expected).abs() < 1e-6,
            "{code}: sim {actual} vs analytic {expected}"
        );
    }
}

#[test]
fn spatial_shifting_dominates_temporal_shifting() {
    // §6.4 / key takeaway: reductions from migrating to the greenest
    // region exceed reductions from even ideal temporal shifting.
    let data = builtin_dataset();
    let start = year_start(2022);
    let all: Vec<&decarb::traces::Region> = data.regions().iter().collect();
    let arrival = start.plus(4000);
    let slots = 24;
    let mut spatial_beats_temporal = 0;
    let mut considered = 0;
    for (region, series) in data.iter() {
        let planner = TemporalPlanner::new(series);
        let baseline = planner.baseline_cost(arrival, slots);
        let temporal = planner.best_interruptible(arrival, slots, 30 * 24).1;
        let spatial = one_migration(&data, &all, 2022, arrival, slots).cost_g;
        considered += 1;
        if baseline - spatial >= baseline - temporal {
            spatial_beats_temporal += 1;
        }
        let _ = region;
    }
    // Sweden itself (and near-Sweden regions) gain nothing spatially.
    assert!(
        spatial_beats_temporal as f64 / considered as f64 > 0.85,
        "spatial should dominate for most origins ({spatial_beats_temporal}/{considered})"
    );
}

#[test]
fn combined_envelope_planner_beats_pure_policies() {
    // ∞-migration + deferral is at least as good as either alone.
    let data = builtin_dataset();
    let start = year_start(2022);
    let all: Vec<&decarb::traces::Region> = data.regions().iter().collect();
    let arrival = start.plus(2500);
    let slots = 24;
    let slack = 72;
    let combined_planner = envelope_planner(&data, &all, start, 8760);
    let combined = combined_planner.best_deferred(arrival, slots, slack).cost_g;
    let (pure_spatial, _) = inf_migration(&data, &all, arrival, slots);
    assert!(combined <= pure_spatial.cost_g + 1e-9);
    for code in ["DE", "IN-WE", "US-CA"] {
        let planner = TemporalPlanner::new(data.series(code).unwrap());
        let pure_temporal = planner.best_deferred(arrival, slots, slack).cost_g;
        assert!(combined <= pure_temporal + 1e-9, "{code}");
    }
}

#[test]
fn csv_roundtrip_preserves_scheduling_results() {
    let data = builtin_dataset();
    let start = year_start(2022);
    let original = data.series("US-CA").unwrap().slice(start, 24 * 30).unwrap();
    let mut buf = Vec::new();
    csv::write_series(&original, &mut buf).unwrap();
    let restored = csv::read_series(buf.as_slice()).unwrap();
    let a = TemporalPlanner::new(&original).best_deferred(start, 6, 24);
    let b = TemporalPlanner::new(&restored).best_deferred(start, 6, 24);
    assert_eq!(a.start, b.start);
    assert!((a.cost_g - b.cost_g).abs() < 1e-9);
}

#[test]
fn global_average_constant_matches_dataset() {
    let data = builtin_dataset();
    let mean = data.global_mean(2022);
    assert!(
        (mean - GLOBAL_AVG_CI).abs() < 12.0,
        "dataset mean {mean:.2} vs paper constant {GLOBAL_AVG_CI}"
    );
}

#[test]
fn greenest_region_wins_any_window() {
    // One-migration to Sweden beats staying anywhere, for whole-day jobs,
    // in expectation over several arrivals.
    let data = builtin_dataset();
    let start = year_start(2022);
    let all: Vec<&decarb::traces::Region> = data.regions().iter().collect();
    for offset in [100usize, 3000, 6000] {
        let arrival = start.plus(offset);
        let migrated = one_migration(&data, &all, 2022, arrival, 24).cost_g;
        let stay_home: f64 = data
            .series("IN-WE")
            .unwrap()
            .window(arrival, 24)
            .unwrap()
            .iter()
            .sum();
        assert!(migrated < stay_home / 4.0, "offset {offset}");
    }
}

#[test]
fn dataset_supports_full_ideal_slack_window() {
    // A job arriving at the end of 2022 with one-year slack must still
    // find a valid (clamped) window inside the horizon.
    let data = builtin_dataset();
    let planner = TemporalPlanner::new(data.series("DE").unwrap());
    let late_arrival = year_start(2022).plus(hours_in_year(2022) - 1);
    let placement = planner.best_deferred(late_arrival, 168, 365 * 24);
    assert!(placement.start >= late_arrival);
    assert!(placement.cost_g > 0.0);
    let (hours, cost) = planner.best_interruptible(late_arrival, 168, 365 * 24);
    assert_eq!(hours.len(), 168);
    assert!(cost > 0.0);
}
