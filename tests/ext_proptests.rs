//! Property-based tests for the extension substrates: forecasting,
//! elastic scaling, flexible grid load, and the small linear solver.
//!
//! As in `proptests.rs`, every optimizing kernel is pitted against a
//! brute-force oracle on arbitrary inputs, and the physical invariants
//! (energy conservation, caps, bounds) are checked directly.

use decarb::core::elastic::elastic_plan;
use decarb::core::flexload::{allocate_flexible, flat_allocation};
use decarb::forecast::linalg::{ridge, solve, Matrix};
use decarb::forecast::{
    mape_pct, rolling_forecast_trace, DiurnalTemplate, Forecaster, Persistence, SeasonalNaive,
};
use decarb::traces::grid::{Fleet, Generator};
use decarb::traces::mix::Source;
use decarb::traces::{Hour, TimeSeries};
use proptest::prelude::*;

/// Strategy: a positive carbon trace of 2–10 days of hourly samples.
fn trace_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..900.0, 48..240)
}

/// Oracle: cheapest allocation of `work` replica-hours with ceiling `m`
/// over `values` — sort and fill.
fn elastic_oracle(values: &[f64], work: usize, m: usize) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut remaining = work;
    let mut cost = 0.0;
    for v in sorted {
        if remaining == 0 {
            break;
        }
        let take = m.min(remaining);
        cost += v * take as f64;
        remaining -= take;
    }
    cost
}

/// A small random-but-feasible fleet: one clean baseload, one mid, one
/// dirty peaker, capacities drawn from the strategy.
fn fleet_of(caps: [f64; 3]) -> Fleet {
    Fleet::new(vec![
        Generator {
            name: "hydro",
            source: Source::Hydro,
            capacity_mw: caps[0],
            marginal_cost: 1.0,
            availability: None,
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: caps[1],
            marginal_cost: 30.0,
            availability: None,
        },
        Generator {
            name: "coal peaker",
            source: Source::Coal,
            capacity_mw: caps[2],
            marginal_cost: 80.0,
            availability: None,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elastic_plan_matches_oracle(
        values in trace_strategy(),
        work in 1usize..40,
        m in 1usize..8,
    ) {
        let window = values.len();
        prop_assume!(work <= m * window);
        let series = TimeSeries::new(Hour(0), values.clone());
        let plan = elastic_plan(&series, Hour(0), work, m, window);
        let expected = elastic_oracle(&values, work, m);
        prop_assert!((plan.cost_g - expected).abs() < 1e-6);
        prop_assert_eq!(plan.work_hours(), work);
        prop_assert!(plan.peak_replicas() <= m);
    }

    #[test]
    fn elastic_cost_monotone_in_ceiling(
        values in trace_strategy(),
        work in 1usize..30,
    ) {
        let window = values.len();
        let series = TimeSeries::new(Hour(0), values);
        let mut last = f64::INFINITY;
        for m in [1usize, 2, 4, 8] {
            prop_assume!(work <= m * window);
            let cost = elastic_plan(&series, Hour(0), work, m, window).cost_g;
            prop_assert!(cost <= last + 1e-9);
            last = cost;
        }
    }

    #[test]
    fn seasonal_naive_is_exact_on_periodic_traces(
        base in prop::collection::vec(10.0f64..500.0, 24),
        days in 2usize..8,
        horizon in 1usize..72,
    ) {
        // Build a perfectly periodic history from one day's profile.
        let values: Vec<f64> = (0..days * 24).map(|i| base[i % 24]).collect();
        let history = TimeSeries::new(Hour(0), values);
        let fc = SeasonalNaive::daily().predict(&history, horizon);
        for (k, v) in fc.iter().enumerate() {
            let expected = base[(days * 24 + k) % 24];
            prop_assert!((v - expected).abs() < 1e-9, "lead {}", k);
        }
    }

    #[test]
    fn forecasts_have_requested_length_and_are_finite(
        values in trace_strategy(),
        horizon in 1usize..120,
    ) {
        let history = TimeSeries::new(Hour(3), values);
        for model in [
            Box::new(Persistence) as Box<dyn Forecaster>,
            Box::new(SeasonalNaive::daily()),
            Box::new(SeasonalNaive::weekly()),
            Box::new(DiurnalTemplate::default()),
        ] {
            let fc = model.predict(&history, horizon);
            prop_assert_eq!(fc.len(), horizon);
            prop_assert!(fc.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn rolling_trace_of_perfect_model_has_zero_mape(
        base in prop::collection::vec(10.0f64..500.0, 24),
        days in 3usize..8,
    ) {
        // On a perfectly periodic trace the daily seasonal naive *is* a
        // perfect forecaster, so the stitched believed trace equals truth.
        let values: Vec<f64> = (0..days * 24).map(|i| base[i % 24]).collect();
        let series = TimeSeries::new(Hour(0), values);
        let eval_start = Hour(24);
        let eval_hours = (days - 1) * 24;
        let believed = rolling_forecast_trace(
            &SeasonalNaive::daily(), &series, eval_start, eval_hours, 24, 24,
        );
        let truth = series.window(eval_start, eval_hours).unwrap();
        prop_assert!(mape_pct(truth, believed.values()) < 1e-9);
    }

    #[test]
    fn solver_solution_satisfies_the_system(
        seed in prop::collection::vec(-10.0f64..10.0, 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        let mut a = Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                a.set(r, c, seed[r * 3 + c]);
            }
            // Diagonal dominance keeps the system well-conditioned.
            let v = a.get(r, r);
            a.set(r, r, v + 40.0 * v.signum().max(0.5));
        }
        let a2 = a.clone();
        if let Some(x) = solve(a, rhs.clone()) {
            for (r, &target) in rhs.iter().enumerate() {
                let lhs: f64 = (0..3).map(|c| a2.get(r, c) * x[c]).sum();
                prop_assert!((lhs - target).abs() < 1e-6, "row {}", r);
            }
        }
    }

    #[test]
    fn ridge_residual_never_beats_ols_target(
        xs in prop::collection::vec(-5.0f64..5.0, 10..40),
        w0 in -3.0f64..3.0,
        w1 in -3.0f64..3.0,
    ) {
        // Exact linear data: tiny ridge recovers near-zero residual.
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let y: Vec<f64> = xs.iter().map(|&x| w0 * x + w1).collect();
        let w = ridge(&rows, &y, 1e-9).unwrap();
        let rss: f64 = rows
            .iter()
            .zip(&y)
            .map(|(r, &t)| {
                let p = r[0] * w[0] + r[1] * w[1];
                (p - t) * (p - t)
            })
            .sum();
        prop_assert!(rss < 1e-6, "rss {}", rss);
    }

    #[test]
    fn flexible_allocation_never_loses_to_flat(
        caps in [200.0f64..800.0, 100.0f64..600.0, 100.0f64..600.0],
        demand_frac in 0.2f64..0.6,
        energy_frac in 0.05f64..0.25,
    ) {
        let fleet = fleet_of(caps);
        let total_cap = caps[0] + caps[1] + caps[2];
        let demand_mw = total_cap * demand_frac;
        // A diurnal-ish wobble so hours differ.
        let demand = move |h: Hour| {
            demand_mw * (1.0 + 0.3 * (std::f64::consts::TAU * h.hour_of_day() as f64 / 24.0).sin())
        };
        let hours = 24usize;
        let headroom: f64 = (0..hours)
            .map(|i| (total_cap - demand(Hour(i as u32))).max(0.0))
            .sum();
        let energy = (headroom * energy_frac).max(1.0);
        let cap = energy; // Per-hour cap never binds in this test.
        // The step must divide flat's per-hour share: greedy at step `s`
        // is optimal among allocations in multiples of `s`, so flat
        // (energy/24 everywhere = 4 steps of energy/96) is in its search
        // space. A coarser step can genuinely lose to flat on
        // piecewise-linear merit-order costs.
        let flexible =
            allocate_flexible(&fleet, demand, Hour(0), hours, energy, cap, energy / 96.0);
        let flat = flat_allocation(&fleet, demand, Hour(0), hours, energy);
        prop_assert!((flexible.total_mwh() - energy).abs() < 1e-6);
        prop_assert!(flexible.added_kg <= flat.added_kg + 1e-6);
        prop_assert!(flexible.added_kg >= -1e-9, "adding load cannot reduce emissions");
    }
}
