//! Property-based tests for the extension substrates: forecasting,
//! elastic scaling, flexible grid load, and the small linear solver.
//!
//! As in `proptests.rs`, every optimizing kernel is pitted against a
//! brute-force oracle on randomized inputs, and the physical invariants
//! (energy conservation, caps, bounds) are checked directly. Inputs come
//! from the seeded generator in `common`.

mod common;

use common::{Gen, CASES};
use decarb::core::elastic::elastic_plan;
use decarb::core::flexload::{allocate_flexible, flat_allocation};
use decarb::forecast::linalg::{ridge, solve, Matrix};
use decarb::forecast::{
    mape_pct, rolling_forecast_trace, DiurnalTemplate, Forecaster, Persistence, SeasonalNaive,
};
use decarb::traces::grid::{Fleet, Generator};
use decarb::traces::mix::Source;
use decarb::traces::{Hour, TimeSeries};

/// A positive carbon trace of 2–10 days of hourly samples.
fn trace(g: &mut Gen) -> Vec<f64> {
    g.vec_in(1.0, 900.0, 48, 240)
}

/// Oracle: cheapest allocation of `work` replica-hours with ceiling `m`
/// over `values` — sort and fill.
fn elastic_oracle(values: &[f64], work: usize, m: usize) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut remaining = work;
    let mut cost = 0.0;
    for v in sorted {
        if remaining == 0 {
            break;
        }
        let take = m.min(remaining);
        cost += v * take as f64;
        remaining -= take;
    }
    cost
}

/// A small random-but-feasible fleet: one clean baseload, one mid, one
/// dirty peaker, capacities drawn from the generator.
fn fleet_of(caps: [f64; 3]) -> Fleet {
    Fleet::new(vec![
        Generator {
            name: "hydro",
            source: Source::Hydro,
            capacity_mw: caps[0],
            marginal_cost: 1.0,
            availability: None,
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: caps[1],
            marginal_cost: 30.0,
            availability: None,
        },
        Generator {
            name: "coal peaker",
            source: Source::Coal,
            capacity_mw: caps[2],
            marginal_cost: 80.0,
            availability: None,
        },
    ])
}

#[test]
fn elastic_plan_matches_oracle() {
    for case in 0..CASES {
        let mut g = Gen::new("elastic_oracle", case);
        let values = trace(&mut g);
        let work = g.usize_in(1, 40);
        let m = g.usize_in(1, 8);
        // `work ≤ m × window` always holds: work < 40 < 48 ≤ window.
        let window = values.len();
        let series = TimeSeries::new(Hour(0), values.clone());
        let plan = elastic_plan(&series, Hour(0), work, m, window);
        let expected = elastic_oracle(&values, work, m);
        assert!((plan.cost_g - expected).abs() < 1e-6, "case {case}");
        assert_eq!(plan.work_hours(), work, "case {case}");
        assert!(plan.peak_replicas() <= m, "case {case}");
    }
}

#[test]
fn elastic_cost_monotone_in_ceiling() {
    for case in 0..CASES {
        let mut g = Gen::new("elastic_monotone", case);
        let values = trace(&mut g);
        let work = g.usize_in(1, 30);
        let window = values.len();
        let series = TimeSeries::new(Hour(0), values);
        let mut last = f64::INFINITY;
        for m in [1usize, 2, 4, 8] {
            let cost = elastic_plan(&series, Hour(0), work, m, window).cost_g;
            assert!(cost <= last + 1e-9, "case {case} ceiling {m}");
            last = cost;
        }
    }
}

#[test]
fn seasonal_naive_is_exact_on_periodic_traces() {
    for case in 0..CASES {
        let mut g = Gen::new("seasonal_exact", case);
        let base = g.vec_in(10.0, 500.0, 24, 25);
        let days = g.usize_in(2, 8);
        let horizon = g.usize_in(1, 72);
        // Build a perfectly periodic history from one day's profile.
        let values: Vec<f64> = (0..days * 24).map(|i| base[i % 24]).collect();
        let history = TimeSeries::new(Hour(0), values);
        let fc = SeasonalNaive::daily().predict(&history, horizon);
        for (k, v) in fc.iter().enumerate() {
            let expected = base[(days * 24 + k) % 24];
            assert!((v - expected).abs() < 1e-9, "case {case} lead {k}");
        }
    }
}

#[test]
fn forecasts_have_requested_length_and_are_finite() {
    for case in 0..CASES {
        let mut g = Gen::new("forecast_shape", case);
        let values = trace(&mut g);
        let horizon = g.usize_in(1, 120);
        let history = TimeSeries::new(Hour(3), values);
        for model in [
            Box::new(Persistence) as Box<dyn Forecaster>,
            Box::new(SeasonalNaive::daily()),
            Box::new(SeasonalNaive::weekly()),
            Box::new(DiurnalTemplate::default()),
        ] {
            let fc = model.predict(&history, horizon);
            assert_eq!(fc.len(), horizon, "case {case}");
            assert!(fc.iter().all(|v| v.is_finite() && *v >= 0.0), "case {case}");
        }
    }
}

#[test]
fn rolling_trace_of_perfect_model_has_zero_mape() {
    for case in 0..CASES {
        let mut g = Gen::new("rolling_zero_mape", case);
        let base = g.vec_in(10.0, 500.0, 24, 25);
        let days = g.usize_in(3, 8);
        // On a perfectly periodic trace the daily seasonal naive *is* a
        // perfect forecaster, so the stitched believed trace equals truth.
        let values: Vec<f64> = (0..days * 24).map(|i| base[i % 24]).collect();
        let series = TimeSeries::new(Hour(0), values);
        let eval_start = Hour(24);
        let eval_hours = (days - 1) * 24;
        let believed = rolling_forecast_trace(
            &SeasonalNaive::daily(),
            &series,
            eval_start,
            eval_hours,
            24,
            24,
        );
        let truth = series.window(eval_start, eval_hours).unwrap();
        assert!(mape_pct(truth, believed.values()) < 1e-9, "case {case}");
    }
}

#[test]
fn solver_solution_satisfies_the_system() {
    for case in 0..CASES {
        let mut g = Gen::new("solver_system", case);
        let seed: Vec<f64> = (0..9).map(|_| g.f64_in(-10.0, 10.0)).collect();
        let rhs: Vec<f64> = (0..3).map(|_| g.f64_in(-10.0, 10.0)).collect();
        let mut a = Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                a.set(r, c, seed[r * 3 + c]);
            }
            // Diagonal dominance keeps the system well-conditioned.
            let v = a.get(r, r);
            a.set(r, r, v + 40.0 * v.signum().max(0.5));
        }
        let a2 = a.clone();
        if let Some(x) = solve(a, rhs.clone()) {
            for (r, &target) in rhs.iter().enumerate() {
                let lhs: f64 = (0..3).map(|c| a2.get(r, c) * x[c]).sum();
                assert!((lhs - target).abs() < 1e-6, "case {case} row {r}");
            }
        }
    }
}

#[test]
fn ridge_residual_never_beats_ols_target() {
    for case in 0..CASES {
        let mut g = Gen::new("ridge_residual", case);
        let xs = g.vec_in(-5.0, 5.0, 10, 40);
        let w0 = g.f64_in(-3.0, 3.0);
        let w1 = g.f64_in(-3.0, 3.0);
        // Exact linear data: tiny ridge recovers near-zero residual.
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let y: Vec<f64> = xs.iter().map(|&x| w0 * x + w1).collect();
        let w = ridge(&rows, &y, 1e-9).unwrap();
        let rss: f64 = rows
            .iter()
            .zip(&y)
            .map(|(r, &t)| {
                let p = r[0] * w[0] + r[1] * w[1];
                (p - t) * (p - t)
            })
            .sum();
        assert!(rss < 1e-6, "case {case} rss {rss}");
    }
}

#[test]
fn flexible_allocation_never_loses_to_flat() {
    for case in 0..CASES {
        let mut g = Gen::new("flexload_vs_flat", case);
        let caps = [
            g.f64_in(200.0, 800.0),
            g.f64_in(100.0, 600.0),
            g.f64_in(100.0, 600.0),
        ];
        let demand_frac = g.f64_in(0.2, 0.6);
        let energy_frac = g.f64_in(0.05, 0.25);
        let fleet = fleet_of(caps);
        let total_cap = caps[0] + caps[1] + caps[2];
        let demand_mw = total_cap * demand_frac;
        // A diurnal-ish wobble so hours differ.
        let demand = move |h: Hour| {
            demand_mw * (1.0 + 0.3 * (std::f64::consts::TAU * h.hour_of_day() as f64 / 24.0).sin())
        };
        let hours = 24usize;
        let headroom: f64 = (0..hours)
            .map(|i| (total_cap - demand(Hour(i as u32))).max(0.0))
            .sum();
        let energy = (headroom * energy_frac).max(1.0);
        let cap = energy; // Per-hour cap never binds in this test.
                          // The step must divide flat's per-hour share: greedy at step `s`
                          // is optimal among allocations in multiples of `s`, so flat
                          // (energy/24 everywhere = 4 steps of energy/96) is in its search
                          // space. A coarser step can genuinely lose to flat on
                          // piecewise-linear merit-order costs.
        let flexible =
            allocate_flexible(&fleet, demand, Hour(0), hours, energy, cap, energy / 96.0);
        let flat = flat_allocation(&fleet, demand, Hour(0), hours, energy);
        assert!((flexible.total_mwh() - energy).abs() < 1e-6, "case {case}");
        assert!(flexible.added_kg <= flat.added_kg + 1e-6, "case {case}");
        assert!(
            flexible.added_kg >= -1e-9,
            "case {case}: adding load cannot reduce emissions"
        );
    }
}
