//! `decarb` — facade crate for the EuroSys '24 reproduction of
//! *On the Limitations of Carbon-Aware Temporal and Spatial Workload
//! Shifting in the Cloud*.
//!
//! This crate re-exports the public APIs of the workspace members so
//! applications can depend on a single crate:
//!
//! * [`traces`] — carbon-intensity substrate (123-region catalog,
//!   deterministic synthesizer, merit-order grid dispatch, time series).
//! * [`stats`] — statistics toolkit (FFT periodicity, K-Means++, daily CV).
//! * [`forecast`] — carbon-intensity forecasting models (persistence,
//!   seasonal, climatology, linear AR) and rolling-origin evaluation.
//! * [`workloads`] — cloud workload models (Table 1 job dimensions, Azure-
//!   and Google-like length distributions).
//! * [`core`] — the paper's contribution: temporal and spatial shifting
//!   policies with ideal and constrained bounds, plus the extension
//!   modules (elastic scaling, embodied carbon, flexible grid load).
//! * [`sim`] — a discrete-event cloud simulator executing the same policies
//!   online, with optional suspend/resume/migration overheads.
//! * [`experiments`] — reproduction harness for every figure and table.
//!
//! # Examples
//!
//! ```
//! use decarb::prelude::*;
//!
//! let data = builtin_dataset();
//! let (greenest, mean) = data.greenest_region(2022);
//! assert_eq!(greenest.code, "SE");
//! assert!(mean < 20.0);
//! ```

pub use decarb_analyze as analyze;
pub use decarb_core as core;
pub use decarb_experiments as experiments;
pub use decarb_forecast as forecast;
pub use decarb_serve as serve;
pub use decarb_sim as sim;
pub use decarb_stats as stats;
pub use decarb_traces as traces;
pub use decarb_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use decarb_core::metrics::{absolute_reduction, relative_reduction};
    pub use decarb_core::spatial::{inf_migration, one_migration};
    pub use decarb_core::temporal::{TemporalPlanner, TemporalPolicy};
    pub use decarb_forecast::{Forecaster, MIN_HISTORY_HOURS};
    pub use decarb_traces::{builtin_catalog, builtin_dataset, GeoGroup, Hour, TraceSet};
    pub use decarb_workloads::{Job, JobLengthDistribution, Slack};
}
