//! What happens to carbon-aware scheduling as the grid decarbonizes?
//!
//! §6.3 of the paper argues that the *relative* benefit of carbon-aware
//! over carbon-agnostic scheduling shrinks as renewables grow. This
//! example reproduces that experiment for any region on the command line
//! (default: California).
//!
//! Run with `cargo run --release --example greener_grid -- US-CA`.

use decarb::core::greener::greener_trace;
use decarb::core::temporal::TemporalPlanner;
use decarb::traces::builtin_dataset;
use decarb::traces::time::{hours_in_year, year_start};

fn main() {
    let code = std::env::args().nth(1).unwrap_or_else(|| "US-CA".into());
    let data = builtin_dataset();
    let Ok(region) = data.region(&code) else {
        eprintln!("unknown region {code:?}; try US-CA, DE, IN-WE, ...");
        std::process::exit(1);
    };
    let start = year_start(2022);
    let count = hours_in_year(2022);
    let base = data
        .series(&region.code)
        .expect("trace exists")
        .slice(start, count)
        .expect("year in horizon");
    let lon_offset = (region.lon / 15.0).round() as i64;

    println!(
        "region {} ({}), 6-hour jobs with 24h slack",
        region.code, region.name
    );
    println!(
        "{:>11} | {:>12} | {:>10} | {:>12} | relative benefit",
        "renewables", "agnostic g/h", "aware g/h", "saving g/h"
    );
    for pct in [0, 20, 40, 60, 80] {
        let p = pct as f64 / 100.0;
        let trace = greener_trace(&base, p, lon_offset);
        let planner = TemporalPlanner::new(&trace);
        let sweep_count = count - 24 - 6;
        let baseline = planner.baseline_sweep(start, sweep_count, 6);
        let deferred = planner.deferral_sweep(start, sweep_count, 6, 24);
        let agnostic = baseline.iter().sum::<f64>() / sweep_count as f64 / 6.0;
        let aware = deferred.iter().sum::<f64>() / sweep_count as f64 / 6.0;
        println!(
            "{:>10}% | {:>12.1} | {:>10.1} | {:>12.1} | {:>6.1}%",
            pct,
            agnostic,
            aware,
            agnostic - aware,
            (agnostic - aware) / agnostic * 100.0
        );
    }
    println!();
    println!("the absolute saving (g/h column) shrinks as the grid gets greener even");
    println!("though the *percentage* rises: carbon-agnostic scheduling gets cleaner");
    println!("for free, leaving less absolute carbon for the scheduler to chase (§6.3).");
}
