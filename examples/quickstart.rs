//! Quickstart: how much carbon can one job save?
//!
//! Loads the built-in 123-region dataset, takes a 6-hour batch job
//! arriving in Germany at evening peak, and compares the paper's four
//! scheduling options: run now, defer within 24 h, defer+interrupt, and
//! migrate to the greenest region.
//!
//! Run with `cargo run --release --example quickstart`.

use decarb::prelude::*;
use decarb_traces::time::year_start;

fn main() {
    let data = builtin_dataset();
    let arrival = year_start(2022).plus(9 * 24 + 17); // Jan 10, 17:00 UTC
    let origin = data.id_of("DE").expect("origin in catalog");
    let job = Job::batch(1, origin, arrival, 6.0, Slack::Day);

    let series = data.series_by_id(job.origin);
    let planner = TemporalPlanner::new(series);
    let slots = job.length_slots();
    let slack = job.slack_hours();

    let baseline = planner.baseline_cost(job.arrival, slots);
    let deferred = planner.best_deferred(job.arrival, slots, slack);
    let (_, interrupted) = planner.best_interruptible(job.arrival, slots, slack);

    let all_regions: Vec<&decarb_traces::Region> = data.regions().iter().collect();
    let migrated = one_migration(&data, &all_regions, 2022, job.arrival, slots);
    let (hopped, hops) = inf_migration(&data, &all_regions, job.arrival, slots);

    println!(
        "6-hour job arriving in {} at {arrival}",
        data.code(job.origin)
    );
    println!("  run immediately:          {baseline:8.1} g CO2eq");
    println!(
        "  defer within 24h:         {:8.1} g CO2eq ({:+5.1}% vs baseline, start {})",
        deferred.cost_g,
        (deferred.cost_g - baseline) / baseline * 100.0,
        deferred.start
    );
    println!(
        "  defer + interrupt:        {:8.1} g CO2eq ({:+5.1}%)",
        interrupted,
        (interrupted - baseline) / baseline * 100.0
    );
    println!(
        "  migrate once ({}):        {:8.1} g CO2eq ({:+5.1}%)",
        migrated.destination,
        migrated.cost_g,
        (migrated.cost_g - baseline) / baseline * 100.0
    );
    println!(
        "  hop hourly ({} hops):      {:8.1} g CO2eq ({:+5.1}%)",
        hops,
        hopped.cost_g,
        (hopped.cost_g - baseline) / baseline * 100.0
    );
    println!();
    let per_hour = absolute_reduction(baseline, migrated.cost_g) / slots as f64;
    println!(
        "spatial shifting saves {:.1} g per job hour — {:.1}% of the global average CI",
        per_hour,
        relative_reduction(per_hour)
    );
    println!("note how little the clairvoyant hourly hopping adds over one migration —");
    println!("that is the paper's §5.1.4 takeaway.");
}
