//! The grid operator's view: average vs marginal signals and flexible load.
//!
//! Builds a merit-order grid with must-run coal, night wind (regularly
//! curtailed), solar noon, and gas peaking — the canonical case where the
//! *average* carbon-intensity signal that carbon-information services
//! publish points the wrong way. A deferrable job scheduled by average CI
//! lands on the gas margin; scheduled by marginal CI it soaks up curtailed
//! wind. Then a datacenter's whole daily energy is placed as flexible
//! load, quantifying the paper's closing argument that clouds may serve
//! decarbonization best by supporting the grid.
//!
//! Run with `cargo run --release --example grid_operator`.

use decarb::core::flexload::{allocate_by_average_ci, allocate_flexible, flat_allocation};
use decarb::core::signals::compare_signals;
use decarb::traces::grid::{solar_availability, Fleet, Generator};
use decarb::traces::mix::Source;
use decarb::traces::Hour;

fn night_wind(hour: Hour) -> f64 {
    if !(6..20).contains(&hour.hour_of_day()) {
        1.0
    } else {
        0.1
    }
}

fn grid() -> Fleet {
    Fleet::new(vec![
        Generator {
            name: "must-run coal",
            source: Source::Coal,
            capacity_mw: 500.0,
            marginal_cost: -5.0,
            availability: None,
        },
        Generator {
            name: "wind",
            source: Source::Wind,
            capacity_mw: 400.0,
            marginal_cost: 0.0,
            availability: Some(night_wind),
        },
        Generator {
            name: "solar",
            source: Source::Solar,
            capacity_mw: 800.0,
            marginal_cost: 1.0,
            availability: Some(solar_availability),
        },
        Generator {
            name: "gas",
            source: Source::Gas,
            capacity_mw: 1200.0,
            marginal_cost: 40.0,
            availability: None,
        },
    ])
}

fn demand(hour: Hour) -> f64 {
    if (8..20).contains(&hour.hour_of_day()) {
        1400.0
    } else {
        800.0
    }
}

fn main() {
    let fleet = grid();

    println!("hour-by-hour: average CI vs marginal CI vs curtailment\n");
    println!(
        "{:>4} {:>10} {:>10} {:>12}",
        "hour", "avg g/kWh", "marg g/kWh", "curtailed MW"
    );
    for h in [0u32, 4, 8, 12, 16, 20] {
        let d = fleet.dispatch(Hour(h), demand(Hour(h)));
        println!(
            "{h:>4} {:>10.1} {:>10.1} {:>12.1}",
            d.average_ci, d.marginal_ci, d.curtailed_mw
        );
    }

    let cmp = compare_signals(&fleet, demand, Hour(0), 48, 4, 30, 100.0);
    println!("\na 100 MW, 4-hour job with 30h slack:");
    println!(
        "  scheduled by average CI  → starts {:>3} (hour {:>2}), adds {:>9.0} kg",
        cmp.average_start,
        cmp.average_start.hour_of_day(),
        cmp.average_added_kg
    );
    println!(
        "  scheduled by marginal CI → starts {:>3} (hour {:>2}), adds {:>9.0} kg",
        cmp.marginal_start,
        cmp.marginal_start.hour_of_day(),
        cmp.marginal_added_kg
    );
    println!(
        "  the average signal costs {:.0}x more than the margin-aware choice",
        cmp.average_added_kg / cmp.marginal_added_kg.max(1.0)
    );

    println!("\nplacing a datacenter's 1.2 GWh/day as flexible load (100 MW cap):");
    let flat = flat_allocation(&fleet, demand, Hour(0), 24, 1200.0);
    let avg = allocate_by_average_ci(&fleet, demand, Hour(0), 24, 1200.0, 100.0);
    let flex = allocate_flexible(&fleet, demand, Hour(0), 24, 1200.0, 100.0, 25.0);
    for (name, alloc) in [
        ("flat (always-on)", &flat),
        ("average-CI greedy", &avg),
        ("consequential greedy", &flex),
    ] {
        println!(
            "  {name:<22} adds {:>9.0} kg, absorbs {:>6.0} MWh of curtailed wind",
            alloc.added_kg, alloc.absorbed_curtailment_mwh
        );
    }
    println!("\nthe consequential placement both cuts the datacenter's true footprint and");
    println!("raises the grid's renewable utilization — the paper's future-work thesis.");
}
