//! Latency-aware global request routing.
//!
//! §5.1.3 of the paper studies interactive workloads that can be served
//! from any datacenter within a latency SLO. This example sweeps SLOs for
//! requests originating in Germany and reports where they may run, which
//! feasible region is greenest, and what the carbon price of latency is.
//!
//! Run with `cargo run --release --example global_router`.

use decarb::core::latency::LatencyMatrix;
use decarb::traces::builtin_dataset;

fn main() {
    let data = builtin_dataset();
    let regions: Vec<&decarb::traces::Region> = data.regions().iter().collect();
    let matrix = LatencyMatrix::build(&regions);
    let means = data.annual_means(2022);
    let mean_of = |code: &str| {
        means
            .iter()
            .find(|(r, _)| r.code == code)
            .map(|(_, m)| *m)
            .expect("region known")
    };
    let origin = "DE";
    println!(
        "interactive requests from {origin} (local grid {:.0} g/kWh)",
        mean_of(origin)
    );
    println!(
        "{:>8} | {:>9} | {:<10} | {:>12} | saving vs local",
        "SLO ms", "feasible", "greenest", "g/kWh there"
    );
    for slo in [10.0, 25.0, 50.0, 100.0, 150.0, 250.0] {
        let feasible = matrix.feasible_from(origin, slo);
        let best = feasible
            .iter()
            .min_by(|a, b| mean_of(a).total_cmp(&mean_of(b)))
            .copied()
            .unwrap_or(origin);
        let best_mean = mean_of(best);
        println!(
            "{:>8.0} | {:>9} | {:<10} | {:>12.1} | {:>6.1} g/kWh",
            slo,
            feasible.len(),
            best,
            best_mean,
            mean_of(origin) - best_mean,
        );
    }
    println!();
    println!("a ~25 ms budget already unlocks most of Europe's green regions;");
    println!("the paper's Fig. 6(a) shows the same saturation globally by ~250 ms.");
}
