//! Elastic ML training: scaling replicas with the carbon signal.
//!
//! A training job needs 96 replica-hours of work within a week. With one
//! replica it must occupy 96 hours of the trace; with an elastic ceiling
//! it can burst in the deepest carbon valleys (CarbonScaler's dimension,
//! the paper's reference [22]). This example sweeps the ceiling across
//! regions with different variability — the benefit tracks the paper's
//! §4 finding: elasticity only pays where the carbon signal actually
//! varies.
//!
//! Run with `cargo run --release --example elastic_training`.

use decarb::core::elastic::{elastic_plan, elasticity_curve};
use decarb::prelude::*;
use decarb_traces::time::year_start;

fn main() {
    let data = builtin_dataset();
    let arrival = year_start(2022).plus(31 * 24); // Feb 1.
    let (work, window) = (96usize, 7 * 24usize);
    let ceilings = [1usize, 2, 4, 8, 16, 32];

    println!("96 replica-hours of training within one week, arriving Feb 1\n");
    for code in ["US-CA", "DE", "SE", "IN-WE"] {
        let series = data.series(code).expect("region trace");
        let curve = elasticity_curve(series, arrival, work, &ceilings, window);
        let serial = curve[0].1;
        print!("{code:>6}: ");
        for (m, cost) in &curve {
            print!("m={m:<2} {:>5.1}%  ", (serial - cost) / serial * 100.0);
        }
        println!();
    }
    println!("        (saving vs a single always-resumable replica, clairvoyant)\n");

    // Zoom into California: what does the m=8 plan look like?
    let series = data.series("US-CA").expect("trace");
    let plan = elastic_plan(series, arrival, work, 8, window);
    println!(
        "US-CA, ceiling 8: {} active hours, makespan {} h, peak {} replicas, {:.0} g total",
        plan.schedule.len(),
        plan.makespan_hours(),
        plan.peak_replicas(),
        plan.cost_g
    );
    let noon_hours = plan
        .schedule
        .iter()
        .filter(|(h, _)| (10..16).contains(&h.hour_of_day()))
        .count();
    println!(
        "{} of {} active hours fall in the 10:00-16:00 solar window — the plan\n\
         surfs the duck curve, exactly what CarbonScaler exploits.",
        noon_hours,
        plan.schedule.len()
    );
    println!("\nstable grids (SE, IN-WE) gain almost nothing from elasticity: without");
    println!("carbon-intensity variance there are no valleys to burst into (§4).");
}
