//! Carbon-aware scheduling of an ML training campaign.
//!
//! The paper's §2.2.1 motivates temporal shifting with batch ML training:
//! long jobs with slack that can be suspended and resumed. This example
//! runs a month-long campaign of training jobs (Google-like length mix)
//! through the discrete-event simulator under three policies and compares
//! realized emissions:
//!
//! * carbon-agnostic FIFO (run on arrival),
//! * clairvoyant planned deferral (the paper's upper bound),
//! * online threshold suspend/resume (no future knowledge).
//!
//! Run with `cargo run --release --example ml_training`.

use decarb::sim::{CarbonAgnostic, PlannedDeferral, SimConfig, Simulator, ThresholdSuspend};
use decarb::traces::builtin_dataset;
use decarb::traces::time::year_start;
use decarb::workloads::{ClusterTrace, ClusterTraceConfig, JobLengthDistribution, Slack};

fn main() {
    let data = builtin_dataset();
    let origin = data.id_of("US-CA").expect("origin in catalog");
    let trace = ClusterTrace::generate(
        origin,
        &ClusterTraceConfig {
            year: 2022,
            jobs: 3000,
            distribution: JobLengthDistribution::GoogleLike,
            slack: Slack::Day,
            interruptible: true,
            seed: 7,
        },
    );
    // Keep the batch (≥ 1 h) jobs arriving in the first month so the
    // simulation horizon comfortably covers every deadline.
    let start = year_start(2022);
    let jobs: Vec<_> = trace
        .jobs
        .iter()
        .filter(|j| j.arrival.0 < start.0 + 28 * 24 && j.length_hours >= 1.0)
        .cloned()
        .collect();
    let region = origin;

    let config = SimConfig::new(start, 60 * 24, 64);

    let mut results = Vec::new();
    for (name, report) in [
        (
            "carbon-agnostic FIFO",
            Simulator::new(&data, &[region], config.clone()).run(&mut CarbonAgnostic, &jobs),
        ),
        (
            "clairvoyant deferral",
            Simulator::new(&data, &[region], config.clone()).run(&mut PlannedDeferral, &jobs),
        ),
        (
            "online threshold",
            Simulator::new(&data, &[region], config.clone())
                .run(&mut ThresholdSuspend::default(), &jobs),
        ),
    ] {
        results.push((name, report));
    }

    println!(
        "{} training jobs in {} (Google-like lengths, 24h slack, interruptible)",
        jobs.len(),
        data.code(origin)
    );
    let baseline = results[0].1.total_emissions_g;
    for (name, report) in &results {
        println!(
            "  {name:22} {:>12.0} g CO2eq  ({:>6.1} g/kWh avg, {:+5.1}% vs agnostic, {} done, {} missed deadlines)",
            report.total_emissions_g,
            report.average_ci(),
            (report.total_emissions_g - baseline) / baseline * 100.0,
            report.completed_count(),
            report.missed_deadlines(),
        );
    }

    // The paper's true upper bound: clairvoyant deferral + interruption.
    let planner = decarb::core::temporal::TemporalPlanner::new(data.series_by_id(origin));
    let bound: f64 = jobs
        .iter()
        .map(|j| {
            planner
                .best_interruptible(j.arrival, j.length_slots(), j.slack_hours())
                .1
        })
        .sum();
    println!(
        "  {:22} {:>12.0} g CO2eq  ({:+5.1}% vs agnostic)",
        "defer+interrupt bound",
        bound,
        (bound - baseline) / baseline * 100.0
    );
    println!();
    println!("with mostly week-long jobs and 24h slack, even the clairvoyant bound");
    println!("saves only a few percent — the paper's central \"limited in practice\"");
    println!("finding. The online threshold policy lands between FIFO and the bound.");
}
