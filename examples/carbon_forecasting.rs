//! Carbon forecasting: how predictable is the grid, and does it matter?
//!
//! Backtests four forecasters on California's 2022 trace, then schedules
//! a deferrable job against each model's day-ahead forecast and pays for
//! it on the true trace — the gap to the clairvoyant bound is the real
//! cost of imperfect forecasts (the practical counterpart of the paper's
//! §6.2 uniform-error what-if).
//!
//! Run with `cargo run --release --example carbon_forecasting`.

use decarb::forecast::{
    backtest, rolling_forecast_trace, BacktestConfig, DiurnalTemplate, Forecaster, LinearAr,
    Persistence, SeasonalNaive,
};
use decarb::prelude::*;
use decarb_core::forecast::temporal_increase_pct;
use decarb_traces::time::year_start;

fn main() {
    let data = builtin_dataset();
    let region = "US-CA";
    let series = data.series(region).expect("trace exists");
    let eval_start = year_start(2022);
    let eval_hours = 120 * 24;

    // Fit the learned model on the preceding year, like a deployment would.
    let train = series
        .slice(year_start(2021), 8760)
        .expect("training year in trace");
    let ar = LinearAr::fit(&train).expect("full year of history fits the AR model");
    let models: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("persistence", Box::new(Persistence)),
        ("seasonal-naive (24h)", Box::new(SeasonalNaive::daily())),
        ("diurnal-template", Box::new(DiurnalTemplate::default())),
        ("linear-AR", Box::new(ar)),
    ];

    println!("forecasting {region}'s carbon-intensity, 96-hour horizon\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "model", "MAPE %", "day1 %", "day4 %"
    );
    let config = BacktestConfig::default();
    for (name, model) in &models {
        let report = backtest(model.as_ref(), series, eval_start, eval_hours, &config);
        println!(
            "{name:<22} {:>8.2} {:>8.2} {:>8.2}",
            report.mape_pct, report.mape_by_lead_day[0], report.mape_by_lead_day[3]
        );
    }

    // Now the part schedulers care about: schedule a 6-hour job with 48
    // hours of slack on the *believed* trace, pay on the truth.
    println!("\nscheduling a 6h job (48h slack) on each model's rolling forecast:");
    let (slots, slack) = (6usize, 48usize);
    let sweep = eval_hours - slots - slack;
    for (name, model) in &models {
        let believed = rolling_forecast_trace(
            model.as_ref(),
            series,
            eval_start,
            eval_hours,
            24,
            config.history,
        );
        let increase =
            temporal_increase_pct(series, &believed, eval_start, sweep, slots, slack, 13);
        println!("  {name:<22} +{increase:5.2}% emissions vs clairvoyant deferral");
    }
    println!("\na CarbonCast-grade forecaster gives up only a few percent of the ideal");
    println!("savings — forecast quality is not the binding constraint the paper finds.");
}
