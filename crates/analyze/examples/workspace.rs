//! Prints the analyzer report for the workspace containing this crate.
//! Handy for local runs: `cargo run -p decarb-analyze --example workspace`.

use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap_or_else(|| Path::new("."));
    match decarb_analyze::analyze_workspace(root) {
        Ok(outcome) => {
            println!(
                "{} files scanned\n{}",
                outcome.files,
                decarb_analyze::render_report(&outcome.diagnostics)
            );
            std::process::exit(if outcome.diagnostics.is_empty() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
