//! Token-level Rust lexer for the lint rules.
//!
//! Deliberately not a parser: it produces a flat token stream with line
//! numbers, strips comments/strings/char literals (they become opaque
//! [`TokenKind::Literal`] tokens), collects `decarb-analyze:` directive
//! comments, and can mask `#[cfg(test)]` items and resolve
//! `hot-path`-annotated regions by brace matching. That is enough for
//! every rule in [`crate::rules`] while staying dependency-free and
//! fast (the whole workspace lexes in milliseconds).

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation byte (`.`, `(`, `!`, ...).
    Punct(u8),
    /// String/char/numeric literal, content opaque to the rules.
    Literal,
    /// `'label` / `'lifetime` (distinct from char literals).
    Lifetime,
}

/// One token with its source text and 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: usize,
}

impl<'a> Token<'a> {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token of exactly this byte.
    pub fn is_punct(&self, byte: u8) -> bool {
        self.kind == TokenKind::Punct(byte)
    }
}

/// A `decarb-analyze:` comment, with its placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the comment.
    pub line: usize,
    /// True for inner doc comments (`//! decarb-analyze: ...`), which
    /// scope to the whole file rather than the next item.
    pub inner: bool,
    /// Text after `decarb-analyze:`, trimmed.
    pub body: String,
}

/// Lexed view of one source file.
#[derive(Debug)]
pub struct LexedFile<'a> {
    pub tokens: Vec<Token<'a>>,
    pub directives: Vec<Directive>,
}

const DIRECTIVE_PREFIX: &str = "decarb-analyze:";

/// Lexes `source` into tokens and directives.
pub fn lex(source: &str) -> LexedFile<'_> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                collect_directive(&source[start..i], line, &mut directives);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment; count newlines as we skip it.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(bytes, i + 1, true, 0, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"...\"",
                    line: tok_line,
                });
            }
            b'r' | b'b' | b'c' if is_raw_or_byte_string(bytes, i) => {
                let tok_line = line;
                let (body_start, hashes, raw) = string_prefix(bytes, i);
                i = skip_string(bytes, body_start, !raw, hashes, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"...\"",
                    line: tok_line,
                });
            }
            b'\'' => {
                let tok_line = line;
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let mut j = i + 1;
                if j < bytes.len() && is_ident_start(bytes[j]) {
                    let ident_start = j;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'\'') {
                        // Char literal such as 'a'.
                        tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: "'.'",
                            line: tok_line,
                        });
                        i = j + 1;
                    } else {
                        tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: &source[ident_start..j],
                            line: tok_line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    while j < bytes.len() {
                        if bytes[j] == b'\\' {
                            j += 2;
                        } else if bytes[j] == b'\'' {
                            j += 1;
                            break;
                        } else {
                            if bytes[j] == b'\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'.'",
                        line: tok_line,
                    });
                    i = j;
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: &source[start..i],
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                // Covers hex/octal/binary, underscores, and suffixes;
                // `1.5` lexes as Literal Punct('.') Literal, which the
                // rules never confuse with a method call.
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: &source[start..i],
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct(b),
                    text: &source[i..i + 1],
                    line,
                });
                i += 1;
            }
        }
    }
    LexedFile { tokens, directives }
}

fn collect_directive(comment: &str, line: usize, directives: &mut Vec<Directive>) {
    // comment starts with "//"; "///" outer docs never carry directives,
    // "//!" inner docs scope to the file.
    let rest = &comment[2..];
    let (inner, rest) = match rest.as_bytes().first() {
        Some(b'!') => (true, &rest[1..]),
        Some(b'/') => return,
        _ => (false, rest),
    };
    let rest = rest.trim_start();
    if let Some(body) = rest.strip_prefix(DIRECTIVE_PREFIX) {
        directives.push(Directive {
            line,
            inner,
            body: body.trim().to_string(),
        });
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does the ident starting at `i` begin a raw/byte/C string literal
/// (`r"`, `r#"`, `b"`, `br#"`, `c"`, `cr#"`)?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < bytes.len() && j - i < 2 && matches!(bytes[j], b'r' | b'b' | b'c') {
        j += 1;
    }
    // Only prefixes containing `r` may take hashes.
    let raw = bytes[i..j].contains(&b'r');
    if raw {
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    // Reject plain idents like `radius` (no quote follows) and byte
    // char literals like `b'x'` (handled by the `'` arm after the `b`
    // lexes as an ident — close enough for linting purposes).
    bytes.get(j) == Some(&b'"')
}

/// Returns (index just past the opening quote, hash count, raw?).
fn string_prefix(bytes: &[u8], i: usize) -> (usize, usize, bool) {
    let mut j = i;
    while j < bytes.len() && matches!(bytes[j], b'r' | b'b' | b'c') && j - i < 2 {
        j += 1;
    }
    let raw = bytes[i..j].contains(&b'r');
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j + 1, hashes, raw)
}

/// Skips a string body starting just past the opening quote; returns
/// the index just past the closing delimiter.
fn skip_string(
    bytes: &[u8],
    mut i: usize,
    escapes: bool,
    hashes: usize,
    line: &mut usize,
) -> usize {
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            *line += 1;
            i += 1;
        } else if escapes && b == b'\\' {
            i += 2;
        } else if b == b'"' {
            if hashes == 0 {
                return i + 1;
            }
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item
/// (including the attribute itself and any stacked attributes).
pub fn test_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct(b'#') || !matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, b'[', b']') else {
            break;
        };
        if !is_test_attr(&tokens[i + 2..close]) {
            i = close + 1;
            continue;
        }
        // Mark this attribute, any further stacked attributes, and the
        // item they decorate (to its closing `}` or terminating `;`).
        let mut end = close;
        let mut k = close + 1;
        while k < tokens.len()
            && tokens[k].is_punct(b'#')
            && matches!(tokens.get(k + 1), Some(t) if t.is_punct(b'['))
        {
            match matching(tokens, k + 1, b'[', b']') {
                Some(c) => {
                    end = c;
                    k = c + 1;
                }
                None => break,
            }
        }
        // Walk the item: the first top-level `{...}` block or `;` ends it.
        while k < tokens.len() {
            if tokens[k].is_punct(b'{') {
                match matching(tokens, k, b'{', b'}') {
                    Some(c) => end = c,
                    None => end = tokens.len() - 1,
                }
                break;
            }
            if tokens[k].is_punct(b';') {
                end = k;
                break;
            }
            end = k;
            k += 1;
        }
        for slot in mask.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    mask
}

/// `cfg ( test )` (possibly inside `cfg(all(test, ...))`) or a bare
/// `test` attribute. `cfg(not(test))` is explicitly NOT a test attr.
fn is_test_attr(attr: &[Token<'_>]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    if attr.first().is_some_and(|t| t.is_ident("cfg")) {
        // Find a `test` ident not preceded by `not (`.
        for (idx, tok) in attr.iter().enumerate() {
            if tok.is_ident("test") {
                let negated =
                    idx >= 2 && attr[idx - 1].is_punct(b'(') && attr[idx - 2].is_ident("not");
                if !negated {
                    return true;
                }
            }
        }
    }
    false
}

/// Index of the token closing the delimiter opened at `open_idx`.
pub fn matching(tokens: &[Token<'_>], open_idx: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open_idx) {
        if tok.is_punct(open) {
            depth += 1;
        } else if tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Marks tokens inside `hot-path` regions: the whole file when an inner
/// (`//!`) directive declares it, otherwise the item following each
/// standalone `// decarb-analyze: hot-path` line.
pub fn hot_mask(tokens: &[Token<'_>], directives: &[Directive]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    if directives.iter().any(|d| d.inner && d.body == "hot-path") {
        mask.iter_mut().for_each(|slot| *slot = true);
        return mask;
    }
    for directive in directives
        .iter()
        .filter(|d| !d.inner && d.body == "hot-path")
    {
        let Some(start) = tokens.iter().position(|t| t.line > directive.line) else {
            continue;
        };
        let mut end = start;
        let mut k = start;
        while k < tokens.len() {
            if tokens[k].is_punct(b'{') {
                end = matching(tokens, k, b'{', b'}').unwrap_or(tokens.len() - 1);
                break;
            }
            if tokens[k].is_punct(b';') {
                end = k;
                break;
            }
            end = k;
            k += 1;
        }
        for slot in mask.iter_mut().take(end + 1).skip(start) {
            *slot = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"raw with "quote" and unwrap"#;
            let c = 'x';
            let esc = '\n';
        "##;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"panic".to_string()));
        assert!(names.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) {}").tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b_tok = toks.iter().find(|t| t.is_ident("b")).expect("b lexed");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn directives_are_collected_with_placement() {
        let src = "//! decarb-analyze: hot-path\n// decarb-analyze: allow(no-panic) -- reason here\n/// decarb-analyze: not-a-directive\nfn f() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 2);
        assert!(lexed.directives[0].inner);
        assert_eq!(lexed.directives[0].body, "hot-path");
        assert!(!lexed.directives[1].inner);
        assert!(lexed.directives[1].body.starts_with("allow(no-panic)"));
        assert_eq!(lexed.directives[1].line, 2);
    }

    #[test]
    fn test_mask_covers_cfg_test_modules_only() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        for (tok, masked) in lexed.tokens.iter().zip(&mask) {
            if tok.is_ident("live") || tok.is_ident("live2") {
                assert!(!masked, "{} wrongly masked", tok.text);
            }
            if tok.is_ident("t") || tok.is_ident("tests") {
                assert!(masked, "{} not masked", tok.text);
            }
        }
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn shipping() { x.unwrap(); }\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        assert!(mask.iter().all(|m| !m));
    }

    #[test]
    fn stacked_attributes_mask_the_whole_test_fn() {
        let src = "#[test]\n#[ignore]\nfn slow() { x.unwrap(); }\nfn live() {}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        for (tok, masked) in lexed.tokens.iter().zip(&mask) {
            if tok.is_ident("unwrap") {
                assert!(masked);
            }
            if tok.is_ident("live") {
                assert!(!masked);
            }
        }
    }

    #[test]
    fn hot_mask_scopes_to_next_item() {
        let src = "fn cold() { a(); }\n// decarb-analyze: hot-path\nfn hot() { b(); }\nfn cold2() { c(); }\n";
        let lexed = lex(src);
        let mask = hot_mask(&lexed.tokens, &lexed.directives);
        for (tok, masked) in lexed.tokens.iter().zip(&mask) {
            match tok.text {
                "b" | "hot" => assert!(masked, "{} should be hot", tok.text),
                "a" | "c" | "cold" | "cold2" => {
                    assert!(!masked, "{} should be cold", tok.text)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn inner_hot_directive_marks_whole_file() {
        let src = "//! decarb-analyze: hot-path\nfn a() {}\nfn b() {}\n";
        let lexed = lex(src);
        let mask = hot_mask(&lexed.tokens, &lexed.directives);
        assert!(!mask.is_empty());
        assert!(mask.iter().all(|m| *m));
    }
}
