//! `decarb-analyze` — in-tree static analysis for the workspace.
//!
//! The sweep pipeline's guarantees (bit-exact sharding, 0.0000% golden
//! drift, content-addressed scenario ids) rest on invariants nothing
//! used to enforce statically: no panics in library code (a worker
//! panic poisons a whole shard), no string hashing or allocation on the
//! `RegionId` hot path, and no shared-mutability primitives smuggled
//! into `decarb-par` fan-outs. This crate enforces them with a small
//! token-level Rust lexer — comments, strings, idents, line numbers; no
//! full parse, in the spirit of the in-tree `decarb-json` — driving
//! three rules over the workspace:
//!
//! | rule | what it flags |
//! |------|---------------|
//! | `no-panic` | `.unwrap()`, `.expect(...)`, `panic!`, `todo!`, `unimplemented!` in library crates outside `#[cfg(test)]` |
//! | `hot-path` | `format!`, `.clone()`, `Vec::new`, `String::new`, `.to_string()`, `.to_owned()`, and `String`-keyed map types inside code annotated `decarb-analyze: hot-path` |
//! | `par-safety` | `Mutex`, `RefCell`, or `static mut` captured inside `decarb_par::par_map` / `par_map_with` / `par_for_each` call arguments |
//!
//! A diagnostic is suppressed with a trailing (or immediately
//! preceding) comment that **must carry a reason**:
//!
//! ```text
//! let slot = table[i].expect("interned above"); // decarb-analyze: allow(no-panic) -- slot filled by the intern loop two lines up
//! ```
//!
//! Reason-less `allow(...)` directives and suppressions that no longer
//! match a diagnostic are themselves diagnostics, so the suppression
//! inventory cannot rot. Hot-path scope is opt-in: `//! decarb-analyze:
//! hot-path` marks a whole file, a standalone `// decarb-analyze:
//! hot-path` line marks the item that follows it.
//!
//! The semantic *scenario* checker (`scenario check`) builds on the
//! [`Diagnostic`] type exported here but lives in `decarb-sim`, next to
//! the scenario types it validates.

pub mod lexer;
pub mod rules;
pub mod workspace;

use decarb_json::Value;

pub use rules::{lint_source, LintConfig};
pub use workspace::{analyze_tree, analyze_workspace, AnalyzeOutcome, LIBRARY_CRATES};

/// One finding, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (or a caller-chosen label such as
    /// `<builtin>`).
    pub file: String,
    /// 1-based line the finding anchors to (0 when no span applies).
    pub line: usize,
    /// Rule slug (`no-panic`, `hot-path`, `par-safety`,
    /// `unsatisfiable-job`, ...).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        file: impl Into<String>,
        line: usize,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            file: file.into(),
            line,
            rule: rule.into(),
            message: message.into(),
        }
    }

    /// Renders the `file:line: [rule] message` text form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }

    /// Serializes the diagnostic as a JSON object in the canonical
    /// envelope field order (`file`, `line`, `rule`, `message`) shared
    /// by every emitter via [`decarb_json::diagnostic_object`].
    pub fn to_json(&self) -> Value {
        decarb_json::diagnostic_object(&self.file, self.line, &self.rule, &self.message)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serializes a diagnostic list as a JSON array (the machine-readable
/// `analyze --json` / `scenario check --json` payload).
pub fn diagnostics_to_json(diagnostics: &[Diagnostic]) -> Value {
    Value::Array(diagnostics.iter().map(Diagnostic::to_json).collect())
}

/// Renders a diagnostic list as one line per finding, sorted by file
/// then line, with a trailing count.
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diagnostics.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut out = String::new();
    for diag in &sorted {
        out.push_str(&diag.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "{} diagnostic{}",
        sorted.len(),
        if sorted.len() == 1 { "" } else { "s" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_and_serialize() {
        let d = Diagnostic::new(
            "crates/sim/src/engine.rs",
            42,
            "no-panic",
            "`.unwrap()` call",
        );
        assert_eq!(
            d.render(),
            "crates/sim/src/engine.rs:42: [no-panic] `.unwrap()` call"
        );
        let json = d.to_json();
        assert_eq!(json.get("line"), Some(&Value::from(42.0)));
        assert_eq!(json.get("rule"), Some(&Value::from("no-panic")));
        let list = diagnostics_to_json(std::slice::from_ref(&d));
        let Value::Array(items) = &list else {
            panic!("array expected")
        };
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn envelope_field_order_is_pinned() {
        // `analyze --json` and `scenario check --json` both serialize
        // through this path; docs/API.md documents the field order as
        // `file`, `line`, `rule`, `message`. Byte-exact pin.
        let d = Diagnostic::new("a.rs", 7, "hot-path", "allocation");
        assert_eq!(
            d.to_json().to_string(),
            r#"{"file":"a.rs","line":7,"rule":"hot-path","message":"allocation"}"#
        );
        assert_eq!(
            diagnostics_to_json(std::slice::from_ref(&d)).to_string(),
            r#"[{"file":"a.rs","line":7,"rule":"hot-path","message":"allocation"}]"#
        );
    }

    #[test]
    fn report_sorts_by_file_and_line_and_counts() {
        let diags = vec![
            Diagnostic::new("b.rs", 9, "no-panic", "x"),
            Diagnostic::new("a.rs", 3, "hot-path", "y"),
            Diagnostic::new("a.rs", 1, "no-panic", "z"),
        ];
        let report = render_report(&diags);
        let lines: Vec<&str> = report.lines().collect();
        assert!(lines[0].starts_with("a.rs:1:"));
        assert!(lines[1].starts_with("a.rs:3:"));
        assert!(lines[2].starts_with("b.rs:9:"));
        assert_eq!(lines[3], "3 diagnostics");
        assert_eq!(render_report(&[]).trim(), "0 diagnostics");
    }
}
