//! Lint rules over the token stream: `no-panic`, `hot-path`,
//! `par-safety`, plus directive hygiene (suppressions must carry a
//! reason and must actually suppress something).

use crate::lexer::{self, Directive, Token, TokenKind};
use crate::Diagnostic;

/// Rule slugs that can appear in `allow(...)` directives.
pub const SOURCE_RULES: &[&str] = &["no-panic", "hot-path", "par-safety"];

/// Per-file rule configuration.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Enforce `no-panic` (library crates only; binaries may panic at
    /// the top level).
    pub no_panic: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self { no_panic: true }
    }
}

/// Lints one source file. `file` is the label used in diagnostics.
pub fn lint_source(file: &str, source: &str, config: &LintConfig) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let test = lexer::test_mask(&lexed.tokens);
    let hot = lexer::hot_mask(&lexed.tokens, &lexed.directives);
    let mut findings = Vec::new();
    if config.no_panic {
        scan_no_panic(file, &lexed.tokens, &test, &mut findings);
    }
    scan_hot_path(file, &lexed.tokens, &test, &hot, &mut findings);
    scan_par_safety(file, &lexed.tokens, &test, &mut findings);
    apply_directives(file, &lexed.directives, config, findings)
}

fn scan_no_panic(file: &str, tokens: &[Token<'_>], test: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if test[i] {
            continue;
        }
        let tok = &tokens[i];
        // `.unwrap(` / `.expect(`
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct(b'.')
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'('))
        {
            out.push(Diagnostic::new(
                file,
                tok.line,
                "no-panic",
                format!(
                    "`.{}(...)` may panic in library code; return a typed error instead",
                    tok.text
                ),
            ));
        }
        // `panic!` / `todo!` / `unimplemented!`
        if (tok.is_ident("panic") || tok.is_ident("todo") || tok.is_ident("unimplemented"))
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'!'))
        {
            out.push(Diagnostic::new(
                file,
                tok.line,
                "no-panic",
                format!(
                    "`{}!` in library code; return a typed error instead",
                    tok.text
                ),
            ));
        }
    }
}

fn scan_hot_path(
    file: &str,
    tokens: &[Token<'_>],
    test: &[bool],
    hot: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if test[i] || !hot[i] {
            continue;
        }
        let tok = &tokens[i];
        if tok.is_ident("format") && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'!')) {
            out.push(Diagnostic::new(
                file,
                tok.line,
                "hot-path",
                "`format!` allocates inside a hot-path region",
            ));
        }
        if (tok.is_ident("clone") || tok.is_ident("to_string") || tok.is_ident("to_owned"))
            && i > 0
            && tokens[i - 1].is_punct(b'.')
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'('))
        {
            out.push(Diagnostic::new(
                file,
                tok.line,
                "hot-path",
                format!("`.{}()` allocates inside a hot-path region", tok.text),
            ));
        }
        if (tok.is_ident("Vec") || tok.is_ident("String"))
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b':'))
            && matches!(tokens.get(i + 2), Some(t) if t.is_punct(b':'))
            && matches!(tokens.get(i + 3), Some(t) if t.is_ident("new"))
        {
            out.push(Diagnostic::new(
                file,
                tok.line,
                "hot-path",
                format!(
                    "`{}::new` inside a hot-path region; hoist it or preallocate with `with_capacity`",
                    tok.text
                ),
            ));
        }
        if (tok.is_ident("HashMap") || tok.is_ident("BTreeMap"))
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'<'))
        {
            // First generic argument, skipping `&` and lifetimes.
            let mut j = i + 2;
            while matches!(
                tokens.get(j),
                Some(t) if t.is_punct(b'&') || t.kind == TokenKind::Lifetime
            ) {
                j += 1;
            }
            if matches!(tokens.get(j), Some(t) if t.is_ident("String") || t.is_ident("str")) {
                out.push(Diagnostic::new(
                    file,
                    tok.line,
                    "hot-path",
                    format!(
                        "string-keyed `{}` in a hot-path region; intern to `RegionId`/integer keys",
                        tok.text
                    ),
                ));
            }
        }
    }
}

fn scan_par_safety(file: &str, tokens: &[Token<'_>], test: &[bool], out: &mut Vec<Diagnostic>) {
    // Prepass: locals bound to a shared-mutability primitive
    // (`let m = Mutex::new(...)`), so captures by name are caught too.
    let mut bindings: Vec<(&str, &str)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("let") {
            let mut n = i + 1;
            if matches!(tokens.get(n), Some(t) if t.is_ident("mut")) {
                n += 1;
            }
            if let Some(name) = tokens.get(n).filter(|t| t.kind == TokenKind::Ident) {
                let mut j = n + 1;
                while j < tokens.len() && !tokens[j].is_punct(b';') {
                    if tokens[j].is_ident("Mutex") || tokens[j].is_ident("RefCell") {
                        bindings.push((name.text, tokens[j].text));
                        break;
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        let is_call = !test[i]
            && (tok.is_ident("par_map")
                || tok.is_ident("par_map_with")
                || tok.is_ident("par_for_each"))
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct(b'('));
        if !is_call {
            i += 1;
            continue;
        }
        let end = lexer::matching(tokens, i + 1, b'(', b')').unwrap_or(tokens.len() - 1);
        for j in (i + 2)..end {
            let inner = &tokens[j];
            if inner.is_ident("Mutex") || inner.is_ident("RefCell") {
                out.push(Diagnostic::new(
                    file,
                    inner.line,
                    "par-safety",
                    format!(
                        "`{}` captured in a `{}` closure; pass owned/immutable data instead",
                        inner.text, tok.text
                    ),
                ));
            } else if inner.kind == TokenKind::Ident {
                if let Some((_, primitive)) = bindings.iter().find(|(name, _)| *name == inner.text)
                {
                    out.push(Diagnostic::new(
                        file,
                        inner.line,
                        "par-safety",
                        format!(
                            "`{}` (bound to a `{}`) captured in a `{}` closure; pass owned/immutable data instead",
                            inner.text, primitive, tok.text
                        ),
                    ));
                }
            }
            if inner.is_ident("static") && matches!(tokens.get(j + 1), Some(t) if t.is_ident("mut"))
            {
                out.push(Diagnostic::new(
                    file,
                    inner.line,
                    "par-safety",
                    format!("`static mut` touched in a `{}` closure", tok.text),
                ));
            }
        }
        i = end + 1;
    }
}

/// One parsed `allow(...)` suppression.
struct Suppression {
    line: usize,
    rule: String,
    used: bool,
}

/// Applies `allow(rule) -- reason` suppressions to the findings and
/// emits directive-hygiene diagnostics (missing reason, unknown rule or
/// directive, stale suppression).
fn apply_directives(
    file: &str,
    directives: &[Directive],
    config: &LintConfig,
    findings: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    for directive in directives {
        if directive.body == "hot-path" {
            continue;
        }
        match parse_allow(&directive.body) {
            Some((rule, Some(_reason))) if SOURCE_RULES.contains(&rule.as_str()) => {
                suppressions.push(Suppression {
                    line: directive.line,
                    rule,
                    used: false,
                });
            }
            Some((rule, Some(_reason))) => {
                out.push(Diagnostic::new(
                    file,
                    directive.line,
                    "suppression",
                    format!("`allow({rule})` names an unknown rule"),
                ));
            }
            Some((rule, None)) => {
                out.push(Diagnostic::new(
                    file,
                    directive.line,
                    "suppression",
                    format!("`allow({rule})` requires a reason: `allow({rule}) -- <why>`"),
                ));
            }
            None => {
                out.push(Diagnostic::new(
                    file,
                    directive.line,
                    "directive",
                    format!(
                        "unrecognized directive `decarb-analyze: {}`",
                        directive.body
                    ),
                ));
            }
        }
    }
    for finding in findings {
        let suppressed = suppressions.iter_mut().find(|s| {
            s.rule == finding.rule && (s.line == finding.line || s.line + 1 == finding.line)
        });
        match suppressed {
            Some(s) => s.used = true,
            None => out.push(finding),
        }
    }
    for s in &suppressions {
        // A no-panic allow in a crate where the rule is off is inert,
        // not stale (the same file may be compiled into a lib later).
        if !s.used && (config.no_panic || s.rule != "no-panic") {
            out.push(Diagnostic::new(
                file,
                s.line,
                "suppression",
                format!("`allow({})` suppresses nothing (stale; remove it)", s.rule),
            ));
        }
    }
    out
}

/// Parses `allow(<rule>) -- <reason>`; returns `(rule, reason)` or
/// `None` when the body is not an allow form at all.
fn parse_allow(body: &str) -> Option<(String, Option<String>)> {
    let rest = body.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("--")
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Some((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: LintConfig = LintConfig { no_panic: true };
    const BIN: LintConfig = LintConfig { no_panic: false };

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn no_panic_flags_unwrap_expect_and_macros() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    if a > b { panic!(\"boom\") }\n    todo!()\n}\n";
        let diags = lint_source("f.rs", src, &LIB);
        assert_eq!(rules_of(&diags), vec!["no-panic"; 4]);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn no_panic_skips_binaries_tests_and_lookalikes() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g() { std::panic::catch_unwind(|| {}); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(); }\n}\n";
        assert!(lint_source("f.rs", src, &LIB).is_empty());
        let src_bin = "fn main() { std::fs::read(\"x\").unwrap(); }\n";
        assert!(lint_source("main.rs", src_bin, &BIN).is_empty());
    }

    #[test]
    fn hot_path_flags_alloc_only_in_marked_regions() {
        let src = "fn cold() { let v: Vec<u8> = Vec::new(); let s = format!(\"x\"); }\n// decarb-analyze: hot-path\nfn hot(xs: &[u8]) -> Vec<u8> {\n    let v: Vec<u8> = Vec::new();\n    let s = format!(\"{}\", xs.len());\n    let c = xs.to_owned();\n    c.clone()\n}\n";
        let diags = lint_source("f.rs", src, &BIN);
        assert_eq!(rules_of(&diags), vec!["hot-path"; 4]);
        assert!(diags.iter().all(|d| d.line >= 4));
    }

    #[test]
    fn hot_path_flags_string_keyed_maps_not_id_keyed() {
        let src = "//! decarb-analyze: hot-path\nuse std::collections::HashMap;\nfn f() {\n    let a: HashMap<String, u8> = HashMap::with_capacity(4);\n    let b: HashMap<&str, u8> = HashMap::with_capacity(4);\n    let c: HashMap<u16, u8> = HashMap::with_capacity(4);\n    let _ = (a, b, c);\n}\n";
        let diags = lint_source("f.rs", src, &BIN);
        assert_eq!(rules_of(&diags), vec!["hot-path", "hot-path"]);
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[1].line, 5);
    }

    #[test]
    fn hot_path_allows_with_capacity() {
        let src = "// decarb-analyze: hot-path\nfn hot() -> Vec<u8> { Vec::with_capacity(8) }\n";
        assert!(lint_source("f.rs", src, &BIN).is_empty());
    }

    #[test]
    fn par_safety_flags_shared_mutability_in_closures() {
        let src = "fn f(xs: &[u8]) {\n    let m = std::sync::Mutex::new(0);\n    par_map(xs, |x| { *m.lock().unwrap() += 1; x });\n}\n";
        let diags = lint_source("f.rs", src, &BIN);
        assert_eq!(rules_of(&diags), vec!["par-safety"]);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn par_safety_ignores_mutex_outside_fanout_and_definitions() {
        let src = "fn f() { let m = std::sync::Mutex::new(0); drop(m); }\npub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R> { Vec::new() }\n";
        assert!(lint_source("f.rs", src, &BIN).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_and_without_reason_reports() {
        let with = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // decarb-analyze: allow(no-panic) -- validated by caller\n}\n";
        assert!(lint_source("f.rs", with, &LIB).is_empty());
        let above = "fn f(x: Option<u8>) -> u8 {\n    // decarb-analyze: allow(no-panic) -- validated by caller\n    x.unwrap()\n}\n";
        assert!(lint_source("f.rs", above, &LIB).is_empty());
        let without =
            "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // decarb-analyze: allow(no-panic)\n}\n";
        let diags = lint_source("f.rs", without, &LIB);
        assert_eq!(rules_of(&diags), vec!["suppression", "no-panic"]);
    }

    #[test]
    fn stale_and_unknown_directives_are_reported() {
        let stale = "// decarb-analyze: allow(no-panic) -- nothing here panics\nfn f() {}\n";
        let diags = lint_source("f.rs", stale, &LIB);
        assert_eq!(rules_of(&diags), vec!["suppression"]);
        let unknown_rule = "fn f() {} // decarb-analyze: allow(speed) -- go fast\n";
        assert_eq!(
            rules_of(&lint_source("f.rs", unknown_rule, &LIB)),
            vec!["suppression"]
        );
        let unknown_directive = "fn f() {} // decarb-analyze: warp-drive\n";
        assert_eq!(
            rules_of(&lint_source("f.rs", unknown_directive, &LIB)),
            vec!["directive"]
        );
    }

    #[test]
    fn inert_no_panic_allow_in_binary_is_not_stale() {
        let src = "fn main() { std::fs::read(\"x\").unwrap() /* ok in bin */; }\n// decarb-analyze: allow(no-panic) -- only fires when compiled as lib\nfn helper() {}\n";
        assert!(lint_source("main.rs", src, &BIN).is_empty());
    }
}
