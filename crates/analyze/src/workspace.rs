//! Workspace walker: applies the lint rules to every crate's sources.

use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{lint_source, LintConfig};
use crate::Diagnostic;

/// Crates whose code runs inside sweep workers / library callers and
/// therefore must not panic. Binary crates (`cli`, `bench`,
/// `experiments`) may still panic at the top level; the other rules
/// apply to them regardless.
pub const LIBRARY_CRATES: &[&str] = &[
    "analyze",
    "core",
    "forecast",
    "json",
    "par",
    "sim",
    "stats",
    "traces",
    "workloads",
];

/// Result of an analysis run.
#[derive(Debug, Default)]
pub struct AnalyzeOutcome {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// All surviving (non-suppressed) diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

/// Analyzes the whole workspace rooted at `root` (the directory
/// holding the top-level `Cargo.toml`): the root facade's `src/` plus
/// every `crates/*/src/` tree.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalyzeOutcome> {
    let mut outcome = AnalyzeOutcome::default();
    // Root facade (`decarb`) is a library.
    scan_dir(
        &root.join("src"),
        root,
        &LintConfig { no_panic: true },
        &mut outcome,
    )?;
    let crates = root.join("crates");
    let mut dirs: Vec<_> = match fs::read_dir(&crates) {
        Ok(iter) => iter
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    dirs.sort();
    for dir in dirs {
        let name = dir.file_name().map(|n| n.to_string_lossy().into_owned());
        let no_panic = name.as_deref().is_some_and(|n| LIBRARY_CRATES.contains(&n));
        scan_dir(
            &dir.join("src"),
            root,
            &LintConfig { no_panic },
            &mut outcome,
        )?;
    }
    Ok(outcome)
}

/// Analyzes every `.rs` file under `dir` with one configuration,
/// labelling diagnostics relative to `label_root`. Used for fixture
/// trees in tests and CI seeds.
pub fn analyze_tree(
    dir: &Path,
    label_root: &Path,
    config: &LintConfig,
) -> io::Result<AnalyzeOutcome> {
    let mut outcome = AnalyzeOutcome::default();
    scan_dir(dir, label_root, config, &mut outcome)?;
    Ok(outcome)
}

fn scan_dir(
    dir: &Path,
    label_root: &Path,
    config: &LintConfig,
    outcome: &mut AnalyzeOutcome,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            scan_dir(&path, label_root, config, outcome)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let source = fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(label_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            outcome.files += 1;
            outcome
                .diagnostics
                .extend(lint_source(&label, &source, config));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzer_sources_are_self_clean() {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let outcome = analyze_tree(
            &manifest.join("src"),
            manifest,
            &LintConfig { no_panic: true },
        )
        .expect("analyzer sources readable");
        assert!(outcome.files >= 4, "expected the analyzer's own modules");
        assert!(
            outcome.diagnostics.is_empty(),
            "analyzer must lint itself clean:\n{}",
            crate::render_report(&outcome.diagnostics)
        );
    }
}
