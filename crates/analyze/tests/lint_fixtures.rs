//! Per-rule lint fixtures: each `.rs` file under `tests/fixtures/` is
//! real Rust source fed through [`lint_source`] exactly as
//! `analyze --workspace` would lint it, with the expected findings
//! pinned here as `(rule, line)` pairs. The `*_violations` fixtures
//! prove each rule fires where documented; the `*_clean` fixtures guard
//! against false positives on lookalikes, suppressed sites, and test
//! code. Cargo does not compile files in `tests/fixtures/` (only
//! top-level `tests/*.rs`), and `analyze_workspace` scans only `src/`
//! trees, so the intentionally broken fixtures never poison the build
//! or the workspace gate.

use std::fs;
use std::path::Path;

use decarb_analyze::{analyze_tree, lint_source, LintConfig};

const LIB: LintConfig = LintConfig { no_panic: true };
const BIN: LintConfig = LintConfig { no_panic: false };

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints a fixture and returns its findings as sorted `(rule, line)`
/// pairs.
fn lint(name: &str, config: &LintConfig) -> Vec<(String, usize)> {
    let path = fixtures_dir().join(name);
    let source =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let mut found: Vec<(String, usize)> = lint_source(name, &source, config)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    found.sort();
    found
}

fn pairs(expected: &[(&str, usize)]) -> Vec<(String, usize)> {
    expected.iter().map(|(r, l)| (r.to_string(), *l)).collect()
}

#[test]
fn no_panic_fixture_flags_every_trigger() {
    assert_eq!(
        lint("no_panic_violations.rs", &LIB),
        pairs(&[
            ("no-panic", 5),  // .unwrap()
            ("no-panic", 9),  // .expect(...)
            ("no-panic", 14), // panic!
            ("no-panic", 19), // todo!
            ("no-panic", 23), // unimplemented!
        ])
    );
}

#[test]
fn no_panic_fixture_clean_on_lookalikes_suppressions_and_tests() {
    assert_eq!(lint("no_panic_clean.rs", &LIB), Vec::new());
}

#[test]
fn hot_path_fixture_flags_allocations_in_marked_region_only() {
    assert_eq!(
        lint("hot_path_violations.rs", &BIN),
        pairs(&[
            ("hot-path", 13), // Vec::new
            ("hot-path", 14), // format!
            ("hot-path", 15), // .to_owned()
            ("hot-path", 16), // string-keyed HashMap
            ("hot-path", 18), // .clone()
        ])
    );
}

#[test]
fn hot_path_fixture_clean_on_preallocated_id_keyed_code() {
    assert_eq!(lint("hot_path_clean.rs", &BIN), Vec::new());
}

#[test]
fn par_safety_fixture_flags_direct_and_bound_captures() {
    assert_eq!(
        lint("par_safety_violations.rs", &BIN),
        pairs(&[
            ("par-safety", 5),  // Mutex spelled inside the closure
            ("par-safety", 11), // binding to a Mutex captured by name
        ])
    );
}

#[test]
fn par_safety_fixture_clean_on_owned_data_and_sequential_locks() {
    assert_eq!(lint("par_safety_clean.rs", &BIN), Vec::new());
}

#[test]
fn directive_hygiene_fixture_flags_every_misuse() {
    assert_eq!(
        lint("directive_hygiene.rs", &LIB),
        pairs(&[
            ("directive", 13),   // unrecognized directive body
            ("no-panic", 5),     // the reasonless allow suppresses nothing
            ("suppression", 5),  // allow without `-- reason`
            ("suppression", 8),  // allow naming an unknown rule
            ("suppression", 10), // stale allow with nothing to suppress
        ])
    );
}

#[test]
fn analyze_tree_totals_match_the_per_fixture_counts() {
    // The whole fixture directory through the same tree walker the
    // workspace gate uses: 7 files, and (under the library config) the
    // sum of every pinned finding above plus the extra no-panic hits
    // that the binary-config fixtures pick up when linted as a library.
    let dir = fixtures_dir();
    let outcome = analyze_tree(&dir, &dir, &LIB).expect("fixture tree scans");
    assert_eq!(outcome.files, 7);
    let per_file: usize = [
        "no_panic_violations.rs",
        "no_panic_clean.rs",
        "hot_path_violations.rs",
        "hot_path_clean.rs",
        "par_safety_violations.rs",
        "par_safety_clean.rs",
        "directive_hygiene.rs",
    ]
    .iter()
    .map(|name| lint(name, &LIB).len())
    .sum();
    assert_eq!(outcome.diagnostics.len(), per_file);
}
