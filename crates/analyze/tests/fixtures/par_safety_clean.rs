//! Fixture: fan-out over owned/immutable data, plus a `Mutex` used
//! outside any closure. Must produce zero findings.

pub fn owned(xs: &[u8]) -> Vec<u32> {
    par_map(xs, |x| u32::from(*x) * 2)
}

pub fn sequential_lock() -> u32 {
    let guard = std::sync::Mutex::new(7u32);
    let value = *guard.lock().unwrap_or_else(|e| e.into_inner());
    value
}
