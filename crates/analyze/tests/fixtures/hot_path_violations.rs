//! Fixture: allocations inside a `hot-path` region. The cold function
//! above the marker must stay silent; everything in `hot` is flagged.

use std::collections::HashMap;

pub fn cold() -> String {
    let v: Vec<u8> = Vec::new();
    format!("{}", v.len())
}

// decarb-analyze: hot-path
pub fn hot(xs: &[u8]) -> Vec<u8> {
    let staging: Vec<u8> = Vec::new();
    let label = format!("{}", xs.len());
    let copied = xs.to_owned();
    let index: HashMap<String, u8> = HashMap::with_capacity(4);
    let _ = (staging, label, index);
    copied.clone()
}
