//! Fixture: shared-mutability primitives captured by fan-out closures,
//! both spelled at the call site and smuggled through a local binding.

pub fn direct(xs: &[u8]) -> Vec<u8> {
    par_map(xs, |x| stamp(*x, &std::sync::Mutex::new(0u32)))
}

pub fn via_binding(xs: &[u8]) {
    let tally = std::sync::Mutex::new(0u32);
    par_for_each(xs, |x| {
        *tally.lock().unwrap_or_else(|e| e.into_inner()) += u32::from(*x);
    });
}
