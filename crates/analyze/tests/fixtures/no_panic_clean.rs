//! Fixture: panic-adjacent code that must NOT trip `no-panic` —
//! lookalike identifiers, suppressed call sites, and test modules.

pub fn fallback(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn shielded() {
    let _ = std::panic::catch_unwind(|| {});
}

pub fn validated(x: Option<u32>) -> u32 {
    // decarb-analyze: allow(no-panic) -- input validated one frame up
    x.unwrap()
}

pub fn inline_note(x: Option<u32>) -> u32 {
    x.unwrap() // decarb-analyze: allow(no-panic) -- checked by is_some above
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        Some(1u32).unwrap();
        panic!("assertion helper");
    }
}
