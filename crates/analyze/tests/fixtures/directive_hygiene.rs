//! Fixture: every way a suppression directive itself can be wrong —
//! missing reason, unknown rule, stale allow, unrecognized body.

pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // decarb-analyze: allow(no-panic)
}

pub fn misspelled() {} // decarb-analyze: allow(no-panics) -- close but wrong

// decarb-analyze: allow(par-safety) -- nothing below fans out
pub fn stale() {}

pub fn gibberish() {} // decarb-analyze: warp-drive
