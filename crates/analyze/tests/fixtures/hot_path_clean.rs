//! Fixture: a hot-path region written the approved way — preallocated
//! buffers and integer-keyed maps. Must produce zero findings.

use std::collections::HashMap;

// decarb-analyze: hot-path
pub fn hot(xs: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len());
    let mut by_id: HashMap<u16, u8> = HashMap::with_capacity(xs.len());
    for (i, x) in xs.iter().enumerate() {
        out.push(*x);
        by_id.insert(i as u16, *x);
    }
    out
}
