//! Fixture: every `no-panic` trigger, unsuppressed. Expected findings
//! (rule, line) are asserted by `tests/lint_fixtures.rs`.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn named(x: Option<u32>) -> u32 {
    x.expect("caller guarantees Some")
}

pub fn guard(flag: bool) {
    if !flag {
        panic!("invariant violated");
    }
}

pub fn later() -> u32 {
    todo!()
}

pub fn never() -> u32 {
    unimplemented!()
}
