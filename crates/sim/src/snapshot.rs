//! One-shot placement queries over an immutable dataset snapshot.
//!
//! The batch engine answers "what would a year of this policy have
//! emitted"; the placement *service* answers "this job arrives now —
//! where and when should it run" for one job at a time, thousands of
//! times per second. A [`Snapshot`] bundles everything those queries
//! touch — the interned region table and dense series (`Arc<TraceSet>`),
//! a prebuilt [`RttTable`], a prewarmed [`PlannerCache`], and an
//! [`HourlyLedger`] for same-hour admission control — so a query is
//! pure table lookups plus one planner scan, with no allocation or
//! locking on the read path (the ledger is the only mutex, held for a
//! few integer ops). `decarb-serve` keeps the current snapshot behind
//! an atomically swapped `Arc`, so `POST /v1/reload` never stalls
//! in-flight readers.
//!
//! The query mirrors [`crate::spatiotemporal::SpatioTemporal`]'s
//! route-then-defer logic, but against the *actual* stored trace (the
//! planner's oracle view) rather than a forecast, and without a running
//! cluster: capacity is the ledger's same-hour admission count. Every
//! panicking precondition of [`TemporalPlanner`] is pre-validated into
//! a typed [`PlaceError`], so a malformed query becomes an HTTP 4xx,
//! never a worker-thread panic.

use std::sync::{Arc, Mutex, PoisonError};

use decarb_core::temporal::TemporalPlanner;
use decarb_traces::{Hour, Region, RegionId, TraceSet};

use crate::planner_cache::PlannerCache;
use crate::routing::{HourlyLedger, RttTable};

/// One placement query: a job's shape plus its origin and constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceRequest {
    /// Region the job is submitted from.
    pub origin: RegionId,
    /// Slot the job arrives on the dataset's axis (absolute hour index
    /// since 2020-01-01 UTC on hourly data).
    pub arrival: Hour,
    /// Job length in whole wall-clock hours (≥ 1); converted to slots
    /// against the dataset's resolution internally.
    pub duration_hours: usize,
    /// Wall-clock hours the start may be deferred past arrival.
    pub slack_hours: usize,
    /// Round-trip-time budget from the origin, milliseconds.
    pub slo_ms: f64,
}

/// The answer to a [`PlaceRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceDecision {
    /// Chosen destination region.
    pub region: RegionId,
    /// Chosen start slot (`arrival ..= arrival + slack`, on the
    /// dataset's axis).
    pub start: Hour,
    /// Estimated emissions of the chosen placement, g·CO₂eq per kWh of
    /// average draw (carbon intensity summed over the run and scaled to
    /// whole hours of draw whatever the dataset resolution).
    pub cost_g: f64,
    /// Emissions of the naive placement: run at the origin, at arrival.
    pub naive_g: f64,
    /// `naive_g - cost_g`; never negative.
    pub saved_g: f64,
    /// Round-trip time from origin to the chosen region, milliseconds.
    pub rtt_ms: f64,
}

/// A rejected [`PlaceRequest`], mapped by the service to an HTTP 4xx.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// `duration_hours` was zero.
    ZeroDuration,
    /// The arrival hour predates the origin's stored trace.
    BeforeTraceStart(Hour),
    /// The job cannot finish within the origin's stored trace even
    /// unshifted.
    BeyondTraceEnd(Hour),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::ZeroDuration => write!(f, "duration_hours must be at least 1"),
            // `Hour`'s Display resolves the calendar year and panics
            // one-past-the-horizon (exactly where a trace-end bound
            // sits), so these render the raw index.
            PlaceError::BeforeTraceStart(start) => {
                write!(
                    f,
                    "arrival predates the trace, which starts at hour {}",
                    start.0
                )
            }
            PlaceError::BeyondTraceEnd(end) => {
                write!(
                    f,
                    "job cannot finish before the trace ends at hour {}",
                    end.0
                )
            }
        }
    }
}

/// An immutable, shareable view of one dataset, prebuilt for live
/// placement queries. Build once, wrap in an `Arc`, swap on reload.
#[derive(Debug)]
pub struct Snapshot {
    traces: Arc<TraceSet>,
    deployed: Vec<RegionId>,
    rtt: RttTable,
    planners: PlannerCache,
    ledger: Mutex<HourlyLedger>,
    /// Same-hour admissions allowed per region before the router skips
    /// it (`usize::MAX` disables admission control).
    capacity_per_hour: usize,
    generation: u64,
}

impl Snapshot {
    /// Builds a snapshot deploying every region of `traces`, prewarming
    /// one planner per region so first queries pay no build cost.
    pub fn build(traces: Arc<TraceSet>, generation: u64) -> Self {
        let deployed: Vec<RegionId> = traces.ids().collect();
        let rtt = RttTable::build(&traces, &deployed);
        let planners = PlannerCache::new();
        for &id in &deployed {
            planners.planner_at(id, traces.series_by_id(id), traces.resolution());
        }
        let ledger = Mutex::new(HourlyLedger::new(traces.len()));
        Self {
            traces,
            deployed,
            rtt,
            planners,
            ledger,
            capacity_per_hour: usize::MAX,
            generation,
        }
    }

    /// Limits same-hour admissions per region (admission control for
    /// bursts of simultaneous queries).
    pub fn with_capacity_per_hour(mut self, capacity: usize) -> Self {
        self.capacity_per_hour = capacity;
        self
    }

    /// The dataset this snapshot serves.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The deployed region set (all regions of the dataset).
    pub fn deployed(&self) -> &[RegionId] {
        &self.deployed
    }

    /// Monotonic reload counter, reported by `/v1/metrics`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Round-trip time between two deployed regions, milliseconds.
    pub fn rtt_ms(&self, a: RegionId, b: RegionId) -> Option<f64> {
        self.rtt.get(a, b)
    }

    /// Regions ranked by mean carbon intensity over `year`, greenest
    /// first. `year` must lie within the dataset horizon
    /// (`decarb_traces::time::EPOCH_YEAR..=LAST_YEAR`).
    pub fn rankings(&self, year: i32) -> Vec<(&Region, f64)> {
        let mut rows = self.traces.annual_means(year);
        rows.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.code.cmp(&b.0.code)));
        rows
    }

    /// Validates that a `slots`-slot run from `arrival` fits `id`'s
    /// stored trace; `Ok` carries the slots remaining from arrival to
    /// the trace end.
    fn fits(&self, id: RegionId, arrival: Hour, slots: usize) -> Result<usize, PlaceError> {
        let series = self.traces.series_by_id(id);
        if arrival < series.start() {
            return Err(PlaceError::BeforeTraceStart(series.start()));
        }
        let remaining = (series.end().0 - arrival.0) as usize;
        if remaining < slots {
            return Err(PlaceError::BeyondTraceEnd(series.end()));
        }
        Ok(remaining)
    }

    /// Answers one placement query: route to the cheapest deferred
    /// window among deployed regions within the SLO, falling back to
    /// the origin. Deterministic — ties break to the lexicographically
    /// first zone code, like the online router.
    // decarb-analyze: hot-path
    pub fn place(&self, req: &PlaceRequest) -> Result<PlaceDecision, PlaceError> {
        if req.duration_hours == 0 {
            return Err(PlaceError::ZeroDuration);
        }
        // Wall-clock hours → slots on the dataset's axis, once at the
        // edge; a planner's cost is a per-slot CI sum, so grams are the
        // sum divided back by slots-per-hour (identity on hourly data).
        let sph = self.traces.resolution().slots_per_hour();
        let slots = req.duration_hours * sph;
        let slack = req.slack_hours * sph;
        self.fits(req.origin, req.arrival, slots)?;
        let origin_series = self.traces.series_by_id(req.origin);
        let origin_planner =
            self.planners
                .planner_at(req.origin, origin_series, self.traces.resolution());
        let naive_g = origin_planner.baseline_cost(req.arrival, slots) / sph as f64;

        let mut admitted = self.ledger.lock().unwrap_or_else(PoisonError::into_inner);
        // Hour-floored: admission control counts per wall-clock hour
        // whatever the slot axis, like the simulator's router ledger.
        admitted.roll(Hour(req.arrival.0 - req.arrival.0 % sph as u32));

        // The origin is always feasible (validated above); remote
        // regions must clear RTT, fit, and same-hour admission.
        let origin_best = origin_planner.best_deferred(req.arrival, slots, slack);
        let mut best_region = req.origin;
        let mut best = origin_best;
        for &id in &self.deployed {
            if id == req.origin {
                continue;
            }
            if self.capacity_per_hour != usize::MAX && admitted.placed(id) >= self.capacity_per_hour
            {
                continue;
            }
            let Some(rtt) = self.rtt.get(req.origin, id) else {
                continue;
            };
            if rtt > req.slo_ms {
                continue;
            }
            if self.fits(id, req.arrival, slots).is_err() {
                continue;
            }
            let planner = self.planners.planner_at(
                id,
                self.traces.series_by_id(id),
                self.traces.resolution(),
            );
            let candidate = planner.best_deferred(req.arrival, slots, slack);
            if candidate.cost_g < best.cost_g
                || (candidate.cost_g == best.cost_g && self.rtt.code_before(id, best_region))
            {
                best_region = id;
                best = candidate;
            }
        }
        admitted.record(best_region);
        drop(admitted);

        let rtt_ms = self.rtt.get(req.origin, best_region).unwrap_or(0.0);
        let cost_g = best.cost_g / sph as f64;
        Ok(PlaceDecision {
            region: best_region,
            start: best.start,
            cost_g,
            naive_g,
            saved_g: naive_g - cost_g,
            rtt_ms,
        })
    }

    /// The temporal planner for `id` (prewarmed at build time).
    pub fn planner(&self, id: RegionId) -> Arc<TemporalPlanner> {
        self.planners
            .planner_at(id, self.traces.series_by_id(id), self.traces.resolution())
    }

    /// The configured same-hour admission limit (`usize::MAX` when
    /// admission control is disabled).
    pub fn capacity_per_hour(&self) -> usize {
        self.capacity_per_hour
    }

    /// Whether admission control is active. When it is, placements
    /// mutate the shared ledger, so query *order* matters and batches
    /// must be answered sequentially to stay deterministic.
    pub fn admission_limited(&self) -> bool {
        self.capacity_per_hour != usize::MAX
    }

    /// Answers many placement queries, one result per request in input
    /// order.
    ///
    /// With admission control disabled (the default), `place` never
    /// *reads* the ledger's counts, so no answer depends on any other
    /// and batches of at least [`PAR_BATCH_THRESHOLD`] fan out across
    /// [`decarb_par::par_map`] worker threads — results are
    /// bit-identical to the same requests answered sequentially. With
    /// a capacity limit set, each answer feeds the next one's
    /// admission state, so the batch runs sequentially in input order
    /// (exactly N single calls).
    pub fn place_batch(&self, requests: &[PlaceRequest]) -> Vec<Result<PlaceDecision, PlaceError>> {
        if requests.len() >= PAR_BATCH_THRESHOLD && !self.admission_limited() {
            decarb_par::par_map(requests, |r| self.place(r))
        } else {
            requests.iter().map(|r| self.place(r)).collect()
        }
    }
}

/// Smallest batch worth fanning out across threads — below this the
/// scoped-thread spawn cost exceeds the ~6 µs/decision planner scan.
pub const PAR_BATCH_THRESHOLD: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;

    fn snapshot() -> Snapshot {
        Snapshot::build(builtin_dataset(), 1)
    }

    fn req(snap: &Snapshot, origin: &str, slack: usize, slo: f64) -> PlaceRequest {
        PlaceRequest {
            origin: snap.traces().id_of(origin).unwrap(),
            arrival: year_start(2022).plus(90 * 24),
            duration_hours: 6,
            slack_hours: slack,
            slo_ms: slo,
        }
    }

    #[test]
    fn zero_slo_zero_slack_is_the_naive_placement() {
        let snap = snapshot();
        let r = req(&snap, "DE", 0, 0.0);
        let d = snap.place(&r).unwrap();
        assert_eq!(d.region, r.origin);
        assert_eq!(d.start, r.arrival);
        assert!((d.cost_g - d.naive_g).abs() < 1e-9);
        assert_eq!(d.saved_g, 0.0);
    }

    #[test]
    fn matches_the_temporal_planner_when_pinned_home() {
        let snap = snapshot();
        let r = req(&snap, "DE", 24, 0.0);
        let d = snap.place(&r).unwrap();
        let planner = snap.planner(r.origin);
        let ground_truth = planner.best_deferred(r.arrival, 6, 24);
        assert_eq!(d.region, r.origin);
        assert_eq!(d.start, ground_truth.start);
        assert!((d.cost_g - ground_truth.cost_g).abs() < 1e-12);
        assert!(d.saved_g >= 0.0);
    }

    #[test]
    fn unbounded_slo_finds_a_greener_region_than_home() {
        let snap = snapshot();
        let home = snap.place(&req(&snap, "PL", 0, 0.0)).unwrap();
        let global = snap.place(&req(&snap, "PL", 0, f64::INFINITY)).unwrap();
        assert!(
            global.cost_g < home.cost_g,
            "routing must beat coal-heavy PL"
        );
        assert_ne!(global.region, home.region);
        assert!(global.saved_g > 0.0);
        assert!(global.rtt_ms > 0.0);
    }

    #[test]
    fn widening_slack_and_slo_never_hurts() {
        let snap = snapshot();
        let base = snap.place(&req(&snap, "DE", 0, 0.0)).unwrap();
        let slack = snap.place(&req(&snap, "DE", 24, 0.0)).unwrap();
        let both = snap.place(&req(&snap, "DE", 24, 100.0)).unwrap();
        assert!(slack.cost_g <= base.cost_g + 1e-9);
        assert!(both.cost_g <= slack.cost_g + 1e-9);
    }

    #[test]
    fn five_minute_replica_answers_the_hourly_decision() {
        // Integer-valued traces: per-slot window sums on the 12×
        // replica are exactly 12× the hourly sums, so the grams-scale
        // normalization must reproduce the hourly answer bit for bit,
        // and the earliest-start tie-break must keep decisions on
        // hour-aligned slots.
        let start = year_start(2022);
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 900 + 50) as f64
        };
        let pairs = ["DE", "SE", "PL"]
            .iter()
            .map(|code| {
                let region = decarb_traces::catalog::region(code).unwrap().clone();
                let values: Vec<f64> = (0..24 * 30).map(|_| next()).collect();
                (region, decarb_traces::TimeSeries::new(start, values))
            })
            .collect();
        let hourly = decarb_traces::TraceSet::from_series(pairs);
        let fine = hourly
            .resample_to(decarb_traces::Resolution::from_minutes(5).unwrap())
            .unwrap();
        let snap_h = Snapshot::build(Arc::new(hourly), 1);
        let snap_f = Snapshot::build(Arc::new(fine), 1);
        for (slack, slo) in [(0usize, 0.0), (24, 0.0), (24, f64::INFINITY), (6, 100.0)] {
            let rh = PlaceRequest {
                origin: snap_h.traces().id_of("PL").unwrap(),
                arrival: start.plus(10 * 24),
                duration_hours: 6,
                slack_hours: slack,
                slo_ms: slo,
            };
            let rf = PlaceRequest {
                origin: snap_f.traces().id_of("PL").unwrap(),
                arrival: Hour((start.0 + 10 * 24) * 12),
                duration_hours: 6,
                slack_hours: slack,
                slo_ms: slo,
            };
            let dh = snap_h.place(&rh).unwrap();
            let df = snap_f.place(&rf).unwrap();
            assert_eq!(
                snap_h.traces().code(dh.region),
                snap_f.traces().code(df.region),
                "slack {slack} slo {slo}"
            );
            assert_eq!(df.start.0, dh.start.0 * 12, "slack {slack} slo {slo}");
            assert_eq!(df.cost_g, dh.cost_g, "slack {slack} slo {slo}");
            assert_eq!(df.naive_g, dh.naive_g, "slack {slack} slo {slo}");
            assert_eq!(df.saved_g, dh.saved_g, "slack {slack} slo {slo}");
        }
    }

    #[test]
    fn malformed_queries_become_typed_errors_not_panics() {
        let snap = snapshot();
        let mut r = req(&snap, "DE", 0, 0.0);
        r.duration_hours = 0;
        assert_eq!(snap.place(&r), Err(PlaceError::ZeroDuration));
        // The builtin traces start at the epoch, so an earlier arrival
        // needs a dataset whose trace starts mid-horizon.
        let start = year_start(2022);
        let late_set = decarb_traces::TraceSet::from_series(vec![(
            decarb_traces::Region::user("ZZ"),
            decarb_traces::TimeSeries::new(start, vec![100.0; 500]),
        )]);
        let late_snap = Snapshot::build(Arc::new(late_set), 1);
        let early = PlaceRequest {
            origin: late_snap.traces().id_of("ZZ").unwrap(),
            arrival: Hour(start.0 - 1),
            duration_hours: 2,
            slack_hours: 0,
            slo_ms: 0.0,
        };
        assert!(matches!(
            late_snap.place(&early),
            Err(PlaceError::BeforeTraceStart(_))
        ));
        let mut late = req(&snap, "DE", 0, 0.0);
        late.duration_hours = 10_000_000;
        assert!(matches!(
            snap.place(&late),
            Err(PlaceError::BeyondTraceEnd(_))
        ));
    }

    #[test]
    fn admission_control_spills_the_second_same_hour_job() {
        let snap = Snapshot::build(builtin_dataset(), 1).with_capacity_per_hour(1);
        let r = req(&snap, "PL", 0, f64::INFINITY);
        let first = snap.place(&r).unwrap();
        let second = snap.place(&r).unwrap();
        assert_ne!(
            first.region, second.region,
            "capacity 1: the second job must spill elsewhere"
        );
        assert!(second.cost_g >= first.cost_g);
    }

    #[test]
    fn rankings_are_sorted_greenest_first() {
        let snap = snapshot();
        let rows = snap.rankings(2022);
        assert_eq!(rows.len(), snap.traces().len());
        for pair in rows.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn generation_is_carried() {
        let snap = Snapshot::build(builtin_dataset(), 7);
        assert_eq!(snap.generation(), 7);
    }

    #[test]
    fn parallel_batches_match_sequential_answers_bit_for_bit() {
        let snap = snapshot();
        assert!(!snap.admission_limited());
        let origins = ["DE", "PL", "FR", "SE"];
        // Past the parallel threshold, with varied shapes.
        let requests: Vec<PlaceRequest> = (0..(PAR_BATCH_THRESHOLD * 2 + 3))
            .map(|i| {
                let mut r = req(&snap, origins[i % origins.len()], (i % 5) * 6, 150.0);
                r.duration_hours = 1 + i % 4;
                r.arrival = r.arrival.plus(i * 7);
                r
            })
            .collect();
        let sequential: Vec<_> = requests.iter().map(|r| snap.place(r)).collect();
        let batched = snap.place_batch(&requests);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn admission_limited_batches_run_in_input_order() {
        let limited = Snapshot::build(builtin_dataset(), 1).with_capacity_per_hour(1);
        assert!(limited.admission_limited());
        assert_eq!(limited.capacity_per_hour(), 1);
        let requests = vec![req(&limited, "PL", 0, f64::INFINITY); 3];
        let batched = limited.place_batch(&requests);
        // A fresh identical snapshot answered sequentially must agree:
        // order is the contract under admission control.
        let fresh = Snapshot::build(builtin_dataset(), 1).with_capacity_per_hour(1);
        let sequential: Vec<_> = requests.iter().map(|r| fresh.place(r)).collect();
        assert_eq!(batched, sequential);
        let first = batched[0].as_ref().unwrap();
        let second = batched[1].as_ref().unwrap();
        assert_ne!(first.region, second.region, "capacity 1 must spill");
    }

    #[test]
    fn batch_errors_stay_positional() {
        let snap = snapshot();
        let good = req(&snap, "DE", 0, 0.0);
        let mut bad = good;
        bad.duration_hours = 0;
        let results = snap.place_batch(&[good, bad, good]);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(PlaceError::ZeroDuration));
        assert!(results[2].is_ok());
    }
}
