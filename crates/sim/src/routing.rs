//! Latency-constrained request routing (§5.1.3 made online).
//!
//! Fig. 6(a) computes the analytic reduction when migration is limited to
//! regions within a latency SLO; this policy is the online counterpart: a
//! router that sends each migratable job to the greenest datacenter whose
//! round-trip time from the job's origin fits the SLO and which has free
//! capacity, falling back to the origin.

use std::collections::HashMap;

use decarb_core::latency::LatencyMatrix;
use decarb_traces::{Hour, Region};
use decarb_workloads::Job;

use crate::cluster::CloudView;
use crate::policy::{Placement, Policy};

/// Routes to the greenest region within a latency SLO of the origin.
///
/// The router performs its own admission control: the simulator's
/// capacity view only reflects *running* jobs, so a burst of same-hour
/// arrivals would all see the same free slot. The router remembers what
/// it has placed in the current hour and treats those slots as taken.
pub struct LatencyAwareRouter {
    matrix: LatencyMatrix,
    /// Round-trip-time budget in milliseconds.
    pub slo_ms: f64,
    placed_now: HashMap<&'static str, usize>,
    placed_at: Option<Hour>,
}

impl LatencyAwareRouter {
    /// Builds the router over the deployed regions.
    pub fn new(regions: &[&'static Region], slo_ms: f64) -> Self {
        Self {
            matrix: LatencyMatrix::build(regions),
            slo_ms,
            placed_now: HashMap::new(),
            placed_at: None,
        }
    }

    /// Returns the RTT between two zones, if both are deployed.
    pub fn rtt(&self, a: &str, b: &str) -> Option<f64> {
        self.matrix.get(a, b)
    }
}

impl Policy for LatencyAwareRouter {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        if self.placed_at != Some(view.now) {
            self.placed_now.clear();
            self.placed_at = Some(view.now);
        }
        let mut region = job.origin;
        if job.migratable {
            let mut best_ci = view.current_ci(job.origin).unwrap_or(f64::INFINITY);
            for dc in view.datacenters.values() {
                let code = dc.region.code;
                let already = self.placed_now.get(code).copied().unwrap_or(0);
                if dc.free_slots() <= already {
                    continue;
                }
                let Some(rtt) = self.matrix.get(job.origin, code) else {
                    continue;
                };
                if rtt > self.slo_ms {
                    continue;
                }
                let Some(ci) = view.current_ci(code) else {
                    continue;
                };
                // Strict improvement, ties broken to the lexicographically
                // first zone for determinism.
                if ci < best_ci || (ci == best_ci && code < region) {
                    best_ci = ci;
                    region = code;
                }
            }
        }
        *self.placed_now.entry(region).or_insert(0) += 1;
        Placement {
            region,
            start: view.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use decarb_traces::builtin_dataset;
    use decarb_traces::catalog::region;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    fn regions(codes: &[&str]) -> Vec<&'static Region> {
        codes.iter().map(|c| region(c).unwrap()).collect()
    }

    /// Deployed: origin Germany plus near (Sweden) and far (Australia)
    /// green regions.
    const DEPLOYED: [&str; 4] = ["DE", "SE", "PL", "AU-TAS"];

    fn route_one(slo_ms: f64) -> &'static str {
        let traces = builtin_dataset();
        let rs = regions(&DEPLOYED);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 50, 4));
        let mut router = LatencyAwareRouter::new(&rs, slo_ms);
        let job = Job::batch(1, "DE", start, 4.0, Slack::None);
        let report = sim.run(&mut router, &[job]);
        assert_eq!(report.completed_count(), 1);
        report.completed[0].region
    }

    #[test]
    fn zero_slo_keeps_jobs_home() {
        assert_eq!(route_one(0.0), "DE");
    }

    #[test]
    fn regional_slo_reaches_nearby_green_region() {
        // Germany → Sweden is a short intra-European hop; Tasmania is
        // antipodal and must remain out of reach.
        let region = route_one(60.0);
        assert_eq!(region, "SE");
    }

    #[test]
    fn unbounded_slo_still_picks_the_greenest() {
        // With everything feasible the router behaves like the greenest
        // router; SE is greener than AU-TAS at this hour.
        let rs = regions(&DEPLOYED);
        let router = LatencyAwareRouter::new(&rs, f64::INFINITY);
        assert!(router.rtt("DE", "AU-TAS").unwrap() > 200.0);
        assert_eq!(route_one(f64::INFINITY), "SE");
    }

    #[test]
    fn pinned_jobs_never_move() {
        let traces = builtin_dataset();
        let rs = regions(&DEPLOYED);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 10, 4));
        let mut router = LatencyAwareRouter::new(&rs, f64::INFINITY);
        let job = Job::interactive(1, "PL", start);
        let report = sim.run(&mut router, &[job]);
        assert_eq!(report.completed[0].region, "PL");
    }

    #[test]
    fn full_destinations_are_skipped() {
        let traces = builtin_dataset();
        let rs = regions(&["DE", "SE"]);
        let start = year_start(2022);
        // Capacity 1: the second simultaneous job finds Sweden full.
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 50, 1));
        let mut router = LatencyAwareRouter::new(&rs, 1000.0);
        let jobs = vec![
            Job::batch(1, "DE", start, 4.0, Slack::None),
            Job::batch(2, "DE", start, 4.0, Slack::None),
        ];
        let report = sim.run(&mut router, &jobs);
        assert_eq!(report.completed_count(), 2);
        let to_se = report.completed.iter().filter(|c| c.region == "SE").count();
        let at_home = report.completed.iter().filter(|c| c.region == "DE").count();
        assert_eq!(to_se, 1, "exactly one fits in Sweden");
        assert_eq!(at_home, 1, "the other runs at the origin");
    }

    #[test]
    fn tighter_slo_never_lowers_emissions() {
        let traces = builtin_dataset();
        let rs = regions(&DEPLOYED);
        let start = year_start(2022);
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::batch(i + 1, "DE", start.plus(i as usize * 3), 2.0, Slack::None))
            .collect();
        let run = |slo: f64| {
            let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 100, 16));
            let mut router = LatencyAwareRouter::new(&rs, slo);
            sim.run(&mut router, &jobs).total_emissions_g
        };
        let tight = run(0.0);
        let regional = run(60.0);
        let global = run(1000.0);
        assert!(regional <= tight + 1e-9);
        assert!(global <= regional + 1e-9);
    }
}
