//! Latency-constrained request routing (§5.1.3 made online).
//!
//! Fig. 6(a) computes the analytic reduction when migration is limited to
//! regions within a latency SLO; this policy is the online counterpart: a
//! router that sends each migratable job to the greenest datacenter whose
//! round-trip time from the job's origin fits the SLO and which has free
//! capacity, falling back to the origin.

use decarb_core::latency::rtt_ms;
use decarb_traces::{Hour, RegionId, TraceSet};
use decarb_workloads::Job;

use crate::cluster::CloudView;
use crate::policy::{Placement, Policy};

/// A round-trip-time table over one dataset's deployed regions,
/// precomputed so the per-placement loop does integer indexing only.
/// Storage is O(table + deployed²) — an id→slot side table (like the
/// engine's) plus a dense deployed×deployed matrix — so a huge
/// imported region table with a handful of deployed zones stays cheap.
#[derive(Debug, Clone)]
pub(crate) struct RttTable {
    /// [`RegionId::index`]-indexed map to deployed slots.
    slot: Vec<Option<u16>>,
    /// Deployed-set size.
    d: usize,
    /// `rtt[slot(a) * d + slot(b)]`.
    rtt: Vec<f64>,
    /// Lexicographic rank of every id's code, for deterministic
    /// tie-breaking identical to string comparison.
    lex_rank: Vec<u32>,
}

impl RttTable {
    /// Builds the table for `deployed` regions of `traces`' table.
    pub(crate) fn build(traces: &TraceSet, deployed: &[RegionId]) -> Self {
        let mut slot = vec![None; traces.len()];
        let mut unique: Vec<RegionId> = Vec::with_capacity(deployed.len());
        for &id in deployed {
            if slot[id.index()].is_none() {
                slot[id.index()] = Some(unique.len() as u16);
                unique.push(id);
            }
        }
        let d = unique.len();
        let mut rtt = vec![0.0; d * d];
        for (i, &a) in unique.iter().enumerate() {
            for (j, &b) in unique.iter().enumerate() {
                rtt[i * d + j] = rtt_ms(traces.region_by_id(a), traces.region_by_id(b));
            }
        }
        Self {
            slot,
            d,
            rtt,
            lex_rank: traces.table().lex_ranks(),
        }
    }

    /// RTT between two deployed zones, `None` outside the deployed set.
    #[inline]
    pub(crate) fn get(&self, a: RegionId, b: RegionId) -> Option<f64> {
        let sa = (*self.slot.get(a.index())?)? as usize;
        let sb = (*self.slot.get(b.index())?)? as usize;
        Some(self.rtt[sa * self.d + sb])
    }

    /// `true` when `a`'s zone code sorts lexicographically before `b`'s.
    #[inline]
    pub(crate) fn code_before(&self, a: RegionId, b: RegionId) -> bool {
        self.lex_rank[a.index()] < self.lex_rank[b.index()]
    }
}

/// Same-hour admission control shared by the routing policies: the
/// simulator's capacity view only reflects *running* jobs, so a burst
/// of same-hour arrivals would all see the same free slot. The router
/// remembers what it has placed in the current hour and treats those
/// slots as taken.
#[derive(Debug, Clone)]
pub(crate) struct HourlyLedger {
    placed: Vec<u16>,
    at: Option<Hour>,
}

impl HourlyLedger {
    pub(crate) fn new(regions: usize) -> Self {
        Self {
            placed: vec![0; regions],
            at: None,
        }
    }

    /// Resets the counts when the hour advances.
    pub(crate) fn roll(&mut self, now: Hour) {
        if self.at != Some(now) {
            self.placed.fill(0);
            self.at = Some(now);
        }
    }

    #[inline]
    pub(crate) fn placed(&self, id: RegionId) -> usize {
        self.placed.get(id.index()).copied().unwrap_or(0) as usize
    }

    pub(crate) fn record(&mut self, id: RegionId) {
        if let Some(slot) = self.placed.get_mut(id.index()) {
            *slot += 1;
        }
    }
}

/// Routes to the greenest region within a latency SLO of the origin.
pub struct LatencyAwareRouter {
    matrix: RttTable,
    /// Round-trip-time budget in milliseconds.
    pub slo_ms: f64,
    ledger: HourlyLedger,
}

impl LatencyAwareRouter {
    /// Builds the router over the deployed regions of `traces`.
    pub fn new(traces: &TraceSet, deployed: &[RegionId], slo_ms: f64) -> Self {
        Self {
            matrix: RttTable::build(traces, deployed),
            slo_ms,
            ledger: HourlyLedger::new(traces.len()),
        }
    }

    /// Returns the RTT between two zones, if both are deployed.
    pub fn rtt(&self, a: RegionId, b: RegionId) -> Option<f64> {
        self.matrix.get(a, b)
    }
}

impl Policy for LatencyAwareRouter {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        // Hour-floored: the ledger's admission-control window is the
        // policies' hourly decision cadence even on sub-hourly axes.
        let sph = view.traces.resolution().slots_per_hour() as u32;
        self.ledger.roll(Hour(view.now.0 - view.now.0 % sph));
        let mut region = job.origin;
        if job.migratable {
            let mut best_ci = view.current_ci(job.origin).unwrap_or(f64::INFINITY);
            for dc in view.datacenters {
                let id = dc.region;
                if dc.free_slots() <= self.ledger.placed(id) {
                    continue;
                }
                let Some(rtt) = self.matrix.get(job.origin, id) else {
                    continue;
                };
                if rtt > self.slo_ms {
                    continue;
                }
                let Some(ci) = view.current_ci(id) else {
                    continue;
                };
                // Strict improvement, ties broken to the lexicographically
                // first zone for determinism.
                if ci < best_ci || (ci == best_ci && self.matrix.code_before(id, region)) {
                    best_ci = ci;
                    region = id;
                }
            }
        }
        self.ledger.record(region);
        Placement {
            region,
            start: view.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    fn ids(traces: &TraceSet, codes: &[&str]) -> Vec<RegionId> {
        codes.iter().map(|c| traces.id_of(c).unwrap()).collect()
    }

    /// Deployed: origin Germany plus near (Sweden) and far (Australia)
    /// green regions.
    const DEPLOYED: [&str; 4] = ["DE", "SE", "PL", "AU-TAS"];

    fn route_one(slo_ms: f64) -> String {
        let traces = builtin_dataset();
        let rs = ids(&traces, &DEPLOYED);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 50, 4));
        let mut router = LatencyAwareRouter::new(&traces, &rs, slo_ms);
        let job = Job::batch(1, rs[0], start, 4.0, Slack::None);
        let report = sim.run(&mut router, &[job]);
        assert_eq!(report.completed_count(), 1);
        traces.code(report.completed[0].region).to_string()
    }

    #[test]
    fn zero_slo_keeps_jobs_home() {
        assert_eq!(route_one(0.0), "DE");
    }

    #[test]
    fn regional_slo_reaches_nearby_green_region() {
        // Germany → Sweden is a short intra-European hop; Tasmania is
        // antipodal and must remain out of reach.
        let region = route_one(60.0);
        assert_eq!(region, "SE");
    }

    #[test]
    fn unbounded_slo_still_picks_the_greenest() {
        // With everything feasible the router behaves like the greenest
        // router; SE is greener than AU-TAS at this hour.
        let traces = builtin_dataset();
        let rs = ids(&traces, &DEPLOYED);
        let router = LatencyAwareRouter::new(&traces, &rs, f64::INFINITY);
        assert!(router.rtt(rs[0], rs[3]).unwrap() > 200.0);
        assert_eq!(route_one(f64::INFINITY), "SE");
    }

    #[test]
    fn pinned_jobs_never_move() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &DEPLOYED);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 10, 4));
        let mut router = LatencyAwareRouter::new(&traces, &rs, f64::INFINITY);
        let pl = rs[2];
        let job = Job::interactive(1, pl, start);
        let report = sim.run(&mut router, &[job]);
        assert_eq!(report.completed[0].region, pl);
    }

    #[test]
    fn full_destinations_are_skipped() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["DE", "SE"]);
        let (de, se) = (rs[0], rs[1]);
        let start = year_start(2022);
        // Capacity 1: the second simultaneous job finds Sweden full.
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 50, 1));
        let mut router = LatencyAwareRouter::new(&traces, &rs, 1000.0);
        let jobs = vec![
            Job::batch(1, de, start, 4.0, Slack::None),
            Job::batch(2, de, start, 4.0, Slack::None),
        ];
        let report = sim.run(&mut router, &jobs);
        assert_eq!(report.completed_count(), 2);
        let to_se = report.completed.iter().filter(|c| c.region == se).count();
        let at_home = report.completed.iter().filter(|c| c.region == de).count();
        assert_eq!(to_se, 1, "exactly one fits in Sweden");
        assert_eq!(at_home, 1, "the other runs at the origin");
    }

    #[test]
    fn tighter_slo_never_lowers_emissions() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &DEPLOYED);
        let start = year_start(2022);
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::batch(i + 1, rs[0], start.plus(i as usize * 3), 2.0, Slack::None))
            .collect();
        let run = |slo: f64| {
            let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 100, 16));
            let mut router = LatencyAwareRouter::new(&traces, &rs, slo);
            sim.run(&mut router, &jobs).total_emissions_g
        };
        let tight = run(0.0);
        let regional = run(60.0);
        let global = run(1000.0);
        assert!(regional <= tight + 1e-9);
        assert!(global <= regional + 1e-9);
    }
}
