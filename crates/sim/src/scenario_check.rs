//! Static scenario checker: semantic validation without simulating.
//!
//! The parser (`scenario_file`) rejects files that are *malformed*;
//! this module flags files that are *meaningless* — scenarios that
//! parse cleanly but can only waste a sweep:
//!
//! * `unsatisfiable-job` — the workload's worst-case completion (last
//!   arrival + full slack + runtime) overruns the horizon, or jobs
//!   arrive at/past the horizon and never run at all;
//! * `trace-coverage` — the scenario window falls outside the hours
//!   the dataset actually covers for one of its zones;
//! * `resolution-alignment` — a wall-clock job duration that does not
//!   land on whole slots of the dataset's time axis and is silently
//!   quantized up (e.g. a 1.5 h batch length on hourly data runs for
//!   2 h); the hint names the dataset's resolution. Sub-slot durations
//!   (interactive requests) are exempt — they scale energy instead;
//! * `unknown-zone` — a region code that neither the dataset nor a
//!   `[region CODE]` section in the same file defines;
//! * `empty-regions` / `zero-capacity` — degenerate axes that the
//!   parser already rejects in files but programmatic callers can
//!   still construct;
//! * `dead-axis` — two scenarios whose canonical encodings collide
//!   ([`Scenario::outcome_id`]), so one simulates nothing new;
//! * `unknown-key` — a typo'd key in any section, with an
//!   edit-distance suggestion (the parser rejects these too, but only
//!   one at a time and without a "did you mean" hint);
//! * `parse-error` — fallback span for files the parser rejects for
//!   any other reason.
//!
//! Diagnostics reuse [`decarb_analyze::Diagnostic`], so `scenario
//! check` and `analyze` share one report/JSON format. File-based
//! checks anchor every finding to a 1-based line; programmatic checks
//! (the built-in matrix, in-memory scenario lists) use line 0.

use std::collections::HashMap;

use decarb_analyze::Diagnostic;
use decarb_traces::{Region, TraceSet};
use decarb_workloads::WorkloadSpec;

use crate::scenario::Scenario;
use crate::scenario_file::{
    parse_scenario_file_full, split_sections, Section, DEFAULTS_KEYS, MATRIX_KEYS, REGIONS_KEYS,
    SCENARIO_KEYS,
};

/// Checks an in-memory scenario list against `data`.
///
/// `label` names the source in diagnostics (e.g. `<builtin>`); spans
/// are line 0 because in-memory scenarios have no file positions.
pub fn check_scenarios(label: &str, scenarios: &[Scenario], data: &TraceSet) -> Vec<Diagnostic> {
    semantic_diagnostics(label, scenarios, None, &[], data)
}

/// Checks a scenario file's text against `data`.
///
/// Findings are anchored to the declaring section's 1-based line
/// (matrix-expanded scenarios all point at their `[matrix]` header).
/// Zones declared by `[region CODE]` sections are treated as known —
/// the runner synthesizes traces for them — and skipped by the
/// `unknown-zone` and `trace-coverage` rules.
pub fn check_file(path: &str, text: &str, data: &TraceSet) -> Vec<Diagnostic> {
    let sections = match split_sections(text) {
        Ok(sections) => sections,
        Err(e) => return vec![Diagnostic::new(path, e.line, "parse-error", e.message)],
    };
    let mut diags = unknown_key_diagnostics(path, &sections);
    match parse_scenario_file_full(text) {
        Err(e) => {
            // An unknown key is both a parse error and an unknown-key
            // finding; keep only the richer typo-aware diagnostic. The
            // key pass mirrors the parser's vocabularies exactly, so
            // every "unknown … key" rejection is already covered (the
            // parser may anchor workload/region keys to the section
            // header rather than the offending pair, hence the message
            // match and not just the line match).
            let covered = diags.iter().any(|d| d.line == e.line)
                || (e.message.contains("unknown") && e.message.contains("key `"));
            if !covered {
                diags.push(Diagnostic::new(path, e.line, "parse-error", e.message));
            }
        }
        Ok(file) => {
            let synthesized: Vec<String> =
                file.custom_regions.iter().map(|r| r.code.clone()).collect();
            diags.extend(semantic_diagnostics(
                path,
                &file.scenarios,
                Some(&file.lines),
                &synthesized,
                data,
            ));
        }
    }
    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    diags
}

/// The semantic rules shared by the file and in-memory entry points.
fn semantic_diagnostics(
    file: &str,
    scenarios: &[Scenario],
    lines: Option<&[usize]>,
    synthesized: &[String],
    data: &TraceSet,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut outcomes: HashMap<String, usize> = HashMap::new();
    for (i, s) in scenarios.iter().enumerate() {
        let line = lines.and_then(|l| l.get(i).copied()).unwrap_or(0);
        let codes = s.regions.codes();

        if codes.is_empty() {
            diags.push(Diagnostic::new(
                file,
                line,
                "empty-regions",
                format!(
                    "scenario `{}`: region set `{}` lists no zones",
                    s.name,
                    s.regions.label()
                ),
            ));
        }
        if s.capacity_per_region == 0 {
            diags.push(Diagnostic::new(
                file,
                line,
                "zero-capacity",
                format!(
                    "scenario `{}`: capacity_per_region is 0, every job will be rejected",
                    s.name
                ),
            ));
        }

        // Scenario start/horizon are wall-clock hours; series bounds
        // live on the dataset's slot axis. Scale once for comparison.
        let sph = data.resolution().slots_per_hour() as u32;
        let slot_start = decarb_traces::Hour(s.start.0 * sph);
        let window_end = slot_start.plus(s.horizon * sph as usize);
        for code in &codes {
            if synthesized.iter().any(|c| c == code) {
                continue;
            }
            match data.series(code) {
                Err(_) => diags.push(Diagnostic::new(
                    file,
                    line,
                    "unknown-zone",
                    format!(
                        "scenario `{}`: zone `{code}` is not in the dataset and no \
                         [region {code}] section declares it",
                        s.name
                    ),
                )),
                Ok(series) => {
                    if slot_start < series.start() || window_end > series.end() {
                        diags.push(Diagnostic::new(
                            file,
                            line,
                            "trace-coverage",
                            format!(
                                "scenario `{}`: window [{}, {}) falls outside zone `{code}`'s \
                                 trace coverage [{}, {})",
                                s.name,
                                slot_start.0,
                                window_end.0,
                                series.start().0,
                                series.end().0
                            ),
                        ));
                    }
                }
            }
        }

        for (what, hours) in workload_durations(&s.workload) {
            let minutes = data.resolution().minutes() as f64;
            let total_min = hours * 60.0;
            // Sub-slot durations are by design (interactive requests
            // occupy one slot at proportional energy); whole-slot
            // multiples align. Everything between quantizes up.
            let slots = total_min / minutes;
            if total_min > minutes && (slots - slots.round()).abs() > 1e-9 {
                diags.push(Diagnostic::new(
                    file,
                    line,
                    "resolution-alignment",
                    format!(
                        "scenario `{}`: {what} {hours} h does not align to the dataset's \
                         {} slots and quantizes up to {} slots — did you mean a multiple \
                         of {}, or a finer-resolution dataset?",
                        s.name,
                        data.resolution(),
                        slots.ceil() as usize,
                        data.resolution(),
                    ),
                ));
            }
        }

        if !codes.is_empty() {
            let origins = codes.len();
            let last = s.workload.last_arrival_offset(origins);
            let worst = s.workload.worst_case_completion_offset(origins);
            if last >= s.horizon {
                diags.push(Diagnostic::new(
                    file,
                    line,
                    "unsatisfiable-job",
                    format!(
                        "scenario `{}`: the last job arrives {last}h after the start, at or \
                         past the {}h horizon — it can never run (shrink per_origin/spacing \
                         or extend the horizon)",
                        s.name, s.horizon
                    ),
                ));
            } else if worst > s.horizon {
                diags.push(Diagnostic::new(
                    file,
                    line,
                    "unsatisfiable-job",
                    format!(
                        "scenario `{}`: worst-case completion {worst}h after the start \
                         overruns the {}h horizon — jobs deferred through their full slack \
                         cannot finish (reduce slack/length or extend the horizon)",
                        s.name, s.horizon
                    ),
                ));
            }
        }

        match outcomes.get(&s.outcome_id()) {
            Some(&first) => {
                let twin = scenarios
                    .get(first)
                    .map_or("<unknown>", |t| t.name.as_str());
                diags.push(Diagnostic::new(
                    file,
                    line,
                    "dead-axis",
                    format!(
                        "scenario `{}` duplicates `{twin}` (identical canonical encoding) — \
                         a dead matrix axis that simulates nothing new",
                        s.name
                    ),
                ));
            }
            None => {
                outcomes.insert(s.outcome_id(), i);
            }
        }
    }
    diags
}

/// The wall-clock durations a workload materializes, for the
/// resolution-alignment rule. Slack and horizon are integer hours and
/// align to every divisor-of-60 resolution by construction, so only
/// job lengths can misalign.
fn workload_durations(workload: &WorkloadSpec) -> Vec<(&'static str, f64)> {
    match workload {
        WorkloadSpec::Batch { length_hours, .. } => vec![("batch length", *length_hours)],
        WorkloadSpec::Interactive { .. } => Vec::new(),
        WorkloadSpec::Mixed {
            batch_length_hours, ..
        } => vec![("batch length", *batch_length_hours)],
    }
}

/// Typo-aware unknown-key pass over the raw sections. Mirrors the
/// parser's per-section vocabularies but reports *all* offenders (the
/// parser stops at the first) and suggests near-miss spellings.
fn unknown_key_diagnostics(path: &str, sections: &[Section]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for section in sections {
        let allowed: &[&str] = match section.kind.as_str() {
            "defaults" => DEFAULTS_KEYS,
            "scenario" => SCENARIO_KEYS,
            "matrix" => MATRIX_KEYS,
            "regions" => REGIONS_KEYS,
            "workload" => WorkloadSpec::KNOWN_KEYS,
            "region" => Region::KNOWN_KEYS,
            _ => continue,
        };
        let header = if section.name.is_empty() {
            format!("[{}]", section.kind)
        } else {
            format!("[{} {}]", section.kind, section.name)
        };
        for ((key, _), &line) in section.pairs.iter().zip(&section.pair_lines) {
            if allowed.contains(&key.as_str()) {
                continue;
            }
            let hint = match suggest(key, allowed) {
                Some(near) => format!(" (did you mean `{near}`?)"),
                None => format!(" (valid: {})", allowed.join(", ")),
            };
            diags.push(Diagnostic::new(
                path,
                line,
                "unknown-key",
                format!("unknown key `{key}` in {header}{hint}"),
            ));
        }
    }
    diags
}

/// Returns the closest allowed key within edit distance 2, if any.
fn suggest<'a>(key: &str, allowed: &[&'a str]) -> Option<&'a str> {
    allowed
        .iter()
        .map(|candidate| (edit_distance(key, candidate), *candidate))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, candidate)| candidate)
}

/// Levenshtein distance over bytes (keys are ASCII), two-row DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            curr[j + 1] = substitute.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin_scenarios;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;

    #[test]
    fn builtin_matrix_checks_clean() {
        let data = builtin_dataset();
        let scenarios = builtin_scenarios();
        assert_eq!(scenarios.len(), 54);
        let diags = check_scenarios("<builtin>", &scenarios, &data);
        assert!(
            diags.is_empty(),
            "builtin matrix must check clean:\n{}",
            decarb_analyze::render_report(&diags)
        );
    }

    #[test]
    fn edit_distance_and_suggestions() {
        assert_eq!(edit_distance("horizon", "horizon"), 0);
        assert_eq!(edit_distance("horzion", "horizon"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(suggest("horzion", SCENARIO_KEYS), Some("horizon"));
        assert_eq!(suggest("capactiy", SCENARIO_KEYS), Some("capacity"));
        assert_eq!(suggest("frobnicate", SCENARIO_KEYS), None);
    }

    #[test]
    fn unknown_keys_get_typo_suggestions_with_spans() {
        let text = "\
[workload w]
class = batch
lenth = 4

[scenario s]
workload = w
policy = agnostic
regions = europe
horzion = 240
";
        let data = builtin_dataset();
        let diags = check_file("bad.scenario", text, &data);
        let keys: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "unknown-key").collect();
        assert_eq!(keys.len(), 2, "{diags:?}");
        assert_eq!(keys[0].line, 3);
        assert!(
            keys[0].message.contains("did you mean `length`?"),
            "{}",
            keys[0].message
        );
        assert_eq!(keys[1].line, 9);
        assert!(
            keys[1].message.contains("did you mean `horizon`?"),
            "{}",
            keys[1].message
        );
        // The parser's own rejection of the same line is not repeated
        // as a parse-error diagnostic.
        assert!(diags.iter().all(|d| d.rule != "parse-error"), "{diags:?}");
    }

    #[test]
    fn parse_errors_fall_through_with_their_line() {
        let data = builtin_dataset();
        let diags = check_file("bad.scenario", "[scenario s]\nworkload = w\n", &data);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "parse-error");
        assert_eq!(diags[0].line, 2);
        assert!(
            diags[0].message.contains("unknown workload"),
            "{}",
            diags[0].message
        );
        // Broken grammar (not just semantics) also maps to parse-error.
        let diags = check_file("bad.scenario", "[scenario\n", &data);
        assert_eq!(diags[0].rule, "parse-error");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn unsatisfiable_jobs_are_flagged_with_the_section_line() {
        // 6 jobs/origin × 48h spacing (origins staggered 1h apart): the
        // last of 8 European origins sees its final arrival at
        // 5·48 + 7 = 247h — at or past a 240h horizon.
        let text = "\
[workload nightly]
class = batch
per_origin = 6
spacing = 48
length = 8
slack = week

[scenario doomed]
workload = nightly
policy = deferral
regions = europe
horizon = 240
";
        let data = builtin_dataset();
        let diags = check_file("doomed.scenario", text, &data);
        let unsat: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "unsatisfiable-job")
            .collect();
        assert_eq!(unsat.len(), 1, "{diags:?}");
        assert_eq!(unsat[0].line, 8, "spans the [scenario] header");
        assert!(
            unsat[0].message.contains("can never run"),
            "{}",
            unsat[0].message
        );
        // Tight-but-possible arrivals (last at 5·12 + 7 = 67h) with a
        // week of slack hit the worst-case-completion variant instead:
        // 67 + 168 + 8 = 243h > 240h.
        let slack_text = text.replace("spacing = 48", "spacing = 12");
        let diags = check_file("doomed.scenario", &slack_text, &data);
        let unsat: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "unsatisfiable-job")
            .collect();
        assert_eq!(unsat.len(), 1, "{diags:?}");
        assert!(
            unsat[0].message.contains("worst-case completion"),
            "{}",
            unsat[0].message
        );
        // Giving the horizon room silences the rule.
        let ok_text = slack_text.replace("horizon = 240", "horizon = 480");
        let diags = check_file("ok.scenario", &ok_text, &data);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn trace_coverage_and_unknown_zones_are_flagged() {
        let data = builtin_dataset();
        let mut doomed = builtin_scenarios().remove(0);
        // Start 100h before the dataset's final covered hour: the 384h
        // window overruns the end of coverage in every zone.
        doomed.start =
            year_start(2023).plus(decarb_traces::time::hours_in_year(2023).saturating_sub(100));
        let doomed_start = doomed.start.0;
        let ahead = {
            let mut s = doomed.clone();
            s.start = year_start(2022);
            s
        };
        let diags = check_scenarios("<mem>", &[doomed, ahead], &data);
        let coverage: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "trace-coverage")
            .collect();
        assert!(!coverage.is_empty(), "{diags:?}");
        assert!(
            coverage[0].message.contains("falls outside"),
            "{}",
            coverage[0].message
        );
        // Only the overrunning twin is flagged, never the 2022 one.
        assert!(
            coverage
                .iter()
                .all(|d| d.message.contains(&format!("window [{doomed_start},"))),
            "{diags:?}"
        );

        // Unknown zones surface per code, but `[region CODE]`
        // declarations suppress them in file checks.
        let text = "\
[workload w]
class = batch
length = 2

[regions mixed]
codes = XX-NEW, ZZ-MISSING

[region XX-NEW]
mean_ci = 100

[scenario s]
workload = w
policy = agnostic
regions = mixed
";
        let diags = check_file("f.scenario", text, &data);
        let unknown: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "unknown-zone").collect();
        assert_eq!(unknown.len(), 1, "{diags:?}");
        assert!(
            unknown[0].message.contains("ZZ-MISSING"),
            "{}",
            unknown[0].message
        );
        assert_eq!(unknown[0].line, 11, "spans the [scenario] header");
    }

    #[test]
    fn misaligned_durations_are_flagged_with_the_dataset_resolution() {
        use decarb_traces::{Resolution, TimeSeries, TraceSet};
        use decarb_workloads::{Arrival, Slack};

        let start = year_start(2022);
        let de = decarb_traces::catalog::region("DE").unwrap().clone();
        let series = TimeSeries::new(start, vec![100.0; 24 * 40]);
        let hourly = TraceSet::from_series(vec![(de, series)]);

        let mut s = builtin_scenarios().remove(0);
        s.regions = crate::scenario::RegionSpec::Custom {
            label: "solo".into(),
            codes: vec!["DE".into()],
        };
        s.workload = WorkloadSpec::Batch {
            per_origin: 2,
            arrival: Arrival::fixed(24),
            length_hours: 1.5,
            slack: Slack::Day,
            interruptible: false,
        };
        s.start = start;
        s.horizon = 24 * 30;

        // 1.5 h on hourly data quantizes up to 2 slots: flagged, with
        // the dataset's resolution in the hint.
        let diags = check_scenarios("<mem>", std::slice::from_ref(&s), &hourly);
        let aligned: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "resolution-alignment")
            .collect();
        assert_eq!(aligned.len(), 1, "{diags:?}");
        assert!(
            aligned[0].message.contains("60min"),
            "{}",
            aligned[0].message
        );
        assert!(
            aligned[0].message.contains("1.5 h"),
            "{}",
            aligned[0].message
        );
        assert!(
            aligned[0].message.contains("2 slots"),
            "{}",
            aligned[0].message
        );

        // The same scenario on a 5-minute dataset aligns (90 min = 18
        // slots) and checks clean.
        let fine = hourly
            .resample_to(Resolution::from_minutes(5).unwrap())
            .unwrap();
        let diags = check_scenarios("<mem>", &[s], &fine);
        assert!(
            diags.iter().all(|d| d.rule != "resolution-alignment"),
            "{diags:?}"
        );
    }

    #[test]
    fn degenerate_scenarios_and_dead_axes_are_flagged() {
        let data = builtin_dataset();
        let mut base = builtin_scenarios().remove(0);
        base.regions = crate::scenario::RegionSpec::Custom {
            label: "nothing".into(),
            codes: Vec::new(),
        };
        base.capacity_per_region = 0;
        let diags = check_scenarios("<mem>", &[base], &data);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"empty-regions"), "{diags:?}");
        assert!(rules.contains(&"zero-capacity"), "{diags:?}");

        // Two scenarios differing only in name share an outcome id.
        let a = builtin_scenarios().remove(0);
        let mut b = a.clone();
        b.name = "renamed-twin".into();
        let diags = check_scenarios("<mem>", &[a.clone(), b], &data);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "dead-axis");
        assert!(diags[0].message.contains(&a.name), "{}", diags[0].message);
        assert!(
            diags[0].message.contains("renamed-twin"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn dead_axis_catches_aliased_region_sets_in_files() {
        // A custom set with the same codes as `europe` produces the
        // same canonical encoding: the matrix axis is dead even though
        // the labels differ.
        let europe = crate::scenario::RegionSet::Europe.codes().join(", ");
        let text = format!(
            "\
[workload w]
class = batch
length = 2

[regions europa]
codes = {europe}

[matrix m]
workloads = w
policies = agnostic
regions = europe, europa
"
        );
        let data = builtin_dataset();
        let diags = check_file("alias.scenario", &text, &data);
        let dead: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "dead-axis").collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].line, 8, "spans the [matrix] header");
    }
}
