//! Combined online spatial + temporal shifting (§6.4 made online).
//!
//! Fig. 12 combines migration with in-destination deferral analytically;
//! this policy is the discrete-event counterpart: at arrival a job is
//! routed to the greenest region within its latency SLO (with the same
//! same-hour admission control as [`crate::routing::LatencyAwareRouter`]),
//! then deferred inside the destination using a forecast of the
//! destination's carbon-intensity. The paper's finding — spatial gains
//! dominate, temporal shifting adds a little on top — emerges online.

use decarb_core::temporal::TemporalPlanner;
use decarb_forecast::Forecaster;
use decarb_traces::{Hour, RegionId, TimeSeries, TraceSet};
use decarb_workloads::Job;

use crate::cluster::CloudView;
use crate::policy::{Placement, Policy};
use crate::routing::{HourlyLedger, RttTable};

/// Routes to the greenest feasible region, then forecast-defers there.
pub struct SpatioTemporal<F> {
    matrix: RttTable,
    /// Round-trip-time budget in milliseconds.
    pub slo_ms: f64,
    forecaster: F,
    /// History handed to the forecaster at each decision, hours.
    pub max_history: usize,
    ledger: HourlyLedger,
}

impl<F: Forecaster> SpatioTemporal<F> {
    /// Creates the policy over the deployed regions of `traces`.
    pub fn new(traces: &TraceSet, deployed: &[RegionId], slo_ms: f64, forecaster: F) -> Self {
        Self {
            matrix: RttTable::build(traces, deployed),
            slo_ms,
            forecaster,
            max_history: 28 * 24,
            ledger: HourlyLedger::new(traces.len()),
        }
    }

    /// Picks the greenest admissible destination for `job` (falls back to
    /// the origin).
    fn route(&self, job: &Job, view: &CloudView<'_>) -> RegionId {
        if !job.migratable {
            return job.origin;
        }
        let mut region = job.origin;
        let mut best_ci = view.current_ci(job.origin).unwrap_or(f64::INFINITY);
        for dc in view.datacenters {
            let id = dc.region;
            if dc.free_slots() <= self.ledger.placed(id) {
                continue;
            }
            let Some(rtt) = self.matrix.get(job.origin, id) else {
                continue;
            };
            if rtt > self.slo_ms {
                continue;
            }
            let Some(ci) = view.current_ci(id) else {
                continue;
            };
            if ci < best_ci || (ci == best_ci && self.matrix.code_before(id, region)) {
                best_ci = ci;
                region = id;
            }
        }
        region
    }

    /// Forecast-defers the start inside `region`'s trace.
    fn defer(&self, job: &Job, region: RegionId, view: &CloudView<'_>) -> Hour {
        let Some(series) = view.traces.try_series_by_id(region) else {
            return view.now;
        };
        let available = view.now.0.saturating_sub(series.start().0) as usize;
        if available == 0 {
            return view.now;
        }
        let resolution = view.traces.resolution();
        let history_slots = self.max_history * resolution.slots_per_hour();
        let history_len = history_slots.min(available);
        let Ok(history) = series.slice(Hour(view.now.0 - history_len as u32), history_len) else {
            return view.now;
        };
        let slots = job.length_slots_at(resolution);
        let remaining = (series.end().0 - view.now.0) as usize;
        if remaining < slots {
            return view.now;
        }
        let window = (job.slack_slots_at(resolution) + slots).min(remaining);
        let predicted: TimeSeries = self.forecaster.predict_series(&history, window);
        TemporalPlanner::with_resolution(&predicted, resolution)
            .best_deferred(view.now, slots, window - slots)
            .start
    }
}

impl<F: Forecaster> Policy for SpatioTemporal<F> {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        let sph = view.traces.resolution().slots_per_hour() as u32;
        self.ledger.roll(Hour(view.now.0 - view.now.0 % sph));
        let region = self.route(job, view);
        self.ledger.record(region);
        let start = self.defer(job, region, view);
        Placement { region, start }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::forecast_policy::ForecastDeferral;
    use crate::policy::CarbonAgnostic;
    use crate::routing::LatencyAwareRouter;
    use decarb_forecast::SeasonalNaive;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    const DEPLOYED: [&str; 3] = ["PL", "DE", "SE"];

    fn regions(traces: &TraceSet) -> Vec<RegionId> {
        DEPLOYED.iter().map(|c| traces.id_of(c).unwrap()).collect()
    }

    fn run<P: Policy>(policy: &mut P, jobs: &[Job], horizon: usize) -> crate::SimReport {
        let traces = builtin_dataset();
        let rs = regions(&traces);
        let start = jobs.iter().map(|j| j.arrival).min().unwrap();
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, horizon, 16));
        let report = sim.run(policy, jobs);
        assert_eq!(report.completed_count(), jobs.len());
        report
    }

    fn workload() -> Vec<Job> {
        let traces = builtin_dataset();
        let pl = traces.id_of("PL").unwrap();
        let start = year_start(2022).plus(60 * 24);
        (0..8)
            .map(|i| Job::batch(i + 1, pl, start.plus(i as usize * 7), 6.0, Slack::Day))
            .collect()
    }

    #[test]
    fn combined_policy_beats_both_single_dimension_policies() {
        let traces = builtin_dataset();
        let rs = regions(&traces);
        let jobs = workload();
        let combined = run(
            &mut SpatioTemporal::new(&traces, &rs, 1000.0, SeasonalNaive::daily()),
            &jobs,
            24 * 5,
        );
        let spatial_only = run(
            &mut LatencyAwareRouter::new(&traces, &rs, 1000.0),
            &jobs,
            24 * 5,
        );
        let temporal_only = run(
            &mut ForecastDeferral::new(SeasonalNaive::daily()),
            &jobs,
            24 * 5,
        );
        let agnostic = run(&mut CarbonAgnostic, &jobs, 24 * 5);
        assert!(combined.total_emissions_g <= spatial_only.total_emissions_g + 1e-9);
        assert!(combined.total_emissions_g <= temporal_only.total_emissions_g + 1e-9);
        assert!(combined.total_emissions_g < agnostic.total_emissions_g);
        // Spatial dominates: routing alone captures most of the benefit
        // (the paper's Fig. 12 takeaway).
        let spatial_gain = agnostic.total_emissions_g - spatial_only.total_emissions_g;
        let temporal_gain = agnostic.total_emissions_g - temporal_only.total_emissions_g;
        assert!(
            spatial_gain > temporal_gain,
            "{spatial_gain} vs {temporal_gain}"
        );
    }

    #[test]
    fn zero_slo_reduces_to_forecast_deferral() {
        let traces = builtin_dataset();
        let rs = regions(&traces);
        let pl = traces.id_of("PL").unwrap();
        let jobs = workload();
        let pinned = run(
            &mut SpatioTemporal::new(&traces, &rs, 0.0, SeasonalNaive::daily()),
            &jobs,
            24 * 5,
        );
        let deferral = run(
            &mut ForecastDeferral::new(SeasonalNaive::daily()),
            &jobs,
            24 * 5,
        );
        assert!((pinned.total_emissions_g - deferral.total_emissions_g).abs() < 1e-9);
        assert!(pinned.completed.iter().all(|c| c.region == pl));
    }

    #[test]
    fn jobs_land_in_sweden_and_wait_for_valleys() {
        let traces = builtin_dataset();
        let rs = regions(&traces);
        let se = traces.id_of("SE").unwrap();
        let jobs = workload();
        let report = run(
            &mut SpatioTemporal::new(&traces, &rs, 1000.0, SeasonalNaive::daily()),
            &jobs,
            24 * 5,
        );
        assert!(report.completed.iter().all(|c| c.region == se));
        // At least some job used its slack (started after arrival) or all
        // started immediately because SE is flat — either way waits are
        // bounded by the slack.
        for c in &report.completed {
            assert!(c.wait_hours() <= 24);
        }
    }

    #[test]
    fn pinned_jobs_stay_home_but_still_defer() {
        let traces = builtin_dataset();
        let rs = regions(&traces);
        let de = traces.id_of("DE").unwrap();
        let start = year_start(2022).plus(90 * 24);
        let mut job = Job::batch(1, de, start, 4.0, Slack::Day);
        job.migratable = false;
        let report = run(
            &mut SpatioTemporal::new(&traces, &rs, 1000.0, SeasonalNaive::daily()),
            &[job],
            24 * 4,
        );
        assert_eq!(report.completed[0].region, de);
    }
}
