//! Forecast-driven online policies.
//!
//! The paper's deferral and interruptibility bounds are clairvoyant; its
//! §6.2 probes sensitivity to forecast error abstractly. These policies
//! close the loop: they plan with a real [`Forecaster`] over exactly the
//! history an online scheduler could have seen, so the gap between them
//! and [`crate::policy::PlannedDeferral`] *is* the cost of imperfect
//! forecasts, with realistic structured error instead of §6.2's uniform
//! noise.

use std::collections::HashMap;

use decarb_core::temporal::TemporalPlanner;
use decarb_forecast::Forecaster;
use decarb_traces::{Hour, TimeSeries};
use decarb_workloads::Job;

use crate::cluster::CloudView;
use crate::policy::{Placement, Policy};

/// Slices the history an online scheduler is allowed to see at `now`:
/// every sample of `series` strictly before `now`, capped at
/// `max_history`.
fn visible_history(series: &TimeSeries, now: Hour, max_history: usize) -> Option<TimeSeries> {
    let available = now.0.checked_sub(series.start().0)? as usize;
    if available == 0 {
        return None;
    }
    let len = available.min(max_history);
    series.slice(Hour(now.0 - len as u32), len).ok()
}

/// Defer a job's start using a forecast of its scheduling window.
///
/// At arrival the policy forecasts the next `slack + length` hours at the
/// job's origin, picks the cheapest contiguous window on the *predicted*
/// trace, and commits to that start. Emissions are then paid on the true
/// trace — the schedule-on-believed / account-on-truth protocol of §6.2.
pub struct ForecastDeferral<F> {
    forecaster: F,
    /// History handed to the forecaster at each decision, hours.
    pub max_history: usize,
}

impl<F: Forecaster> ForecastDeferral<F> {
    /// Creates the policy with a 28-day history window.
    pub fn new(forecaster: F) -> Self {
        Self {
            forecaster,
            max_history: 28 * 24,
        }
    }
}

impl<F: Forecaster> Policy for ForecastDeferral<F> {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        let fallback = Placement {
            region: job.origin,
            start: view.now,
        };
        let Some(series) = view.traces.try_series_by_id(job.origin) else {
            return fallback;
        };
        let resolution = view.traces.resolution();
        let history_slots = self.max_history * resolution.slots_per_hour();
        let Some(history) = visible_history(series, view.now, history_slots) else {
            return fallback;
        };
        let slots = job.length_slots_at(resolution);
        let window = job.slack_slots_at(resolution) + slots;
        // Never plan past the true trace (the simulator could not pay for
        // those hours anyway).
        let available = (series.end().0 - view.now.0) as usize;
        if available < slots {
            return fallback;
        }
        let window = window.min(available);
        let predicted = self.forecaster.predict_series(&history, window);
        let planner = TemporalPlanner::with_resolution(&predicted, resolution);
        let placement = planner.best_deferred(view.now, slots, window - slots);
        Placement {
            region: job.origin,
            start: placement.start,
        }
    }
}

/// Suspend/resume an interruptible job according to a forecast plan.
///
/// At arrival the policy forecasts the job's whole scheduling window,
/// marks the `length` cheapest predicted hours as run-hours, and follows
/// that plan; the simulator's deadline forcing still guarantees
/// completion if the plan was too optimistic.
pub struct ForecastSuspend<F> {
    forecaster: F,
    /// History handed to the forecaster at each decision, hours.
    pub max_history: usize,
    plans: HashMap<u64, Vec<Hour>>,
}

impl<F: Forecaster> ForecastSuspend<F> {
    /// Creates the policy with a 28-day history window.
    pub fn new(forecaster: F) -> Self {
        Self {
            forecaster,
            max_history: 28 * 24,
            plans: HashMap::new(),
        }
    }

    /// Returns the planned run-hours of a job (sorted), for inspection.
    pub fn plan_of(&self, job_id: u64) -> Option<&[Hour]> {
        self.plans.get(&job_id).map(Vec::as_slice)
    }
}

impl<F: Forecaster> Policy for ForecastSuspend<F> {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        let placement = Placement {
            region: job.origin,
            start: view.now,
        };
        if !job.interruptible {
            return placement;
        }
        let Some(series) = view.traces.try_series_by_id(job.origin) else {
            return placement;
        };
        let resolution = view.traces.resolution();
        let history_slots = self.max_history * resolution.slots_per_hour();
        let Some(history) = visible_history(series, view.now, history_slots) else {
            return placement;
        };
        let slots = job.length_slots_at(resolution);
        let available = (series.end().0 - view.now.0) as usize;
        let window = (job.slack_slots_at(resolution) + slots).min(available);
        if window < slots {
            return placement;
        }
        let predicted = self.forecaster.predict(&history, window);
        // The `slots` cheapest predicted hours, preferring earlier on ties.
        let mut order: Vec<usize> = (0..window).collect();
        order.sort_by(|&a, &b| predicted[a].total_cmp(&predicted[b]).then(a.cmp(&b)));
        let mut hours: Vec<Hour> = order[..slots].iter().map(|&i| view.now.plus(i)).collect();
        hours.sort();
        self.plans.insert(job.id, hours);
        placement
    }

    fn should_run(
        &mut self,
        job: &Job,
        remaining_slots: usize,
        deadline: Hour,
        view: &CloudView<'_>,
    ) -> bool {
        // Forced once the remaining window equals the remaining work.
        if view.now.plus(remaining_slots) >= deadline {
            return true;
        }
        match self.plans.get(&job.id) {
            Some(plan) => {
                // Run if any planned slot falls inside the current
                // decision period — one slot on hourly axes (exactly
                // the old membership test), the rest of the hour on
                // sub-hourly axes, where verdicts are replayed until
                // the next hour boundary.
                let sph = view.traces.resolution().slots_per_hour() as u32;
                let period_end = Hour(view.now.0 - view.now.0 % sph + sph);
                let idx = plan.partition_point(|h| *h < view.now);
                plan.get(idx).is_some_and(|h| *h < period_end)
            }
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::policy::{CarbonAgnostic, PlannedDeferral};
    use decarb_forecast::{DiurnalTemplate, Persistence, SeasonalNaive};
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_traces::RegionId;
    use decarb_workloads::Slack;

    fn id(code: &str) -> RegionId {
        builtin_dataset().id_of(code).unwrap()
    }

    /// Run one job under a policy and return its emissions.
    fn run_one<P: Policy>(policy: &mut P, job: Job, horizon: usize) -> f64 {
        let traces = builtin_dataset();
        let rs = vec![job.origin];
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(job.arrival, horizon, 4));
        let report = sim.run(policy, std::slice::from_ref(&job));
        assert_eq!(report.completed_count(), 1, "job must finish");
        report.emissions_of(job.id).unwrap()
    }

    #[test]
    fn forecast_deferral_between_bounds_on_diurnal_region() {
        // Start mid-year so the forecaster has history to look at.
        let arrival = year_start(2022).plus(120 * 24);
        let job = Job::batch(1, id("US-CA"), arrival, 4.0, Slack::Day);
        let agnostic = run_one(&mut CarbonAgnostic, job.clone(), 24 * 10);
        let clairvoyant = run_one(&mut PlannedDeferral, job.clone(), 24 * 10);
        let forecast = run_one(
            &mut ForecastDeferral::new(DiurnalTemplate::default()),
            job,
            24 * 10,
        );
        assert!(
            forecast >= clairvoyant - 1e-9,
            "forecast {forecast} below clairvoyant bound {clairvoyant}"
        );
        // On a strongly diurnal trace the template forecast captures most
        // of the deferral benefit.
        assert!(
            forecast <= agnostic * 1.001,
            "forecast {forecast} vs agnostic {agnostic}"
        );
    }

    #[test]
    fn forecast_deferral_with_no_history_runs_immediately() {
        let arrival = year_start(2020); // Trace start: nothing visible.
        let job = Job::batch(2, id("DE"), arrival, 3.0, Slack::Day);
        let forecast = run_one(&mut ForecastDeferral::new(Persistence), job.clone(), 24 * 5);
        let agnostic = run_one(&mut CarbonAgnostic, job, 24 * 5);
        assert!((forecast - agnostic).abs() < 1e-9);
    }

    #[test]
    fn forecast_suspend_completes_and_respects_bound() {
        let traces = builtin_dataset();
        let arrival = year_start(2022).plus(90 * 24);
        let job = Job::batch(3, id("US-CA"), arrival, 12.0, Slack::Week).with_interruptible();
        let rs = vec![id("US-CA")];
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(arrival, 24 * 30, 4));
        let mut policy = ForecastSuspend::new(SeasonalNaive::daily());
        let report = sim.run(&mut policy, &[job]);
        assert_eq!(report.completed_count(), 1);
        let emitted = report.emissions_of(3).unwrap();
        let planner = TemporalPlanner::new(traces.series("US-CA").unwrap());
        let clairvoyant = planner.best_interruptible(arrival, 12, 168).1;
        let baseline = planner.baseline_cost(arrival, 12);
        assert!(emitted >= clairvoyant - 1e-9);
        assert!(
            emitted < baseline,
            "forecast plan {emitted} should beat contiguous baseline {baseline}"
        );
    }

    #[test]
    fn forecast_suspend_plan_has_job_length_hours() {
        let traces = builtin_dataset();
        let arrival = year_start(2022).plus(60 * 24);
        let job = Job::batch(4, id("DE"), arrival, 6.0, Slack::Day).with_interruptible();
        let rs = vec![id("DE")];
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(arrival, 24 * 5, 4));
        let mut policy = ForecastSuspend::new(SeasonalNaive::daily());
        let report = sim.run(&mut policy, &[job]);
        assert_eq!(report.completed_count(), 1);
        let plan = policy.plan_of(4).expect("plan recorded");
        assert_eq!(plan.len(), 6);
        assert!(plan.windows(2).all(|w| w[0] < w[1]), "sorted unique plan");
        assert!(plan.first().unwrap() >= &arrival);
    }

    #[test]
    fn uninterruptible_jobs_bypass_the_plan() {
        let traces = builtin_dataset();
        let arrival = year_start(2022).plus(30 * 24);
        let job = Job::batch(5, id("DE"), arrival, 3.0, Slack::Day); // Not interruptible.
        let rs = vec![id("DE")];
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(arrival, 24 * 3, 4));
        let mut policy = ForecastSuspend::new(Persistence);
        let report = sim.run(&mut policy, &[job]);
        assert_eq!(report.completed_count(), 1);
        assert!(policy.plan_of(5).is_none(), "no plan for rigid jobs");
        // Ran contiguously from arrival.
        let c = &report.completed[0];
        assert_eq!(c.started, arrival);
        assert_eq!(c.finished, arrival.plus(2));
    }

    #[test]
    fn visible_history_never_leaks_the_future() {
        let traces = builtin_dataset();
        let series = traces.series("SE").unwrap();
        let now = series.start().plus(100);
        let history = visible_history(series, now, 48).unwrap();
        assert_eq!(history.end(), now);
        assert_eq!(history.len(), 48);
        // At the trace start there is no history.
        assert!(visible_history(series, series.start(), 48).is_none());
        // Before the trace start: also none.
        assert!(visible_history(series, Hour(series.start().0.saturating_sub(1)), 48).is_none());
    }
}
