//! The scenario-file format: user-defined scenario sweeps.
//!
//! The built-in matrix covers 54 scenarios; everything beyond it —
//! custom region sets, workload recipes, overhead/capacity grids,
//! different horizons — is declared in a plain-text scenario file and
//! run via `decarb-cli scenario run --file <path>`. The format is
//! INI-like (no external parser needed): `[kind name]` section headers,
//! `key = value` lines, `#` comments, comma-separated lists.
//!
//! ```text
//! [defaults]
//! capacity = 8
//! horizon = 384
//! year = 2022
//!
//! [workload nightly]
//! class = batch
//! per_origin = 12
//! spacing = 24
//! length = 8
//! slack = day
//!
//! [regions nordics]
//! codes = SE, NO, FI
//!
//! [scenario nightly-forecast-nordics]
//! workload = nightly
//! policy = forecast
//! regions = nordics
//!
//! [matrix sweep]
//! workloads = nightly
//! policies = agnostic, deferral, spatiotemporal
//! regions = europe, nordics
//! overheads = zero, realistic
//! capacities = 4, 8
//! ```
//!
//! Section kinds:
//!
//! * `[defaults]` — run-wide settings: `capacity`, `horizon`, `year`,
//!   `start_offset` (hours into the year), `overheads`, `forecaster`
//!   (`naive` / `seasonal` — what the forecast-backed policies plan
//!   with), `slo_ms` (the spatiotemporal round-trip budget).
//! * `[workload NAME]` — a [`WorkloadSpec`] recipe; keys are parsed by
//!   [`WorkloadSpec::from_pairs`]. Arrivals default to a fixed cadence
//!   (`spacing = N`); `arrival = poisson:<rate>` (jobs per hour, with
//!   an optional `arrival_seed`) draws seeded exponential gaps instead.
//! * `[regions NAME]` — a custom region set: `codes = A, B, C`.
//! * `[region CODE]` — a fully custom region: metadata for a zone the
//!   dataset (or catalog) does not know, keys per
//!   `decarb_traces::Region::from_pairs` (`name`, `group`, `lat`,
//!   `lon`, `mean_ci`, `ci_delta`, `daily_cv`, `periodicity`, `mix`).
//!   The CLI synthesizes a trace for it when the active dataset lacks
//!   one, so scenarios can deploy into entirely hypothetical grids.
//! * `[scenario NAME]` — one scenario: `workload`, `policy`, `regions`
//!   (a built-in label or a `[regions]` section name), plus optional
//!   overrides of any default.
//! * `[matrix NAME]` — a cartesian sweep: `workloads`, `policies`
//!   (labels or `all`), `regions`, `overheads`, `capacities`, plus
//!   optional `horizon`/`year`/`start_offset`/`forecaster`/`slo_ms`
//!   overrides. Expanded names follow
//!   [`crate::scenario::ScenarioMatrix::expand`].
//!
//! Scenario names must be unique across the whole file; region codes
//! are validated against the active dataset by the CLI before running.

use std::collections::HashMap;

use decarb_traces::time::{year_start, EPOCH_YEAR, LAST_YEAR};
use decarb_traces::{Hour, Region};
use decarb_workloads::WorkloadSpec;

use crate::scenario::{
    ForecasterKind, OverheadKind, PolicyKind, RegionSet, RegionSpec, Scenario, ScenarioMatrix,
    SPATIOTEMPORAL_SLO_MS,
};

/// A scenario-file parse failure, with the 1-based line it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioFileError {
    /// 1-based line number of the offending section or pair.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScenarioFileError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioFileError {
    ScenarioFileError {
        line,
        message: message.into(),
    }
}

/// Keys a `[defaults]` section accepts.
pub(crate) const DEFAULTS_KEYS: &[&str] = &[
    "capacity",
    "horizon",
    "year",
    "start_offset",
    "overheads",
    "forecaster",
    "slo_ms",
];

/// Keys a `[scenario NAME]` section accepts.
pub(crate) const SCENARIO_KEYS: &[&str] = &[
    "workload",
    "policy",
    "regions",
    "capacity",
    "horizon",
    "year",
    "start_offset",
    "overheads",
    "forecaster",
    "slo_ms",
];

/// Keys a `[matrix NAME]` section accepts.
pub(crate) const MATRIX_KEYS: &[&str] = &[
    "workloads",
    "policies",
    "regions",
    "overheads",
    "capacities",
    "capacity",
    "horizon",
    "year",
    "start_offset",
    "forecaster",
    "slo_ms",
];

/// Keys a `[regions NAME]` section accepts.
pub(crate) const REGIONS_KEYS: &[&str] = &["codes"];

/// One `[kind name]` section with its `key = value` pairs. Shared with
/// the static checker (`scenario_check`), which re-walks the raw
/// sections for typo-aware unknown-key diagnostics.
#[derive(Debug)]
pub(crate) struct Section {
    pub(crate) kind: String,
    pub(crate) name: String,
    pub(crate) line: usize,
    pub(crate) pairs: Vec<(String, String)>,
    pub(crate) pair_lines: Vec<usize>,
}

impl Section {
    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn line_of(&self, key: &str) -> usize {
        self.pairs
            .iter()
            .position(|(k, _)| k == key)
            .map_or(self.line, |i| self.pair_lines[i])
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ScenarioFileError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                err(
                    self.line_of(key),
                    format!("invalid value `{raw}` for `{key}`"),
                )
            }),
        }
    }

    fn list(&self, key: &str) -> Option<Vec<&str>> {
        self.get(key).map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect()
        })
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ScenarioFileError> {
        for (i, (key, _)) in self.pairs.iter().enumerate() {
            if !allowed.contains(&key.as_str()) {
                return Err(err(
                    self.pair_lines[i],
                    format!("unknown key `{key}` in [{} {}]", self.kind, self.name),
                ));
            }
        }
        Ok(())
    }
}

/// Splits the file into sections, validating the line grammar.
pub(crate) fn split_sections(text: &str) -> Result<Vec<Section>, ScenarioFileError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return Err(err(line_no, format!("unterminated section header `{raw}`")));
            };
            let mut parts = header.split_whitespace();
            let kind = parts.next().unwrap_or("").to_string();
            let name = parts.next().unwrap_or("").to_string();
            if parts.next().is_some() {
                return Err(err(line_no, "section headers take one name"));
            }
            match kind.as_str() {
                "defaults" => {
                    if !name.is_empty() {
                        return Err(err(line_no, "`[defaults]` takes no name"));
                    }
                }
                "workload" | "regions" | "region" | "scenario" | "matrix" => {
                    if name.is_empty() {
                        return Err(err(line_no, format!("`[{kind} ...]` needs a name")));
                    }
                }
                other => {
                    return Err(err(
                        line_no,
                        format!(
                            "unknown section kind `{other}` (valid: defaults, workload, \
                             regions, region, scenario, matrix)"
                        ),
                    ));
                }
            }
            sections.push(Section {
                kind,
                name,
                line: line_no,
                pairs: Vec::new(),
                pair_lines: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let Some(section) = sections.last_mut() else {
            return Err(err(line_no, "`key = value` before any section header"));
        };
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err(err(line_no, "empty key"));
        }
        if section.pairs.iter().any(|(k, _)| *k == key) {
            return Err(err(
                line_no,
                format!(
                    "duplicate key `{key}` in [{} {}]",
                    section.kind, section.name
                ),
            ));
        }
        section.pairs.push((key, value.trim().to_string()));
        section.pair_lines.push(line_no);
    }
    Ok(sections)
}

/// Run-wide defaults, overridable per scenario/matrix section. The
/// start is kept as its `year` + `start_offset` components so a
/// section overriding one of the pair still inherits the other.
#[derive(Debug, Clone, Copy)]
struct Defaults {
    capacity: usize,
    horizon: usize,
    year: i32,
    start_offset: usize,
    overheads: OverheadKind,
    forecaster: ForecasterKind,
    slo_ms: f64,
}

impl Defaults {
    fn builtin() -> Self {
        Self {
            capacity: 8,
            horizon: 16 * 24,
            year: 2022,
            start_offset: 0,
            overheads: OverheadKind::Zero,
            forecaster: ForecasterKind::Seasonal,
            slo_ms: SPATIOTEMPORAL_SLO_MS,
        }
    }

    fn start(&self) -> Hour {
        year_start(self.year).plus(self.start_offset)
    }
}

/// Reads `year`/`start_offset`/`horizon`/`capacity` — and, unless the
/// caller treats `overheads` as a list axis (matrix sections),
/// `overheads` — from `section` on top of `base`.
fn settings_from(
    section: &Section,
    base: Defaults,
    include_overheads: bool,
) -> Result<Defaults, ScenarioFileError> {
    let year: i32 = section.parsed("year", base.year)?;
    if !(EPOCH_YEAR..LAST_YEAR).contains(&year) {
        return Err(err(
            section.line_of("year"),
            format!("`year` must lie in {EPOCH_YEAR}..{}", LAST_YEAR - 1),
        ));
    }
    let start_offset: usize = section.parsed("start_offset", base.start_offset)?;
    let capacity: usize = section.parsed("capacity", base.capacity)?;
    if capacity == 0 {
        return Err(err(section.line_of("capacity"), "`capacity` must be ≥ 1"));
    }
    let horizon: usize = section.parsed("horizon", base.horizon)?;
    if horizon == 0 {
        return Err(err(section.line_of("horizon"), "`horizon` must be ≥ 1"));
    }
    let overheads = match section.get("overheads").filter(|_| include_overheads) {
        Some(raw) => OverheadKind::parse(raw).map_err(|e| err(section.line_of("overheads"), e))?,
        None => base.overheads,
    };
    let forecaster = match section.get("forecaster") {
        Some(raw) => {
            ForecasterKind::parse(raw).map_err(|e| err(section.line_of("forecaster"), e))?
        }
        None => base.forecaster,
    };
    let slo_ms: f64 = section.parsed("slo_ms", base.slo_ms)?;
    if !slo_ms.is_finite() || slo_ms <= 0.0 {
        return Err(err(section.line_of("slo_ms"), "`slo_ms` must be positive"));
    }
    Ok(Defaults {
        capacity,
        horizon,
        year,
        start_offset,
        overheads,
        forecaster,
        slo_ms,
    })
}

/// Resolves a region reference: a built-in label or a `[regions]`
/// section name.
fn resolve_regions(
    name: &str,
    custom: &HashMap<String, RegionSpec>,
    line: usize,
) -> Result<RegionSpec, ScenarioFileError> {
    if let Ok(set) = RegionSet::parse(name) {
        return Ok(set.into());
    }
    custom.get(name).cloned().ok_or_else(|| {
        let mut valid: Vec<&str> = RegionSet::ALL.iter().map(|s| s.label()).collect();
        valid.extend(custom.keys().map(String::as_str));
        err(
            line,
            format!("unknown region set `{name}` (valid: {})", valid.join(", ")),
        )
    })
}

/// A parsed scenario file: the expanded scenario list plus any fully
/// custom regions its `[region CODE]` sections declared.
#[derive(Debug)]
pub struct ScenarioFile {
    /// Expanded scenarios in declaration order.
    pub scenarios: Vec<Scenario>,
    /// Custom regions, in declaration order; the runner interns (and
    /// synthesizes traces for) the ones the active dataset lacks.
    pub custom_regions: Vec<Region>,
    /// 1-based line of the `[scenario]` or `[matrix]` section each
    /// entry of `scenarios` came from, index-aligned — the spans the
    /// static checker anchors its diagnostics to.
    pub(crate) lines: Vec<usize>,
}

/// Parses a scenario file into its expanded scenario list, dropping
/// any `[region CODE]` declarations (see [`parse_scenario_file_full`]).
pub fn parse_scenario_file(text: &str) -> Result<Vec<Scenario>, ScenarioFileError> {
    parse_scenario_file_full(text).map(|file| file.scenarios)
}

/// Parses a scenario file into scenarios plus custom regions.
///
/// Scenarios appear in declaration order (`[scenario]` entries as-is,
/// `[matrix]` entries expanded in axis order). Names must be unique
/// across the file.
pub fn parse_scenario_file_full(text: &str) -> Result<ScenarioFile, ScenarioFileError> {
    let sections = split_sections(text)?;

    let mut defaults = Defaults::builtin();
    let mut workloads: HashMap<String, WorkloadSpec> = HashMap::new();
    let mut region_sets: HashMap<String, RegionSpec> = HashMap::new();
    let mut custom_regions: Vec<Region> = Vec::new();

    // First pass: defaults and named definitions (usable by any later —
    // or earlier — scenario/matrix section).
    for section in &sections {
        match section.kind.as_str() {
            "defaults" => {
                section.reject_unknown(DEFAULTS_KEYS)?;
                defaults = settings_from(section, defaults, true)?;
            }
            "workload" => {
                let spec =
                    WorkloadSpec::from_pairs(&section.pairs).map_err(|e| err(section.line, e))?;
                if workloads.insert(section.name.clone(), spec).is_some() {
                    return Err(err(
                        section.line,
                        format!("duplicate workload `{}`", section.name),
                    ));
                }
            }
            "region" => {
                let code = section.name.to_uppercase();
                let region =
                    Region::from_pairs(&code, &section.pairs).map_err(|e| err(section.line, e))?;
                if custom_regions.iter().any(|r| r.code == region.code) {
                    return Err(err(
                        section.line,
                        format!("duplicate region `{}`", section.name),
                    ));
                }
                custom_regions.push(region);
            }
            "regions" => {
                section.reject_unknown(REGIONS_KEYS)?;
                if RegionSet::parse(&section.name).is_ok() {
                    return Err(err(
                        section.line,
                        format!("region set `{}` shadows a built-in set", section.name),
                    ));
                }
                let codes: Vec<String> = section
                    .list("codes")
                    .ok_or_else(|| err(section.line, "regions section needs `codes`"))?
                    .iter()
                    .map(|c| c.to_uppercase())
                    .collect();
                if codes.is_empty() {
                    return Err(err(section.line_of("codes"), "`codes` must list a zone"));
                }
                let spec = RegionSpec::Custom {
                    label: section.name.clone(),
                    codes,
                };
                if region_sets.insert(section.name.clone(), spec).is_some() {
                    return Err(err(
                        section.line,
                        format!("duplicate region set `{}`", section.name),
                    ));
                }
            }
            _ => {}
        }
    }

    // Second pass: scenarios and matrices, in order.
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut lines: Vec<usize> = Vec::new();
    for section in &sections {
        match section.kind.as_str() {
            "scenario" => {
                section.reject_unknown(SCENARIO_KEYS)?;
                let settings = settings_from(section, defaults, true)?;
                let workload_name = section
                    .get("workload")
                    .ok_or_else(|| err(section.line, "scenario needs `workload`"))?;
                let workload = workloads.get(workload_name).cloned().ok_or_else(|| {
                    err(
                        section.line_of("workload"),
                        format!("unknown workload `{workload_name}`"),
                    )
                })?;
                let policy = section
                    .get("policy")
                    .ok_or_else(|| err(section.line, "scenario needs `policy`"))
                    .and_then(|raw| {
                        PolicyKind::parse(raw).map_err(|e| err(section.line_of("policy"), e))
                    })?;
                let regions_name = section
                    .get("regions")
                    .ok_or_else(|| err(section.line, "scenario needs `regions`"))?;
                let regions =
                    resolve_regions(regions_name, &region_sets, section.line_of("regions"))?;
                lines.push(section.line);
                scenarios.push(Scenario {
                    name: section.name.clone(),
                    workload,
                    policy,
                    regions,
                    overheads: settings.overheads,
                    capacity_per_region: settings.capacity,
                    forecaster: settings.forecaster,
                    slo_ms: settings.slo_ms,
                    start: settings.start(),
                    horizon: settings.horizon,
                });
            }
            "matrix" => {
                section.reject_unknown(MATRIX_KEYS)?;
                let settings = settings_from(section, defaults, false)?;
                let matrix_workloads: Vec<(String, WorkloadSpec)> = section
                    .list("workloads")
                    .ok_or_else(|| err(section.line, "matrix needs `workloads`"))?
                    .iter()
                    .map(|name| {
                        workloads
                            .get(*name)
                            .cloned()
                            .map(|spec| (name.to_string(), spec))
                            .ok_or_else(|| {
                                err(
                                    section.line_of("workloads"),
                                    format!("unknown workload `{name}`"),
                                )
                            })
                    })
                    .collect::<Result<_, _>>()?;
                let policies: Vec<PolicyKind> = match section.list("policies") {
                    None => return Err(err(section.line, "matrix needs `policies`")),
                    Some(labels) if labels == ["all"] => PolicyKind::ALL.to_vec(),
                    Some(labels) => labels
                        .iter()
                        .map(|label| {
                            PolicyKind::parse(label)
                                .map_err(|e| err(section.line_of("policies"), e))
                        })
                        .collect::<Result<_, _>>()?,
                };
                let matrix_regions: Vec<RegionSpec> = section
                    .list("regions")
                    .ok_or_else(|| err(section.line, "matrix needs `regions`"))?
                    .iter()
                    .map(|name| resolve_regions(name, &region_sets, section.line_of("regions")))
                    .collect::<Result<_, _>>()?;
                let overheads: Vec<OverheadKind> = match section.list("overheads") {
                    None => vec![settings.overheads],
                    Some(labels) => labels
                        .iter()
                        .map(|label| {
                            OverheadKind::parse(label)
                                .map_err(|e| err(section.line_of("overheads"), e))
                        })
                        .collect::<Result<_, _>>()?,
                };
                let capacities: Vec<usize> = match section.list("capacities") {
                    None => vec![settings.capacity],
                    Some(raws) => raws
                        .iter()
                        .map(|raw| {
                            raw.parse::<usize>()
                                .ok()
                                .filter(|&c| c >= 1)
                                .ok_or_else(|| {
                                    err(
                                        section.line_of("capacities"),
                                        format!("invalid capacity `{raw}`"),
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?,
                };
                if matrix_workloads.is_empty() || policies.is_empty() || matrix_regions.is_empty() {
                    return Err(err(section.line, "matrix axes must be non-empty"));
                }
                let matrix = ScenarioMatrix {
                    workloads: matrix_workloads,
                    policies,
                    region_sets: matrix_regions,
                    overheads,
                    capacities,
                    forecaster: settings.forecaster,
                    slo_ms: settings.slo_ms,
                    start: settings.start(),
                    horizon: settings.horizon,
                };
                let expanded = matrix.expand();
                lines.extend(std::iter::repeat_n(section.line, expanded.len()));
                scenarios.extend(expanded);
            }
            _ => {}
        }
    }

    if scenarios.is_empty() {
        return Err(err(
            1,
            "file declares no `[scenario]` or `[matrix]` section",
        ));
    }
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for scenario in &scenarios {
        if seen.insert(scenario.name.as_str(), ()).is_some() {
            return Err(err(
                1,
                format!(
                    "duplicate scenario id `{}` (rename the section or matrix workloads)",
                    scenario.name
                ),
            ));
        }
    }
    Ok(ScenarioFile {
        scenarios,
        custom_regions,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_scenarios;
    use decarb_traces::builtin_dataset;

    const EXAMPLE: &str = "\
# A worked example exercising every section kind.
[defaults]
capacity = 6
horizon = 480
year = 2022
start_offset = 24

[workload nightly]
class = batch
per_origin = 4
spacing = 24
length = 6
slack = day

[workload web]
class = interactive
per_origin = 8
spacing = 12

[regions nordics]
codes = se, NO, FI

[scenario nightly-forecast-nordics]
workload = nightly
policy = forecast
regions = nordics

[matrix sweep]
workloads = nightly, web
policies = agnostic, spatiotemporal
regions = europe, nordics
overheads = zero, realistic
";

    #[test]
    fn example_file_parses_and_expands() {
        let scenarios = parse_scenario_file(EXAMPLE).unwrap();
        // 1 single + 2 workloads × 2 policies × 2 region sets × 2 overheads.
        assert_eq!(scenarios.len(), 1 + 16);
        let single = &scenarios[0];
        assert_eq!(single.name, "nightly-forecast-nordics");
        assert_eq!(single.policy, PolicyKind::ForecastDeferral);
        assert_eq!(single.capacity_per_region, 6);
        assert_eq!(single.horizon, 480);
        assert_eq!(single.start, year_start(2022).plus(24));
        assert_eq!(single.regions.codes(), vec!["SE", "NO", "FI"]);
        assert!(scenarios
            .iter()
            .any(|s| s.name == "web-spatiotemporal-nordics-realistic"));
        assert!(scenarios
            .iter()
            .any(|s| s.name == "nightly-agnostic-europe-zero"));
        // Matrix entries inherit the overridden defaults.
        assert!(scenarios[1..].iter().all(|s| s.horizon == 480));
    }

    #[test]
    fn parsed_scenarios_run_and_serialize() {
        // The round-trip: parse → run → JSON.
        let data = builtin_dataset();
        let scenarios = parse_scenario_file(EXAMPLE).unwrap();
        for s in &scenarios {
            s.validate_against(&data).unwrap();
        }
        let subset: Vec<Scenario> = scenarios
            .iter()
            .filter(|s| s.name.contains("nordics"))
            .take(3)
            .cloned()
            .collect();
        let reports = run_scenarios(&data, &subset);
        assert_eq!(reports.len(), subset.len());
        for report in &reports {
            assert!(report.completed > 0, "{}", report.name);
            assert!(report.total_emissions_g > 0.0);
            let json = report.to_json();
            assert_eq!(
                json.get("name"),
                Some(&decarb_json::Value::from(report.name.as_str()))
            );
        }
    }

    #[test]
    fn year_and_start_offset_inherit_independently() {
        // A section overriding only one of the year/start_offset pair
        // must inherit the other from [defaults].
        let text = "\
[defaults]
year = 2020
start_offset = 24

[workload w]
class = batch

[scenario offset-only]
workload = w
policy = agnostic
regions = europe
start_offset = 48

[scenario year-only]
workload = w
policy = agnostic
regions = europe
year = 2021
";
        let scenarios = parse_scenario_file(text).unwrap();
        assert_eq!(scenarios[0].start, year_start(2020).plus(48));
        assert_eq!(scenarios[1].start, year_start(2021).plus(24));
    }

    #[test]
    fn comments_blank_lines_and_inline_comments_are_ignored() {
        let text = "\
[workload w]  # trailing comment
class = batch # another

[scenario s]
workload = w
policy = deferral
regions = europe
";
        let scenarios = parse_scenario_file(text).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].policy, PolicyKind::PlannedDeferral);
    }

    #[test]
    fn malformed_sections_error_with_line_numbers() {
        for (text, line, needle) in [
            ("key = value\n", 1, "before any section"),
            ("[scenario\n", 1, "unterminated section header"),
            ("[defaults extra]\n", 1, "takes no name"),
            ("[workload]\n", 1, "needs a name"),
            ("[party time]\n", 1, "unknown section kind"),
            ("[workload w]\nclass batch\n", 2, "expected `key = value`"),
            (
                "[workload w]\nclass = batch\nclass = mixed\n",
                3,
                "duplicate key",
            ),
            ("[scenario s]\nworkload = w\n", 2, "unknown workload"),
            ("[regions r]\n", 1, "needs `codes`"),
            ("[regions europe]\ncodes = SE\n", 1, "shadows a built-in"),
            ("[defaults]\nyear = 1999\n", 2, "`year` must lie"),
            ("[defaults]\ncapacity = 0\n", 2, "`capacity` must be"),
        ] {
            let error = parse_scenario_file(text).unwrap_err();
            assert_eq!(error.line, line, "{text:?}: {error}");
            assert!(error.message.contains(needle), "{text:?}: {error}");
        }
    }

    #[test]
    fn forecaster_and_slo_keys_parse_inherit_and_validate() {
        let text = "\
[defaults]
forecaster = naive
slo_ms = 60

[workload w]
class = batch

[scenario inherit-defaults]
workload = w
policy = forecast
regions = europe

[scenario override-both]
workload = w
policy = spatiotemporal
regions = europe
forecaster = seasonal
slo_ms = 250

[matrix m]
workloads = w
policies = spatiotemporal
regions = us
slo_ms = 40
";
        let scenarios = parse_scenario_file(text).unwrap();
        assert_eq!(scenarios[0].forecaster, ForecasterKind::Naive);
        assert_eq!(scenarios[0].slo_ms, 60.0);
        assert_eq!(scenarios[1].forecaster, ForecasterKind::Seasonal);
        assert_eq!(scenarios[1].slo_ms, 250.0);
        // Matrix sections inherit the forecaster and override the SLO.
        assert_eq!(scenarios[2].forecaster, ForecasterKind::Naive);
        assert_eq!(scenarios[2].slo_ms, 40.0);
        // Unknown forecasters list the valid names; bad SLOs error with
        // their line.
        let bad_forecaster = "\
[workload w]
class = batch

[scenario s]
workload = w
policy = forecast
regions = europe
forecaster = psychic
";
        let error = parse_scenario_file(bad_forecaster).unwrap_err();
        assert_eq!(error.line, 8);
        assert!(error.message.contains("unknown forecaster `psychic`"));
        assert!(error.message.contains("naive"), "{error}");
        assert!(error.message.contains("seasonal"), "{error}");
        let bad_slo = "\
[defaults]
slo_ms = -5
";
        let error = parse_scenario_file(bad_slo).unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.message.contains("`slo_ms` must be positive"));
    }

    #[test]
    fn poisson_arrival_workloads_parse_and_run() {
        let text = "\
[workload bursty]
class = batch
per_origin = 6
arrival = poisson:0.1
length = 2
slack = day

[scenario bursty-agnostic]
workload = bursty
policy = agnostic
regions = europe
horizon = 480
";
        let data = builtin_dataset();
        let scenarios = parse_scenario_file(text).unwrap();
        assert_eq!(scenarios.len(), 1);
        let reports = run_scenarios(&data, &scenarios);
        assert_eq!(reports[0].jobs, 6 * 8);
        assert!(reports[0].completed > 0);
        // The recipe is part of the content address.
        let again = parse_scenario_file(text).unwrap();
        assert_eq!(scenarios[0].content_id(), again[0].content_id());
        let fixed =
            parse_scenario_file(&text.replace("arrival = poisson:0.1", "spacing = 24")).unwrap();
        assert_ne!(scenarios[0].content_id(), fixed[0].content_id());
    }

    #[test]
    fn unknown_policy_names_list_the_valid_set() {
        let text = "\
[workload w]
class = batch

[scenario s]
workload = w
policy = psychic
regions = europe
";
        let error = parse_scenario_file(text).unwrap_err();
        assert_eq!(error.line, 6);
        assert!(error.message.contains("unknown policy `psychic`"));
        assert!(error.message.contains("forecast"), "{error}");
        assert!(error.message.contains("spatiotemporal"), "{error}");
    }

    #[test]
    fn duplicate_scenario_ids_are_rejected() {
        let text = "\
[workload w]
class = batch

[scenario twin]
workload = w
policy = agnostic
regions = europe

[scenario twin]
workload = w
policy = deferral
regions = us
";
        let error = parse_scenario_file(text).unwrap_err();
        assert!(error.message.contains("duplicate scenario id `twin`"));
        // A matrix colliding with a single scenario is also caught.
        let matrix_clash = "\
[workload w]
class = batch

[scenario w-agnostic-europe]
workload = w
policy = agnostic
regions = europe

[matrix m]
workloads = w
policies = agnostic
regions = europe
";
        let error = parse_scenario_file(matrix_clash).unwrap_err();
        assert!(error
            .message
            .contains("duplicate scenario id `w-agnostic-europe`"));
    }

    #[test]
    fn empty_or_scenario_free_files_are_rejected() {
        assert!(parse_scenario_file("")
            .unwrap_err()
            .message
            .contains("no `[scenario]`"));
        let defs_only = "[workload w]\nclass = batch\n";
        assert!(parse_scenario_file(defs_only)
            .unwrap_err()
            .message
            .contains("no `[scenario]`"));
    }

    #[test]
    fn policies_all_expands_the_full_axis() {
        let text = "\
[workload w]
class = batch

[matrix m]
workloads = w
policies = all
regions = us
";
        let scenarios = parse_scenario_file(text).unwrap();
        assert_eq!(scenarios.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn custom_region_declarations_parse_and_run_end_to_end() {
        // A fully custom (non-catalog) region set: two hypothetical
        // grids declared inline, synthesized into the dataset, swept by
        // a matrix — no built-in zone involved anywhere.
        let text = "\
[region XX-HYDRO]
name = Hydrotopia
group = south-america
lat = -10.5
lon = -55.0
mean_ci = 45
daily_cv = 0.03
mix = hydro:0.8, wind:0.2

[region xx-coal]
name = Coalville
group = asia
lat = 30.0
lon = 110.0
mean_ci = 700
mix = coal:0.9, solar:0.1

[workload w]
class = batch
per_origin = 4
length = 4
slack = day

[regions synthetic]
codes = XX-HYDRO, XX-COAL

[matrix m]
workloads = w
policies = agnostic, greenest
regions = synthetic
horizon = 240
";
        let file = parse_scenario_file_full(text).unwrap();
        assert_eq!(file.scenarios.len(), 2);
        assert_eq!(file.custom_regions.len(), 2);
        assert_eq!(file.custom_regions[0].code, "XX-HYDRO");
        assert_eq!(file.custom_regions[1].code, "XX-COAL", "codes upper-cased");
        // Against the plain builtin dataset the zones are unknown…
        let data = builtin_dataset();
        let err = file.scenarios[0].validate_against(&data).unwrap_err();
        assert!(err.contains("XX-HYDRO"), "{err}");
        // …but extending the dataset with the declared regions runs the
        // sweep end-to-end.
        let mut extended = (*data).clone();
        extended.extend_synthesized(
            file.custom_regions.clone(),
            decarb_traces::SynthConfig::default(),
        );
        assert_eq!(extended.len(), data.len() + 2);
        let reports = run_scenarios(&extended, &file.scenarios);
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert_eq!(report.completed, report.jobs, "{}", report.name);
            assert!(report.total_emissions_g > 0.0);
        }
        // Routing away from Coalville toward Hydrotopia must pay off.
        let agnostic = reports.iter().find(|r| r.policy == "agnostic").unwrap();
        let greenest = reports.iter().find(|r| r.policy == "greenest").unwrap();
        assert!(
            greenest.average_ci < agnostic.average_ci,
            "greenest {} vs agnostic {}",
            greenest.average_ci,
            agnostic.average_ci
        );
        // The hypothetical grids' synthesized traces track their declared
        // calibration targets.
        let hydro = extended.series("XX-HYDRO").unwrap();
        let start = year_start(2022);
        let len = decarb_traces::time::hours_in_year(2022);
        let mean = hydro.window(start, len).unwrap().iter().sum::<f64>() / len as f64;
        assert!((mean - 45.0).abs() < 2.0, "synthesized mean {mean}");
    }

    #[test]
    fn duplicate_and_malformed_region_sections_error() {
        let dup = "\
[region XX]
[region xx]
";
        let error = parse_scenario_file_full(dup).unwrap_err();
        assert!(error.message.contains("duplicate region"), "{error}");
        let bad = "\
[region XX]
mix = plutonium:1
";
        let error = parse_scenario_file_full(bad).unwrap_err();
        assert!(error.message.contains("unknown energy source"), "{error}");
    }

    #[test]
    fn unknown_keys_are_rejected_per_section() {
        let text = "\
[defaults]
frobnicate = 1
";
        let error = parse_scenario_file(text).unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.message.contains("unknown key `frobnicate`"));
    }
}
