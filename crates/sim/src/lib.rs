//! `decarb-sim` — a discrete-event cloud simulator for carbon-aware
//! scheduling.
//!
//! The paper's analysis is clairvoyant and analytic; this crate provides
//! the *online* counterpart: a simulator in which jobs arrive over time,
//! datacenters have finite capacity, and pluggable policies decide where
//! and when work runs. It serves three purposes:
//!
//! 1. **Validation** — replaying a clairvoyant plan through the simulator
//!    reproduces the analytic emissions exactly (integration-tested);
//! 2. **Realism** — online policies (threshold suspend/resume, greenest
//!    and latency-SLO routers, forecast-driven deferral/suspend plans,
//!    combined spatiotemporal shifting) show how far practical schedulers
//!    fall short of the paper's upper bounds, and what suspend/resume and
//!    migration overheads cost;
//! 3. **Capacity effects** — queueing and blocking under finite capacity,
//!    which the analytic model only approximates.
//!
//! Time advances in one-hour steps (the resolution of carbon traces), with
//! an event calendar for arrivals and planned starts.

pub mod accounting;
pub mod cluster;
pub mod engine;
pub mod forecast_policy;
pub mod overheads;
pub mod planner_cache;
pub mod policy;
pub mod routing;
pub mod scenario;
pub mod scenario_check;
pub mod scenario_file;
pub mod snapshot;
pub mod spatiotemporal;
pub mod sweep;

pub use accounting::SimReport;
pub use cluster::{CloudView, Datacenter};
pub use engine::{SimConfig, Simulator, Stepping};
pub use forecast_policy::{ForecastDeferral, ForecastSuspend};
pub use overheads::OverheadModel;
pub use planner_cache::{CachedDeferral, PlannerCache};
pub use policy::{
    CarbonAgnostic, GreenestRouter, Placement, PlannedDeferral, Policy, ThresholdSuspend,
};
pub use routing::LatencyAwareRouter;
pub use scenario::{
    builtin_matrix, builtin_scenarios, find_scenario, run_scenarios, run_scenarios_with,
    ForecasterKind, OverheadKind, PolicyKind, RegionSet, RegionSpec, Scenario, ScenarioMatrix,
    ScenarioReport,
};
pub use scenario_check::{check_file, check_scenarios};
pub use scenario_file::{
    parse_scenario_file, parse_scenario_file_full, ScenarioFile, ScenarioFileError,
};
pub use snapshot::{PlaceDecision, PlaceError, PlaceRequest, Snapshot};
pub use spatiotemporal::SpatioTemporal;
pub use sweep::{merge_reports, MergeError, PlannedScenario, SweepError, SweepPlan};
