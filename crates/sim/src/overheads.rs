//! Suspend/resume and migration overhead models.
//!
//! The paper's bounds deliberately assume zero overhead for interrupting
//! and migrating jobs (§3.1.2: "our analysis ignores these migration
//! overheads in quantifying an upper bound"). The simulator makes the
//! assumption optional: every suspend, resume, and migration can draw
//! extra energy — checkpointing state to storage, restoring it, or copying
//! it across the WAN — which is charged at the carbon-intensity of the
//! hour and region where it happens.

/// Energy overheads charged by the simulator on state transitions.
///
/// The default is the paper's zero-overhead idealization; realistic values
/// follow checkpoint/restore measurements (roughly 10–60 s of full-power
/// I/O per 10 GB of state, i.e. a few hundredths of a kWh for the 1 kW job
/// model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Energy to checkpoint a job's state on suspension, kWh.
    pub suspend_kwh: f64,
    /// Energy to restore a job's state on resumption, kWh.
    pub resume_kwh: f64,
    /// Energy to move one GB of job state across regions, kWh (network
    /// plus both endpoints' I/O).
    pub migrate_kwh_per_gb: f64,
    /// State size of a migrating job, GB.
    pub state_gb: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::ZERO
    }
}

impl OverheadModel {
    /// The paper's idealization: all transitions are free.
    pub const ZERO: OverheadModel = OverheadModel {
        suspend_kwh: 0.0,
        resume_kwh: 0.0,
        migrate_kwh_per_gb: 0.0,
        state_gb: 0.0,
    };

    /// A realistic checkpoint/restore + WAN-copy cost point: 0.02 kWh per
    /// suspend or resume, 0.05 kWh per GB migrated, 50 GB of state.
    pub fn realistic() -> OverheadModel {
        OverheadModel {
            suspend_kwh: 0.02,
            resume_kwh: 0.02,
            migrate_kwh_per_gb: 0.05,
            state_gb: 50.0,
        }
    }

    /// Energy charged for one migration, kWh.
    pub fn migration_kwh(&self) -> f64 {
        self.migrate_kwh_per_gb * self.state_gb
    }

    /// Returns `true` when every overhead is zero (the ideal case).
    pub fn is_zero(&self) -> bool {
        self.suspend_kwh == 0.0 && self.resume_kwh == 0.0 && self.migration_kwh() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_idealization() {
        let m = OverheadModel::default();
        assert!(m.is_zero());
        assert_eq!(m.migration_kwh(), 0.0);
    }

    #[test]
    fn realistic_point_has_positive_costs() {
        let m = OverheadModel::realistic();
        assert!(!m.is_zero());
        assert!((m.migration_kwh() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_state_makes_migration_free_even_with_positive_rate() {
        let m = OverheadModel {
            migrate_kwh_per_gb: 1.0,
            state_gb: 0.0,
            ..OverheadModel::ZERO
        };
        assert_eq!(m.migration_kwh(), 0.0);
        assert!(m.is_zero());
    }
}
