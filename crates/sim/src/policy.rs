//! Pluggable scheduling policies.

use decarb_core::temporal::TemporalPlanner;
use decarb_traces::{Hour, RegionId};
use decarb_workloads::Job;

use crate::cluster::CloudView;

/// Where and when a job should start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Interned id of the destination zone.
    pub region: RegionId,
    /// Hour the job should (first) start running.
    pub start: Hour,
}

/// A scheduling policy driven by the simulator.
pub trait Policy {
    /// Decides where and when an arriving job should run.
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement;

    /// Decides whether an admitted interruptible job should execute during
    /// the current hour (`true`) or stay suspended (`false`).
    ///
    /// `remaining_slots` is the outstanding work and `deadline` the latest
    /// hour by which the job must be *running continuously* to still
    /// finish within its slack. The default runs unconditionally.
    fn should_run(
        &mut self,
        _job: &Job,
        _remaining_slots: usize,
        _deadline: Hour,
        _view: &CloudView<'_>,
    ) -> bool {
        true
    }
}

/// The carbon-agnostic baseline: run immediately at the origin.
#[derive(Debug, Default, Clone)]
pub struct CarbonAgnostic;

impl Policy for CarbonAgnostic {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        Placement {
            region: job.origin,
            start: view.now,
        }
    }
}

/// Clairvoyant deferral: plan the cheapest contiguous window at the origin
/// using the full future trace (the paper's deferral upper bound).
pub struct PlannedDeferral;

impl Policy for PlannedDeferral {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        // No trace for the origin means nothing to plan against; run
        // the job immediately rather than panicking the worker.
        let Some(series) = view.traces.try_series_by_id(job.origin) else {
            return Placement {
                region: job.origin,
                start: view.now,
            };
        };
        let resolution = view.traces.resolution();
        let planner = TemporalPlanner::with_resolution(series, resolution);
        let placement = planner.best_deferred(
            view.now,
            job.length_slots_at(resolution),
            job.slack_slots_at(resolution),
        );
        Placement {
            region: job.origin,
            start: placement.start,
        }
    }
}

/// Online threshold suspend/resume: run whenever the origin's current CI
/// is below a fraction of its trailing mean, and always run when the
/// deadline forces it. Non-clairvoyant — it only looks backwards.
pub struct ThresholdSuspend {
    /// Run when `CI(now) ≤ threshold × trailing mean`.
    pub threshold: f64,
    /// Trailing window length in hours.
    pub window: usize,
}

impl Default for ThresholdSuspend {
    fn default() -> Self {
        Self {
            threshold: 0.95,
            window: 24,
        }
    }
}

impl Policy for ThresholdSuspend {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        Placement {
            region: job.origin,
            start: view.now,
        }
    }

    fn should_run(
        &mut self,
        job: &Job,
        remaining_slots: usize,
        deadline: Hour,
        view: &CloudView<'_>,
    ) -> bool {
        // Forced once the remaining window equals the remaining work.
        if view.now.plus(remaining_slots) >= deadline {
            return true;
        }
        let Some(series) = view.traces.try_series_by_id(job.origin) else {
            return true;
        };
        let Some(now_ci) = series.at(view.now) else {
            return true;
        };
        // Trailing mean over up to `window` past hours (scaled to the
        // dataset's slot axis, so a 24 h window covers 288 slots at
        // 5-minute resolution).
        let window_slots = self.window * view.traces.resolution().slots_per_hour();
        let lookback = (view.now.0.saturating_sub(series.start().0) as usize).min(window_slots);
        if lookback == 0 {
            return true;
        }
        let from = Hour(view.now.0 - lookback as u32);
        let Ok(past) = series.window(from, lookback) else {
            return true;
        };
        let mean = past.iter().sum::<f64>() / lookback as f64;
        now_ci <= self.threshold * mean
    }
}

/// Greenest-region router: at arrival, place the job in the feasible
/// region with the lowest *current* CI that has free capacity, falling
/// back to the origin.
#[derive(Debug, Default, Clone)]
pub struct GreenestRouter;

impl Policy for GreenestRouter {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        let region = if job.migratable {
            view.greenest_with_capacity().unwrap_or(job.origin)
        } else {
            job.origin
        };
        Placement {
            region,
            start: view.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Datacenter;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_traces::TraceSet;
    use decarb_workloads::Slack;

    struct Deployment {
        datacenters: Vec<Datacenter>,
        slot_of: Vec<Option<u16>>,
    }

    fn deploy(traces: &TraceSet, codes: &[&str], capacity: usize) -> Deployment {
        let mut ids: Vec<decarb_traces::RegionId> =
            codes.iter().map(|c| traces.id_of(c).unwrap()).collect();
        ids.sort_by(|a, b| traces.code(*a).cmp(traces.code(*b)));
        let datacenters: Vec<Datacenter> = ids
            .iter()
            .map(|&id| Datacenter::new(id, capacity))
            .collect();
        let mut slot_of = vec![None; traces.len()];
        for (i, dc) in datacenters.iter().enumerate() {
            slot_of[dc.region.index()] = Some(i as u16);
        }
        Deployment {
            datacenters,
            slot_of,
        }
    }

    fn view_with<'a>(deployment: &'a Deployment, traces: &'a TraceSet, now: Hour) -> CloudView<'a> {
        CloudView {
            datacenters: &deployment.datacenters,
            slot_of: &deployment.slot_of,
            traces,
            now,
        }
    }

    #[test]
    fn agnostic_runs_immediately_at_origin() {
        let traces = builtin_dataset();
        let empty = deploy(&traces, &[], 1);
        let now = year_start(2022);
        let view = view_with(&empty, &traces, now);
        let de = traces.id_of("DE").unwrap();
        let job = Job::batch(1, de, now, 4.0, Slack::Day);
        let p = CarbonAgnostic.place(&job, &view);
        assert_eq!(p.region, de);
        assert_eq!(p.start, now);
    }

    #[test]
    fn planned_deferral_matches_planner() {
        let traces = builtin_dataset();
        let empty = deploy(&traces, &[], 1);
        let now = year_start(2022);
        let view = view_with(&empty, &traces, now);
        let ca = traces.id_of("US-CA").unwrap();
        let job = Job::batch(1, ca, now, 6.0, Slack::Day);
        let p = PlannedDeferral.place(&job, &view);
        let planner = TemporalPlanner::new(traces.series("US-CA").unwrap());
        let expected = planner.best_deferred(now, 6, 24);
        assert_eq!(p.start, expected.start);
        assert!(p.start >= now);
        assert!(p.start.0 <= now.0 + 24);
    }

    #[test]
    fn router_prefers_greenest_free_region() {
        let traces = builtin_dataset();
        let deployment = deploy(&traces, &["SE", "PL"], 1);
        let now = year_start(2022);
        let view = view_with(&deployment, &traces, now);
        let pl = traces.id_of("PL").unwrap();
        let se = traces.id_of("SE").unwrap();
        let job = Job::batch(1, pl, now, 1.0, Slack::None);
        assert_eq!(GreenestRouter.place(&job, &view).region, se);
        // Pinned jobs stay home.
        let pinned = Job::interactive(2, pl, now);
        assert_eq!(GreenestRouter.place(&pinned, &view).region, pl);
    }

    #[test]
    fn threshold_runs_when_forced_by_deadline() {
        let traces = builtin_dataset();
        let empty = deploy(&traces, &[], 1);
        let now = year_start(2022);
        let view = view_with(&empty, &traces, now);
        let de = traces.id_of("DE").unwrap();
        let job = Job::batch(1, de, now, 4.0, Slack::Day).with_interruptible();
        let mut policy = ThresholdSuspend {
            threshold: 0.0, // Never voluntarily run.
            window: 24,
        };
        // Deadline equals now + remaining: must run.
        assert!(policy.should_run(&job, 4, now.plus(4), &view));
        // Plenty of slack left: suspended under an impossible threshold.
        assert!(!policy.should_run(&job, 4, now.plus(100), &view));
    }

    #[test]
    fn threshold_runs_in_cheap_hours() {
        let traces = builtin_dataset();
        let empty = deploy(&traces, &[], 1);
        // Find a noon hour in California (solar dip → below trailing mean).
        let series = traces.series("US-CA").unwrap();
        let ca = traces.id_of("US-CA").unwrap();
        let start = year_start(2022);
        let mut policy = ThresholdSuspend::default();
        let job = Job::batch(1, ca, start, 4.0, Slack::Week).with_interruptible();
        let mut ran_some = false;
        for offset in 48..120usize {
            let now = start.plus(offset);
            let view = view_with(&empty, &traces, now);
            if policy.should_run(&job, 4, now.plus(1000), &view) {
                ran_some = true;
                // Running hours must be no dirtier than the trailing mean.
                let window = series.window(Hour(now.0 - 24), 24).unwrap();
                let mean = window.iter().sum::<f64>() / 24.0;
                assert!(series.get(now) <= 0.95 * mean + 1e-9);
            }
        }
        assert!(ran_some, "policy should find at least one cheap hour");
    }
}
