//! Datacenter and cloud state.

use decarb_traces::{Hour, RegionId, Resolution, TraceSet};
use decarb_workloads::Job;

/// A running (or suspended) job instance inside a datacenter.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The job being executed.
    pub job: Job,
    /// Slots of work still to perform (hours on an hourly axis).
    pub remaining_slots: usize,
    /// Emissions accumulated so far (g·CO2eq). The hourly engine
    /// accrues here per slot; sub-hourly runs accumulate raw CI into
    /// [`RunningJob::ci_sum`] instead and convert once at fold time.
    pub emitted_g: f64,
    /// Sum of the carbon-intensity samples over every executed slot
    /// (sub-hourly accounting; see `RunningJob::fold_emissions`-style
    /// conversion in the engine). Zero on the hourly path.
    pub ci_sum: f64,
    /// Whether the job is currently suspended.
    pub suspended: bool,
    /// Hour of the job's first executed slot, once it has run.
    pub started: Option<Hour>,
    /// Cached policy verdict for interruptible jobs: sub-hourly runs
    /// consult `Policy::should_run` only at hour boundaries (the
    /// policies' decision cadence) and replay this verdict on the
    /// slots in between. Unused (always `true`) on the hourly path.
    pub cached_decision: bool,
    /// `true` until the policy has been consulted once: a job admitted
    /// mid-hour gets its verdict at admission rather than waiting for
    /// the next hour boundary.
    pub decision_pending: bool,
}

impl RunningJob {
    /// Creates a freshly admitted (not yet running) instance on the
    /// hourly axis.
    pub fn admitted(job: Job) -> Self {
        let remaining = job.length_slots();
        Self {
            job,
            remaining_slots: remaining,
            emitted_g: 0.0,
            ci_sum: 0.0,
            suspended: true,
            started: None,
            cached_decision: true,
            decision_pending: true,
        }
    }

    /// Creates a freshly admitted instance on a trace axis sampled at
    /// `resolution`: the remaining work is the job's length in *slots*
    /// of that axis.
    pub fn admitted_at(job: Job, resolution: Resolution) -> Self {
        let remaining = job.length_slots_at(resolution);
        Self {
            remaining_slots: remaining,
            ..Self::admitted(job)
        }
    }

    /// Returns `true` once the job has executed at least one slot.
    pub fn has_run(&self) -> bool {
        self.started.is_some()
    }
}

/// One region's datacenter with a fixed capacity in job slots.
#[derive(Debug, Clone)]
pub struct Datacenter {
    /// Interned id of the region this datacenter draws power from.
    pub region: RegionId,
    /// Maximum number of concurrently *running* (non-suspended) jobs.
    pub capacity: usize,
    /// Jobs admitted to this datacenter (running or suspended).
    pub jobs: Vec<RunningJob>,
}

impl Datacenter {
    /// Creates a datacenter with `capacity` slots.
    pub fn new(region: RegionId, capacity: usize) -> Self {
        Self {
            region,
            capacity,
            jobs: Vec::new(),
        }
    }

    /// Returns the number of actively running jobs.
    pub fn running(&self) -> usize {
        self.jobs.iter().filter(|j| !j.suspended).count()
    }

    /// Returns the number of free capacity slots.
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.running())
    }
}

/// A read-only view of the cloud handed to policies.
///
/// Datacenters live in a dense slice ordered lexicographically by zone
/// code (so iteration order — and therefore accounting order — is
/// deterministic whatever order the region set was declared in), with
/// an id-indexed side table for O(1) region→datacenter resolution: no
/// string hashing anywhere on the policy hot path.
pub struct CloudView<'a> {
    /// All datacenters, ordered lexicographically by zone code.
    pub datacenters: &'a [Datacenter],
    /// [`RegionId::index`]-indexed map to positions in `datacenters`
    /// (`None` for ids without a deployed datacenter).
    pub slot_of: &'a [Option<u16>],
    /// The carbon traces.
    pub traces: &'a TraceSet,
    /// The current simulation hour.
    pub now: Hour,
}

/// Resolves a region id against an id-indexed slot table — the one
/// deployed-datacenter invariant shared by the policy view and the
/// engine's placement validation, admission, and inspection paths.
#[inline]
pub(crate) fn slot_in(slot_of: &[Option<u16>], id: RegionId) -> Option<usize> {
    slot_of
        .get(id.index())
        .copied()
        .flatten()
        .map(|slot| slot as usize)
}

impl CloudView<'_> {
    /// Returns the datacenter deployed in `id`'s region, if any.
    #[inline]
    pub fn datacenter(&self, id: RegionId) -> Option<&Datacenter> {
        Some(&self.datacenters[slot_in(self.slot_of, id)?])
    }

    /// Returns `true` if a datacenter is deployed in `id`'s region.
    #[inline]
    pub fn is_deployed(&self, id: RegionId) -> bool {
        slot_in(self.slot_of, id).is_some()
    }

    /// Returns the current carbon-intensity of a zone.
    #[inline]
    pub fn current_ci(&self, id: RegionId) -> Option<f64> {
        self.traces.try_series_by_id(id)?.at(self.now)
    }

    /// Returns the zone with the lowest current CI among those with free
    /// capacity, if any. Ties break to the lexicographically first zone
    /// code for determinism.
    pub fn greenest_with_capacity(&self) -> Option<RegionId> {
        self.datacenters
            .iter()
            .filter(|dc| dc.free_slots() > 0)
            .filter_map(|dc| self.current_ci(dc.region).map(|ci| (dc.region, ci)))
            // `datacenters` is already in code order, so a strict `<`
            // keeps the lexicographically first zone on ties.
            .fold(None, |best: Option<(RegionId, f64)>, (id, ci)| match best {
                Some((_, best_ci)) if best_ci <= ci => best,
                _ => Some((id, ci)),
            })
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    #[test]
    fn capacity_accounting() {
        let data = builtin_dataset();
        let se = data.id_of("SE").unwrap();
        let mut dc = Datacenter::new(se, 2);
        assert_eq!(dc.free_slots(), 2);
        let mut active = RunningJob::admitted(Job::batch(1, se, Hour(0), 4.0, Slack::None));
        active.suspended = false;
        dc.jobs.push(active);
        dc.jobs.push(RunningJob::admitted(Job::batch(
            2,
            se,
            Hour(0),
            4.0,
            Slack::None,
        )));
        assert_eq!(dc.running(), 1);
        assert_eq!(dc.free_slots(), 1);
    }

    #[test]
    fn admitted_jobs_have_not_run() {
        let rj = RunningJob::admitted(Job::batch(1, RegionId(0), Hour(0), 3.0, Slack::None));
        assert!(rj.suspended);
        assert!(!rj.has_run());
        assert_eq!(rj.remaining_slots, 3);
        assert_eq!(rj.emitted_g, 0.0);
    }

    #[test]
    fn view_finds_greenest_free() {
        let traces = builtin_dataset();
        let mut ids: Vec<RegionId> = ["SE", "PL", "IN-WE"]
            .iter()
            .map(|c| traces.id_of(c).unwrap())
            .collect();
        ids.sort_by(|a, b| traces.code(*a).cmp(traces.code(*b)));
        let dcs: Vec<Datacenter> = ids.iter().map(|&id| Datacenter::new(id, 1)).collect();
        let mut slot_of = vec![None; traces.len()];
        for (i, dc) in dcs.iter().enumerate() {
            slot_of[dc.region.index()] = Some(i as u16);
        }
        let view = CloudView {
            datacenters: &dcs,
            slot_of: &slot_of,
            traces: &traces,
            now: year_start(2022),
        };
        let se = traces.id_of("SE").unwrap();
        let pl = traces.id_of("PL").unwrap();
        assert_eq!(view.greenest_with_capacity(), Some(se));
        assert!(view.current_ci(se).unwrap() < view.current_ci(pl).unwrap());
        assert!(view.datacenter(se).is_some());
        assert!(view.is_deployed(pl));
        let de = traces.id_of("DE").unwrap();
        assert!(view.datacenter(de).is_none());
        assert!(!view.is_deployed(de));
        assert!(view.current_ci(RegionId(9999)).is_none());
    }
}
