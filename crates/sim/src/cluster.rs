//! Datacenter and cloud state.

use std::collections::HashMap;

use decarb_traces::{Hour, Region, TraceSet};
use decarb_workloads::Job;

/// A running (or suspended) job instance inside a datacenter.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The job being executed.
    pub job: Job,
    /// Hours of work still to perform.
    pub remaining_slots: usize,
    /// Emissions accumulated so far (g·CO2eq).
    pub emitted_g: f64,
    /// Whether the job is currently suspended.
    pub suspended: bool,
    /// Hour of the job's first executed slot, once it has run.
    pub started: Option<Hour>,
}

impl RunningJob {
    /// Creates a freshly admitted (not yet running) instance.
    pub fn admitted(job: Job) -> Self {
        let remaining = job.length_slots();
        Self {
            job,
            remaining_slots: remaining,
            emitted_g: 0.0,
            suspended: true,
            started: None,
        }
    }

    /// Returns `true` once the job has executed at least one slot.
    pub fn has_run(&self) -> bool {
        self.started.is_some()
    }
}

/// One region's datacenter with a fixed capacity in job slots.
#[derive(Debug, Clone)]
pub struct Datacenter {
    /// The region this datacenter draws power from.
    pub region: &'static Region,
    /// Maximum number of concurrently *running* (non-suspended) jobs.
    pub capacity: usize,
    /// Jobs admitted to this datacenter (running or suspended).
    pub jobs: Vec<RunningJob>,
}

impl Datacenter {
    /// Creates a datacenter with `capacity` slots.
    pub fn new(region: &'static Region, capacity: usize) -> Self {
        Self {
            region,
            capacity,
            jobs: Vec::new(),
        }
    }

    /// Returns the number of actively running jobs.
    pub fn running(&self) -> usize {
        self.jobs.iter().filter(|j| !j.suspended).count()
    }

    /// Returns the number of free capacity slots.
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.running())
    }
}

/// A read-only view of the cloud handed to policies.
pub struct CloudView<'a> {
    /// All datacenters keyed by zone code.
    pub datacenters: &'a HashMap<&'static str, Datacenter>,
    /// The carbon traces.
    pub traces: &'a TraceSet,
    /// The current simulation hour.
    pub now: Hour,
}

impl CloudView<'_> {
    /// Returns the current carbon-intensity of a zone.
    pub fn current_ci(&self, code: &str) -> Option<f64> {
        self.traces.series(code).ok()?.at(self.now)
    }

    /// Returns the zone with the lowest current CI among those with free
    /// capacity, if any.
    pub fn greenest_with_capacity(&self) -> Option<&'static str> {
        self.datacenters
            .values()
            .filter(|dc| dc.free_slots() > 0)
            .filter_map(|dc| {
                self.current_ci(dc.region.code)
                    .map(|ci| (dc.region.code, ci))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(b.0)))
            .map(|(code, _)| code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;
    use decarb_traces::catalog::region;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    #[test]
    fn capacity_accounting() {
        let mut dc = Datacenter::new(region("SE").unwrap(), 2);
        assert_eq!(dc.free_slots(), 2);
        let mut active = RunningJob::admitted(Job::batch(1, "SE", Hour(0), 4.0, Slack::None));
        active.suspended = false;
        dc.jobs.push(active);
        dc.jobs.push(RunningJob::admitted(Job::batch(
            2,
            "SE",
            Hour(0),
            4.0,
            Slack::None,
        )));
        assert_eq!(dc.running(), 1);
        assert_eq!(dc.free_slots(), 1);
    }

    #[test]
    fn admitted_jobs_have_not_run() {
        let rj = RunningJob::admitted(Job::batch(1, "SE", Hour(0), 3.0, Slack::None));
        assert!(rj.suspended);
        assert!(!rj.has_run());
        assert_eq!(rj.remaining_slots, 3);
        assert_eq!(rj.emitted_g, 0.0);
    }

    #[test]
    fn view_finds_greenest_free() {
        let traces = builtin_dataset();
        let mut dcs = HashMap::new();
        for code in ["SE", "PL", "IN-WE"] {
            dcs.insert(code, Datacenter::new(region(code).unwrap(), 1));
        }
        let view = CloudView {
            datacenters: &dcs,
            traces: &traces,
            now: year_start(2022),
        };
        assert_eq!(view.greenest_with_capacity(), Some("SE"));
        assert!(view.current_ci("SE").unwrap() < view.current_ci("PL").unwrap());
        assert!(view.current_ci("NOPE").is_none());
    }
}
