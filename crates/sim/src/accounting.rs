//! Carbon and energy accounting for simulation runs.

use std::collections::HashMap;

use decarb_traces::{Hour, RegionId, Resolution};
use decarb_workloads::Job;

/// A job that finished during the simulation.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// The job that ran.
    pub job: Job,
    /// Interned id of the zone it executed in.
    pub region: RegionId,
    /// Hour of its first executed slot.
    pub started: Hour,
    /// Hour in which its last slot executed.
    pub finished: Hour,
    /// Total emissions in g·CO2eq.
    pub emitted_g: f64,
    /// Whether the job finished after its slack deadline.
    pub missed_deadline: bool,
}

impl CompletedJob {
    /// Slots of the trace axis the job waited between arrival and first
    /// execution (hours on hourly data).
    pub fn wait_hours(&self) -> usize {
        (self.started.0.saturating_sub(self.job.arrival.0)) as usize
    }

    /// The job's slowdown: elapsed residence time over its pure execution
    /// time (1.0 means it ran immediately and uninterrupted). Assumes the
    /// hourly axis; use [`CompletedJob::slowdown_at`] on sub-hourly runs.
    pub fn slowdown(&self) -> f64 {
        self.slowdown_at(Resolution::HOURLY)
    }

    /// [`CompletedJob::slowdown`] on the axis the run stepped on:
    /// elapsed and execution time are both counted in `resolution`
    /// slots, so the ratio is axis-independent.
    pub fn slowdown_at(&self, resolution: Resolution) -> f64 {
        let elapsed = (self.finished.0 - self.job.arrival.0 + 1) as f64;
        elapsed / self.job.length_slots_at(resolution) as f64
    }
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Jobs that completed, in completion order.
    pub completed: Vec<CompletedJob>,
    /// Jobs still unfinished when the horizon ended.
    pub unfinished: usize,
    /// Job-hours in which an admitted, non-suspended job could not
    /// execute because its region's trace had no sample for the hour
    /// (trace coverage ended before the simulated horizon). Non-zero
    /// values mean the horizon outruns the data and completion counts
    /// understate the workload.
    pub stalled_hours: usize,
    /// Total emissions across completed and partial work (g·CO2eq).
    pub total_emissions_g: f64,
    /// Total energy delivered in kWh (1 kW × executed hours, scaled for
    /// fractional jobs).
    pub total_energy_kwh: f64,
    /// Emissions per zone (g·CO2eq), keyed by interned id.
    pub per_region_g: HashMap<RegionId, f64>,
    /// Suspend transitions taken (running → suspended with work left).
    pub suspends: usize,
    /// Resume transitions taken (suspended → running after having run).
    pub resumes: usize,
    /// Cross-region migrations at admission.
    pub migrations: usize,
    /// Extra energy drawn by suspend/resume/migration overheads, kWh
    /// (included in `total_energy_kwh`).
    pub overhead_kwh: f64,
    /// Emissions of that overhead energy, g·CO2eq (included in
    /// `total_emissions_g`).
    pub overhead_g: f64,
    /// Sample resolution of the axis the run stepped on (hourly unless
    /// the dataset was sub-hourly); `started`/`finished`/waits are slot
    /// indices and counts on this axis.
    pub resolution: Resolution,
}

impl SimReport {
    /// Returns the number of completed jobs.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Returns the number of completed jobs that missed their deadline.
    pub fn missed_deadlines(&self) -> usize {
        self.completed.iter().filter(|c| c.missed_deadline).count()
    }

    /// Returns the average carbon-intensity of delivered energy
    /// (g·CO2eq/kWh), the comparable figure to trace means.
    pub fn average_ci(&self) -> f64 {
        if self.total_energy_kwh <= 0.0 {
            0.0
        } else {
            self.total_emissions_g / self.total_energy_kwh
        }
    }

    /// Returns emissions of one completed job by id, if present.
    pub fn emissions_of(&self, job_id: u64) -> Option<f64> {
        self.completed
            .iter()
            .find(|c| c.job.id == job_id)
            .map(|c| c.emitted_g)
    }

    /// Mean wait (arrival → first run) over completed jobs, in hours
    /// whatever the run's resolution.
    pub fn mean_wait_hours(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let sph = self.resolution.slots_per_hour() as f64;
        self.completed
            .iter()
            .map(|c| c.wait_hours() as f64 / sph)
            .sum::<f64>()
            / self.completed.len() as f64
    }

    /// Mean slowdown over completed jobs (1.0 = no delay, no interruption),
    /// computed on the run's own axis so it is resolution-independent.
    pub fn mean_slowdown(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(|c| c.slowdown_at(self.resolution))
            .sum::<f64>()
            / self.completed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_workloads::Slack;

    #[test]
    fn report_aggregates() {
        let mut report = SimReport::default();
        report.completed.push(CompletedJob {
            job: Job::batch(1, RegionId(0), Hour(0), 2.0, Slack::None),
            region: RegionId(0),
            started: Hour(0),
            finished: Hour(1),
            emitted_g: 32.0,
            missed_deadline: false,
        });
        report.completed.push(CompletedJob {
            job: Job::batch(2, RegionId(1), Hour(0), 1.0, Slack::None),
            region: RegionId(1),
            started: Hour(0),
            finished: Hour(0),
            emitted_g: 650.0,
            missed_deadline: true,
        });
        report.total_emissions_g = 682.0;
        report.total_energy_kwh = 3.0;
        assert_eq!(report.completed_count(), 2);
        assert_eq!(report.missed_deadlines(), 1);
        assert!((report.average_ci() - 682.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.emissions_of(1), Some(32.0));
        assert_eq!(report.emissions_of(99), None);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let report = SimReport::default();
        assert_eq!(report.average_ci(), 0.0);
        assert_eq!(report.completed_count(), 0);
        assert_eq!(report.missed_deadlines(), 0);
        assert_eq!(report.mean_wait_hours(), 0.0);
        assert_eq!(report.mean_slowdown(), 0.0);
        assert_eq!(report.suspends, 0);
        assert_eq!(report.overhead_g, 0.0);
    }

    #[test]
    fn wait_and_slowdown_metrics() {
        // A 2-hour job arriving at hour 0, started at hour 3, finished at
        // hour 6 (one interruption in between): wait 3 h, slowdown 3.5.
        let c = CompletedJob {
            job: Job::batch(1, RegionId(0), Hour(0), 2.0, Slack::Day),
            region: RegionId(0),
            started: Hour(3),
            finished: Hour(6),
            emitted_g: 10.0,
            missed_deadline: false,
        };
        assert_eq!(c.wait_hours(), 3);
        assert!((c.slowdown() - 3.5).abs() < 1e-12);
        let mut report = SimReport::default();
        report.completed.push(c);
        assert!((report.mean_wait_hours() - 3.0).abs() < 1e-12);
        assert!((report.mean_slowdown() - 3.5).abs() < 1e-12);
    }
}
