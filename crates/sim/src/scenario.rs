//! The scenario-matrix engine: declarative simulation configurations,
//! cartesian expansion, and parallel execution.
//!
//! The paper's central claim — shifting savings are small and
//! workload-dependent — only generalizes across *many* workload ×
//! policy × geography combinations. A [`Scenario`] names one such
//! combination declaratively (workload spec, policy, region set,
//! overheads, capacity, horizon); a [`ScenarioMatrix`] expands the
//! cartesian product into named scenarios; [`run_scenarios`] fans them
//! out across threads with `decarb_par` against one shared dataset; and
//! each run condenses into a [`ScenarioReport`] that serializes with
//! `decarb_json` for machine consumers (`decarb-cli scenario run all
//! --json`, CI smoke checks).

use std::time::{Duration, Instant};

use decarb_json::Value;
use decarb_par::par_map;
use decarb_traces::time::year_start;
use decarb_traces::{Hour, Region, TraceSet};
use decarb_workloads::{Slack, WorkloadSpec};

use crate::accounting::SimReport;
use crate::engine::{SimConfig, Simulator};
use crate::overheads::OverheadModel;
use crate::policy::{CarbonAgnostic, GreenestRouter, PlannedDeferral, ThresholdSuspend};

/// A named, fixed set of regions scenarios deploy datacenters in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionSet {
    /// Eight European zones spanning the continent's CI extremes.
    Europe,
    /// Six United States zones with hyperscale presence.
    UnitedStates,
    /// Ten zones across five continents.
    Global,
}

impl RegionSet {
    /// All built-in region sets, in display order.
    pub const ALL: [RegionSet; 3] = [
        RegionSet::Europe,
        RegionSet::UnitedStates,
        RegionSet::Global,
    ];

    /// Returns the set's short label (used in scenario names).
    pub fn label(self) -> &'static str {
        match self {
            RegionSet::Europe => "europe",
            RegionSet::UnitedStates => "us",
            RegionSet::Global => "global",
        }
    }

    /// Returns the zone codes in the set.
    pub fn codes(self) -> &'static [&'static str] {
        match self {
            RegionSet::Europe => &["SE", "DE", "FR", "GB", "PL", "ES", "NO", "FI"],
            RegionSet::UnitedStates => &["US-CA", "US-TX", "US-NY", "US-WA", "US-VA", "US-OR"],
            RegionSet::Global => &[
                "SE", "DE", "GB", "US-CA", "US-TX", "IN-WE", "JP-TK", "AU-NSW", "BR-S", "ZA",
            ],
        }
    }

    /// Resolves the set against a dataset's catalog.
    ///
    /// # Panics
    ///
    /// Panics if the dataset lacks one of the set's zones (the built-in
    /// dataset covers all of them).
    pub fn resolve(self, data: &TraceSet) -> Vec<&'static Region> {
        self.codes()
            .iter()
            .map(|code| data.region(code).expect("built-in region set resolves"))
            .collect()
    }
}

/// Which scheduling policy a scenario drives the simulator with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Run immediately at the origin (the baseline).
    CarbonAgnostic,
    /// Clairvoyant deferral inside the origin region.
    PlannedDeferral,
    /// Online threshold suspend/resume at the origin.
    ThresholdSuspend,
    /// Route to the greenest region with free capacity at arrival.
    GreenestRouter,
}

impl PolicyKind {
    /// All built-in policies, baseline first.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::CarbonAgnostic,
        PolicyKind::PlannedDeferral,
        PolicyKind::ThresholdSuspend,
        PolicyKind::GreenestRouter,
    ];

    /// Returns the policy's short label (used in scenario names).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::CarbonAgnostic => "agnostic",
            PolicyKind::PlannedDeferral => "deferral",
            PolicyKind::ThresholdSuspend => "threshold",
            PolicyKind::GreenestRouter => "greenest",
        }
    }

    /// Returns `true` for the carbon-agnostic baseline.
    pub fn is_baseline(self) -> bool {
        matches!(self, PolicyKind::CarbonAgnostic)
    }

    /// Drives one simulation with the concrete policy.
    fn execute(self, sim: &mut Simulator<'_>, jobs: &[decarb_workloads::Job]) -> SimReport {
        match self {
            PolicyKind::CarbonAgnostic => sim.run(&mut CarbonAgnostic, jobs),
            PolicyKind::PlannedDeferral => sim.run(&mut PlannedDeferral, jobs),
            PolicyKind::ThresholdSuspend => sim.run(&mut ThresholdSuspend::default(), jobs),
            PolicyKind::GreenestRouter => sim.run(&mut GreenestRouter, jobs),
        }
    }
}

/// One fully specified simulation configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name, `{workload}-{policy}-{regions}` for built-ins.
    pub name: String,
    /// The workload recipe (materialized against the region set).
    pub workload: WorkloadSpec,
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// The deployed region set (every region is also a job origin).
    pub regions: RegionSet,
    /// Transition-energy overheads.
    pub overheads: OverheadModel,
    /// Concurrent running-job capacity per datacenter.
    pub capacity_per_region: usize,
    /// First simulated hour.
    pub start: Hour,
    /// Simulated hours.
    pub horizon: usize,
}

impl Scenario {
    /// One-line human description for `scenario list`.
    pub fn describe(&self) -> String {
        format!(
            "{} workload, {} policy, {} regions ({}), {} h horizon",
            self.workload.label(),
            self.policy.label(),
            self.regions.codes().len(),
            self.regions.label(),
            self.horizon,
        )
    }

    /// Runs the scenario against `data` and condenses the outcome.
    pub fn run(&self, data: &TraceSet) -> ScenarioReport {
        let regions = self.regions.resolve(data);
        let origins: Vec<&'static str> = regions.iter().map(|r| r.code).collect();
        let jobs = self.workload.materialize(&origins, self.start);
        let config = SimConfig::new(self.start, self.horizon, self.capacity_per_region)
            .with_overheads(self.overheads);
        let mut sim = Simulator::new(data, &regions, config);
        let started = Instant::now();
        let report = self.policy.execute(&mut sim, &jobs);
        ScenarioReport::condense(self, jobs.len(), &report, started.elapsed())
    }
}

/// The condensed outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub name: String,
    /// Workload class label.
    pub workload: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Region-set label.
    pub regions: &'static str,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs completed within the horizon.
    pub completed: usize,
    /// Jobs unfinished at the horizon end.
    pub unfinished: usize,
    /// Completed jobs that finished past their slack deadline.
    pub missed_deadlines: usize,
    /// Job-hours stalled on missing trace coverage (see
    /// [`SimReport::stalled_hours`]).
    pub stalled_hours: usize,
    /// Cross-region migrations.
    pub migrations: usize,
    /// Suspend + resume transitions.
    pub transitions: usize,
    /// Energy delivered, kWh.
    pub total_energy_kwh: f64,
    /// Emissions, g·CO2eq.
    pub total_emissions_g: f64,
    /// Average CI of delivered energy, g/kWh.
    pub average_ci: f64,
    /// Mean slowdown of completed jobs.
    pub mean_slowdown: f64,
    /// Wall-clock runtime of the simulation.
    pub elapsed: Duration,
}

impl ScenarioReport {
    fn condense(
        scenario: &Scenario,
        jobs: usize,
        report: &SimReport,
        elapsed: Duration,
    ) -> ScenarioReport {
        ScenarioReport {
            name: scenario.name.clone(),
            workload: scenario.workload.label(),
            policy: scenario.policy.label(),
            regions: scenario.regions.label(),
            jobs,
            completed: report.completed_count(),
            unfinished: report.unfinished,
            missed_deadlines: report.missed_deadlines(),
            stalled_hours: report.stalled_hours,
            migrations: report.migrations,
            transitions: report.suspends + report.resumes,
            total_energy_kwh: report.total_energy_kwh,
            total_emissions_g: report.total_emissions_g,
            average_ci: report.average_ci(),
            mean_slowdown: report.mean_slowdown(),
            elapsed,
        }
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.as_str())),
            ("workload", Value::from(self.workload)),
            ("policy", Value::from(self.policy)),
            ("regions", Value::from(self.regions)),
            ("jobs", Value::from(self.jobs as f64)),
            ("completed", Value::from(self.completed as f64)),
            ("unfinished", Value::from(self.unfinished as f64)),
            (
                "missed_deadlines",
                Value::from(self.missed_deadlines as f64),
            ),
            ("stalled_hours", Value::from(self.stalled_hours as f64)),
            ("migrations", Value::from(self.migrations as f64)),
            ("transitions", Value::from(self.transitions as f64)),
            ("energy_kwh", Value::from(self.total_energy_kwh)),
            ("emissions_g", Value::from(self.total_emissions_g)),
            ("avg_ci_g_per_kwh", Value::from(self.average_ci)),
            ("mean_slowdown", Value::from(self.mean_slowdown)),
            ("elapsed_s", Value::from(self.elapsed.as_secs_f64())),
        ])
    }
}

/// A cartesian grid of scenarios: every workload × policy × region set
/// under shared overheads/capacity/horizon settings.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Workload recipes (one axis of the product).
    pub workloads: Vec<WorkloadSpec>,
    /// Policies (second axis).
    pub policies: Vec<PolicyKind>,
    /// Region sets (third axis).
    pub region_sets: Vec<RegionSet>,
    /// Overheads applied to every scenario.
    pub overheads: OverheadModel,
    /// Capacity applied to every scenario.
    pub capacity_per_region: usize,
    /// Start hour applied to every scenario.
    pub start: Hour,
    /// Horizon applied to every scenario.
    pub horizon: usize,
}

impl ScenarioMatrix {
    /// Expands the cartesian product into named scenarios
    /// (`{workload}-{policy}-{regions}`), workload-major in axis order.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut scenarios =
            Vec::with_capacity(self.workloads.len() * self.policies.len() * self.region_sets.len());
        for workload in &self.workloads {
            for &policy in &self.policies {
                for &regions in &self.region_sets {
                    scenarios.push(Scenario {
                        name: format!(
                            "{}-{}-{}",
                            workload.label(),
                            policy.label(),
                            regions.label()
                        ),
                        workload: workload.clone(),
                        policy,
                        regions,
                        overheads: self.overheads,
                        capacity_per_region: self.capacity_per_region,
                        start: self.start,
                        horizon: self.horizon,
                    });
                }
            }
        }
        scenarios
    }
}

/// The built-in matrix: 3 workload classes × 4 policies × 3 region sets
/// = 36 scenarios over a 16-day window of the evaluation year.
pub fn builtin_matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        workloads: vec![
            WorkloadSpec::Batch {
                per_origin: 12,
                spacing_hours: 24,
                length_hours: 8.0,
                slack: Slack::Day,
                interruptible: true,
            },
            WorkloadSpec::Interactive {
                per_origin: 48,
                spacing_hours: 6,
            },
            WorkloadSpec::Mixed {
                per_origin: 24,
                spacing_hours: 12,
                migratable_fraction: 0.5,
                batch_length_hours: 4.0,
                batch_slack: Slack::Day,
                seed: 0x5EED,
            },
        ],
        policies: PolicyKind::ALL.to_vec(),
        region_sets: RegionSet::ALL.to_vec(),
        overheads: OverheadModel::ZERO,
        capacity_per_region: 8,
        start: year_start(2022),
        horizon: 16 * 24,
    }
}

/// The built-in scenario suite, expanded and named.
pub fn builtin_scenarios() -> Vec<Scenario> {
    builtin_matrix().expand()
}

/// Looks a built-in scenario up by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// Runs `scenarios` against `data`, fanning out across threads; reports
/// come back in input order.
pub fn run_scenarios(data: &TraceSet, scenarios: &[Scenario]) -> Vec<ScenarioReport> {
    par_map(scenarios, |scenario| scenario.run(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;

    #[test]
    fn builtin_suite_names_are_unique_and_cover_the_product() {
        let scenarios = builtin_scenarios();
        assert_eq!(scenarios.len(), 36);
        assert!(scenarios.len() >= 24, "acceptance floor");
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario name");
        for workload in ["batch", "interactive", "mixed"] {
            for policy in ["agnostic", "deferral", "threshold", "greenest"] {
                for regions in ["europe", "us", "global"] {
                    let name = format!("{workload}-{policy}-{regions}");
                    assert!(scenarios.iter().any(|s| s.name == name), "missing {name}");
                }
            }
        }
    }

    #[test]
    fn builtin_horizons_cover_every_job_window() {
        // Every scenario's workload must fit inside its horizon so no
        // built-in run leaks unfinished jobs by construction.
        for s in builtin_scenarios() {
            let origins = s.regions.codes().len();
            let last = s.workload.last_arrival_offset(origins);
            // Worst case: arrive last, defer by full slack, run to length.
            assert!(
                last + 24 + 9 <= s.horizon,
                "{}: last arrival {last} too close to horizon {}",
                s.name,
                s.horizon
            );
        }
    }

    #[test]
    fn region_sets_resolve_against_builtin_dataset() {
        let data = builtin_dataset();
        for set in RegionSet::ALL {
            let regions = set.resolve(&data);
            assert_eq!(regions.len(), set.codes().len());
            assert!(!regions.is_empty());
        }
    }

    #[test]
    fn find_scenario_roundtrips() {
        let s = find_scenario("batch-deferral-europe").expect("built-in name resolves");
        assert_eq!(s.policy, PolicyKind::PlannedDeferral);
        assert_eq!(s.regions, RegionSet::Europe);
        assert_eq!(s.workload.label(), "batch");
        assert!(find_scenario("batch-deferral-atlantis").is_none());
    }

    #[test]
    fn scenario_run_completes_all_jobs_and_serializes() {
        let data = builtin_dataset();
        let s = find_scenario("batch-agnostic-europe").unwrap();
        let report = s.run(&data);
        assert_eq!(report.jobs, 12 * 8);
        assert_eq!(report.completed, report.jobs);
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.stalled_hours, 0);
        assert!(report.total_energy_kwh > 0.0);
        assert!(report.average_ci > 0.0);
        let json = report.to_json();
        assert_eq!(
            json.get("name"),
            Some(&Value::from("batch-agnostic-europe"))
        );
        assert_eq!(
            json.get("completed"),
            Some(&Value::from(report.jobs as f64))
        );
    }

    #[test]
    fn carbon_aware_policies_do_not_exceed_the_baseline() {
        let data = builtin_dataset();
        let reports = run_scenarios(
            &data,
            &builtin_scenarios()
                .into_iter()
                .filter(|s| s.workload.label() == "batch" && s.regions == RegionSet::Europe)
                .collect::<Vec<_>>(),
        );
        let ci_of = |policy: &str| {
            reports
                .iter()
                .find(|r| r.policy == policy)
                .expect("policy present")
                .average_ci
        };
        let base = ci_of("agnostic");
        assert!(ci_of("deferral") <= base + 1e-9);
        assert!(
            ci_of("threshold") <= base * 1.02,
            "online policy near baseline"
        );
        assert!(
            ci_of("greenest") < base,
            "routing to SE must help in Europe"
        );
    }

    #[test]
    fn run_scenarios_preserves_input_order() {
        let data = builtin_dataset();
        let scenarios: Vec<Scenario> = builtin_scenarios().into_iter().take(5).collect();
        let reports = run_scenarios(&data, &scenarios);
        assert_eq!(reports.len(), 5);
        for (s, r) in scenarios.iter().zip(&reports) {
            assert_eq!(s.name, r.name);
        }
    }

    #[test]
    fn interactive_scenarios_pin_jobs_to_origin() {
        let data = builtin_dataset();
        let report = find_scenario("interactive-greenest-us").unwrap().run(&data);
        assert_eq!(report.migrations, 0, "interactive jobs never migrate");
        assert_eq!(report.completed, report.jobs);
    }
}
