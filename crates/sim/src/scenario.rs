//! The scenario-matrix engine: declarative simulation configurations,
//! cartesian expansion, and parallel execution.
//!
//! The paper's central claim — shifting savings are small and
//! workload-dependent — only generalizes across *many* workload ×
//! policy × geography combinations. A [`Scenario`] names one such
//! combination declaratively (workload spec, policy, region set,
//! overheads, capacity, horizon); a [`ScenarioMatrix`] expands the
//! cartesian product — including overhead-model and capacity axes —
//! into named scenarios; [`run_scenarios_with`] fans them out across
//! threads with `decarb_par` against one shared dataset and a shared
//! [`PlannerCache`], handing each condensed [`ScenarioReport`] to a
//! sink in input order as chunks complete, so thousand-scenario sweeps
//! stream instead of buffering. Reports serialize with `decarb_json`
//! for machine consumers (`decarb-cli scenario run all --json`, the CI
//! emissions-regression gate).
//!
//! Beyond the built-in matrix, users declare their own sweeps in
//! scenario files (see [`crate::scenario_file`]) with custom region
//! sets, workload recipes, and policy grids.

use std::time::{Duration, Instant};

use decarb_forecast::{Persistence, SeasonalNaive};
use decarb_json::Value;
use decarb_traces::time::year_start;
use decarb_traces::{Hour, RegionId, TraceSet};
use decarb_workloads::{Arrival, Slack, WorkloadSpec};

use crate::accounting::SimReport;
use crate::engine::{SimConfig, Simulator};
use crate::forecast_policy::ForecastDeferral;
use crate::overheads::OverheadModel;
use crate::planner_cache::{CachedDeferral, PlannerCache};
use crate::policy::{CarbonAgnostic, GreenestRouter, ThresholdSuspend};
use crate::spatiotemporal::SpatioTemporal;

/// Round-trip-time budget for the built-in spatiotemporal policy, ms —
/// generous enough for intra-continental migration, tight enough to
/// exclude antipodal hops.
pub const SPATIOTEMPORAL_SLO_MS: f64 = 120.0;

/// A named, fixed set of regions scenarios deploy datacenters in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionSet {
    /// Eight European zones spanning the continent's CI extremes.
    Europe,
    /// Six United States zones with hyperscale presence.
    UnitedStates,
    /// Ten zones across five continents.
    Global,
}

impl RegionSet {
    /// All built-in region sets, in display order.
    pub const ALL: [RegionSet; 3] = [
        RegionSet::Europe,
        RegionSet::UnitedStates,
        RegionSet::Global,
    ];

    /// Returns the set's short label (used in scenario names).
    pub fn label(self) -> &'static str {
        match self {
            RegionSet::Europe => "europe",
            RegionSet::UnitedStates => "us",
            RegionSet::Global => "global",
        }
    }

    /// Returns the zone codes in the set.
    pub fn codes(self) -> &'static [&'static str] {
        match self {
            RegionSet::Europe => &["SE", "DE", "FR", "GB", "PL", "ES", "NO", "FI"],
            RegionSet::UnitedStates => &["US-CA", "US-TX", "US-NY", "US-WA", "US-VA", "US-OR"],
            RegionSet::Global => &[
                "SE", "DE", "GB", "US-CA", "US-TX", "IN-WE", "JP-TK", "AU-NSW", "BR-S", "ZA",
            ],
        }
    }

    /// Resolves the set against a dataset's region table.
    ///
    /// # Panics
    ///
    /// Panics if the dataset lacks one of the set's zones (the built-in
    /// dataset covers all of them).
    pub fn resolve(self, data: &TraceSet) -> Vec<RegionId> {
        self.codes()
            .iter()
            // decarb-analyze: allow(no-panic) -- documented panicking API; `try_resolve` is the fallible sibling
            .map(|code| data.id_of(code).expect("built-in region set resolves"))
            .collect()
    }

    /// Parses a built-in region-set label.
    pub fn parse(label: &str) -> Result<RegionSet, String> {
        RegionSet::ALL
            .into_iter()
            .find(|set| set.label() == label)
            .ok_or_else(|| {
                let valid: Vec<&str> = RegionSet::ALL.iter().map(|s| s.label()).collect();
                format!("unknown region set `{label}` (valid: {})", valid.join(", "))
            })
    }
}

/// Where a scenario deploys: a built-in named set or a user-defined
/// list of zone codes (from a scenario file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionSpec {
    /// One of the built-in [`RegionSet`]s.
    Named(RegionSet),
    /// A custom set declared in a scenario file.
    Custom {
        /// The set's name (used in scenario names).
        label: String,
        /// Zone codes, resolved against the active dataset at run time.
        codes: Vec<String>,
    },
}

impl From<RegionSet> for RegionSpec {
    fn from(set: RegionSet) -> Self {
        RegionSpec::Named(set)
    }
}

impl RegionSpec {
    /// Returns the set's label (used in scenario names).
    pub fn label(&self) -> &str {
        match self {
            RegionSpec::Named(set) => set.label(),
            RegionSpec::Custom { label, .. } => label,
        }
    }

    /// Returns the zone codes in the set.
    pub fn codes(&self) -> Vec<&str> {
        match self {
            RegionSpec::Named(set) => set.codes().to_vec(),
            RegionSpec::Custom { codes, .. } => codes.iter().map(String::as_str).collect(),
        }
    }

    /// Resolves the set to interned ids against `data`, erroring on
    /// zones the dataset does not cover (custom sets and `--data`
    /// imports can miss).
    pub fn try_resolve(&self, data: &TraceSet) -> Result<Vec<RegionId>, String> {
        self.codes()
            .iter()
            .map(|code| {
                data.id_of(code).map_err(|_| {
                    format!(
                        "region set `{}`: zone `{code}` is not in the dataset",
                        self.label()
                    )
                })
            })
            .collect()
    }
}

/// Which scheduling policy a scenario drives the simulator with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Run immediately at the origin (the baseline).
    CarbonAgnostic,
    /// Clairvoyant deferral inside the origin region.
    PlannedDeferral,
    /// Online threshold suspend/resume at the origin.
    ThresholdSuspend,
    /// Route to the greenest region with free capacity at arrival.
    GreenestRouter,
    /// Forecast-driven deferral at the origin (seasonal-naive model —
    /// the online counterpart of the clairvoyant bound).
    ForecastDeferral,
    /// Greenest-within-SLO routing plus forecast deferral in the
    /// destination (§6.4 made online).
    SpatioTemporal,
}

impl PolicyKind {
    /// All built-in policies, baseline first.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::CarbonAgnostic,
        PolicyKind::PlannedDeferral,
        PolicyKind::ThresholdSuspend,
        PolicyKind::GreenestRouter,
        PolicyKind::ForecastDeferral,
        PolicyKind::SpatioTemporal,
    ];

    /// Returns the policy's short label (used in scenario names).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::CarbonAgnostic => "agnostic",
            PolicyKind::PlannedDeferral => "deferral",
            PolicyKind::ThresholdSuspend => "threshold",
            PolicyKind::GreenestRouter => "greenest",
            PolicyKind::ForecastDeferral => "forecast",
            PolicyKind::SpatioTemporal => "spatiotemporal",
        }
    }

    /// Parses a policy label (scenario files, CLI errors).
    pub fn parse(label: &str) -> Result<PolicyKind, String> {
        PolicyKind::ALL
            .into_iter()
            .find(|kind| kind.label() == label)
            .ok_or_else(|| {
                let valid: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
                format!("unknown policy `{label}` (valid: {})", valid.join(", "))
            })
    }

    /// Returns `true` for the carbon-agnostic baseline.
    pub fn is_baseline(self) -> bool {
        matches!(self, PolicyKind::CarbonAgnostic)
    }

    /// Drives one simulation with the concrete policy. Forecast-backed
    /// policies instantiate the scenario's [`ForecasterKind`]; the
    /// spatiotemporal router honors the scenario's `slo_ms`.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        self,
        sim: &mut Simulator<'_>,
        jobs: &[decarb_workloads::Job],
        data: &TraceSet,
        regions: &[RegionId],
        cache: &PlannerCache,
        forecaster: ForecasterKind,
        slo_ms: f64,
    ) -> SimReport {
        // The seasonal period is one day *of the dataset's axis*: 24
        // samples hourly, 288 at 5-minute resolution.
        let seasonal = SeasonalNaive::daily_at(data.resolution());
        match self {
            PolicyKind::CarbonAgnostic => sim.run(&mut CarbonAgnostic, jobs),
            PolicyKind::PlannedDeferral => sim.run(&mut CachedDeferral::new(cache), jobs),
            PolicyKind::ThresholdSuspend => sim.run(&mut ThresholdSuspend::default(), jobs),
            PolicyKind::GreenestRouter => sim.run(&mut GreenestRouter, jobs),
            PolicyKind::ForecastDeferral => match forecaster {
                ForecasterKind::Naive => sim.run(&mut ForecastDeferral::new(Persistence), jobs),
                ForecasterKind::Seasonal => sim.run(&mut ForecastDeferral::new(seasonal), jobs),
            },
            PolicyKind::SpatioTemporal => match forecaster {
                ForecasterKind::Naive => sim.run(
                    &mut SpatioTemporal::new(data, regions, slo_ms, Persistence),
                    jobs,
                ),
                ForecasterKind::Seasonal => sim.run(
                    &mut SpatioTemporal::new(data, regions, slo_ms, seasonal),
                    jobs,
                ),
            },
        }
    }
}

/// Which forecasting model the forecast-backed policies plan with.
///
/// The built-in matrix uses the seasonal-naive model; scenario files
/// pick per scenario via the `forecaster` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForecasterKind {
    /// Persistence: tomorrow looks like the last observed hour.
    Naive,
    /// Seasonal-naive with a daily period (the built-in default).
    #[default]
    Seasonal,
}

impl ForecasterKind {
    /// Both forecaster choices, simplest first.
    pub const ALL: [ForecasterKind; 2] = [ForecasterKind::Naive, ForecasterKind::Seasonal];

    /// Returns the forecaster's short label (scenario files).
    pub fn label(self) -> &'static str {
        match self {
            ForecasterKind::Naive => "naive",
            ForecasterKind::Seasonal => "seasonal",
        }
    }

    /// Parses a forecaster label (scenario files).
    pub fn parse(label: &str) -> Result<ForecasterKind, String> {
        ForecasterKind::ALL
            .into_iter()
            .find(|kind| kind.label() == label)
            .ok_or_else(|| {
                let valid: Vec<&str> = ForecasterKind::ALL.iter().map(|k| k.label()).collect();
                format!("unknown forecaster `{label}` (valid: {})", valid.join(", "))
            })
    }
}

/// Which transition-overhead model a scenario charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadKind {
    /// The paper's idealization: all transitions are free.
    Zero,
    /// The checkpoint/restore + WAN-copy cost point of
    /// [`OverheadModel::realistic`].
    Realistic,
}

impl OverheadKind {
    /// Both overhead models, ideal first.
    pub const ALL: [OverheadKind; 2] = [OverheadKind::Zero, OverheadKind::Realistic];

    /// Returns the model's short label (used in scenario names).
    pub fn label(self) -> &'static str {
        match self {
            OverheadKind::Zero => "zero",
            OverheadKind::Realistic => "realistic",
        }
    }

    /// Returns the concrete energy-overhead model.
    pub fn model(self) -> OverheadModel {
        match self {
            OverheadKind::Zero => OverheadModel::ZERO,
            OverheadKind::Realistic => OverheadModel::realistic(),
        }
    }

    /// Parses an overhead-model label (scenario files).
    pub fn parse(label: &str) -> Result<OverheadKind, String> {
        OverheadKind::ALL
            .into_iter()
            .find(|kind| kind.label() == label)
            .ok_or_else(|| format!("unknown overhead model `{label}` (valid: zero, realistic)"))
    }
}

/// One fully specified simulation configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name, `{workload}-{policy}-{regions}` for built-ins.
    pub name: String,
    /// The workload recipe (materialized against the region set).
    pub workload: WorkloadSpec,
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// The deployed region set (every region is also a job origin).
    pub regions: RegionSpec,
    /// Transition-energy overhead model.
    pub overheads: OverheadKind,
    /// Concurrent running-job capacity per datacenter.
    pub capacity_per_region: usize,
    /// Forecasting model for the forecast-backed policies.
    pub forecaster: ForecasterKind,
    /// Round-trip-time budget for the spatiotemporal policy, ms.
    pub slo_ms: f64,
    /// First simulated hour (wall-clock; scaled to the dataset's slot
    /// axis at run time, so declarations are resolution-independent).
    pub start: Hour,
    /// Simulated hours (wall-clock, scaled like `start`).
    pub horizon: usize,
}

impl Scenario {
    /// One-line human description for `scenario list`.
    pub fn describe(&self) -> String {
        format!(
            "{} workload, {} policy, {} regions ({}), {} h horizon",
            self.workload.label(),
            self.policy.label(),
            self.regions.codes().len(),
            self.regions.label(),
            self.horizon,
        )
    }

    /// Checks the scenario can run against `data` (all zones covered).
    pub fn validate_against(&self, data: &TraceSet) -> Result<(), String> {
        self.regions.try_resolve(data).map(|_| ())
    }

    /// The scenario's content-addressed id: a 64-bit FNV-1a hash of
    /// every field that influences the outcome, in canonical text form.
    ///
    /// Two scenarios with the same id run the same simulation, whatever
    /// file or matrix they were declared in — this is what the sweep
    /// pipeline shards and merges by (see [`crate::sweep`]).
    pub fn content_id(&self) -> String {
        fnv1a64(&format!("{};{}", self.name, self.outcome_canonical()))
    }

    /// The scenario's *outcome* id: [`Scenario::content_id`] minus the
    /// name. Two scenarios with the same outcome id run the exact same
    /// simulation under different labels — a dead matrix axis the
    /// static scenario checker flags (see [`crate::scenario_check`]).
    pub fn outcome_id(&self) -> String {
        fnv1a64(&self.outcome_canonical())
    }

    /// Canonical text form of every outcome-determining field, in the
    /// exact byte layout `content_id` has always hashed after the name.
    fn outcome_canonical(&self) -> String {
        format!(
            "{};{};[{}];{};{};{};{};{};{}",
            self.workload.canonical(),
            self.policy.label(),
            self.regions.codes().join(","),
            self.overheads.label(),
            self.capacity_per_region,
            self.forecaster.label(),
            self.slo_ms,
            self.start.0,
            self.horizon,
        )
    }

    /// Runs the scenario against `data` and condenses the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the dataset lacks one of the scenario's zones; call
    /// [`Scenario::validate_against`] first when the dataset is not the
    /// built-in one.
    pub fn run(&self, data: &TraceSet) -> ScenarioReport {
        self.run_cached(data, &PlannerCache::new())
    }

    /// [`Scenario::run`] against a shared [`PlannerCache`] (one cache
    /// per run and dataset — the scenario engine's hot path).
    pub fn run_cached(&self, data: &TraceSet, cache: &PlannerCache) -> ScenarioReport {
        let regions = self
            .regions
            .try_resolve(data)
            // decarb-analyze: allow(no-panic) -- documented: callers `validate_against` non-builtin datasets first
            .unwrap_or_else(|e| panic!("scenario `{}`: {e}", self.name));
        // Wall-clock hours → dataset slots, once at the edge. Scenario
        // declarations (and their content ids) stay in hours whatever
        // the dataset resolution; on hourly data this is the identity.
        let resolution = data.resolution();
        let sph = resolution.slots_per_hour();
        let start = Hour(self.start.0 * sph as u32);
        let horizon = self.horizon * sph;
        let jobs = self.workload.materialize_at(&regions, start, resolution);
        let config = SimConfig::new(start, horizon, self.capacity_per_region)
            .with_overheads(self.overheads.model());
        let mut sim = Simulator::new(data, &regions, config);
        let started = Instant::now();
        let report = self.policy.execute(
            &mut sim,
            &jobs,
            data,
            &regions,
            cache,
            self.forecaster,
            self.slo_ms,
        );
        ScenarioReport::condense(self, jobs.len(), &report, started.elapsed())
    }
}

/// The condensed outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub name: String,
    /// The scenario's content-addressed id ([`Scenario::content_id`]).
    pub id: String,
    /// Workload class label.
    pub workload: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Region-set label.
    pub regions: String,
    /// Overhead-model label.
    pub overheads: &'static str,
    /// Concurrent running-job capacity per datacenter.
    pub capacity_per_region: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs completed within the horizon.
    pub completed: usize,
    /// Jobs unfinished at the horizon end.
    pub unfinished: usize,
    /// Completed jobs that finished past their slack deadline.
    pub missed_deadlines: usize,
    /// Job-hours stalled on missing trace coverage (see
    /// [`SimReport::stalled_hours`]).
    pub stalled_hours: usize,
    /// Cross-region migrations.
    pub migrations: usize,
    /// Suspend + resume transitions.
    pub transitions: usize,
    /// Energy delivered, kWh.
    pub total_energy_kwh: f64,
    /// Emissions, g·CO2eq.
    pub total_emissions_g: f64,
    /// Average CI of delivered energy, g/kWh.
    pub average_ci: f64,
    /// Mean slowdown of completed jobs.
    pub mean_slowdown: f64,
    /// Wall-clock runtime of the simulation.
    pub elapsed: Duration,
}

impl ScenarioReport {
    fn condense(
        scenario: &Scenario,
        jobs: usize,
        report: &SimReport,
        elapsed: Duration,
    ) -> ScenarioReport {
        ScenarioReport {
            name: scenario.name.clone(),
            id: scenario.content_id(),
            workload: scenario.workload.label(),
            policy: scenario.policy.label(),
            regions: scenario.regions.label().to_string(),
            overheads: scenario.overheads.label(),
            capacity_per_region: scenario.capacity_per_region,
            jobs,
            completed: report.completed_count(),
            unfinished: report.unfinished,
            missed_deadlines: report.missed_deadlines(),
            stalled_hours: report.stalled_hours,
            migrations: report.migrations,
            transitions: report.suspends + report.resumes,
            total_energy_kwh: report.total_energy_kwh,
            total_emissions_g: report.total_emissions_g,
            average_ci: report.average_ci(),
            mean_slowdown: report.mean_slowdown(),
            elapsed,
        }
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.as_str())),
            ("id", Value::from(self.id.as_str())),
            ("workload", Value::from(self.workload)),
            ("policy", Value::from(self.policy)),
            ("regions", Value::from(self.regions.as_str())),
            ("overheads", Value::from(self.overheads)),
            ("capacity", Value::from(self.capacity_per_region as f64)),
            ("jobs", Value::from(self.jobs as f64)),
            ("completed", Value::from(self.completed as f64)),
            ("unfinished", Value::from(self.unfinished as f64)),
            (
                "missed_deadlines",
                Value::from(self.missed_deadlines as f64),
            ),
            ("stalled_hours", Value::from(self.stalled_hours as f64)),
            ("migrations", Value::from(self.migrations as f64)),
            ("transitions", Value::from(self.transitions as f64)),
            ("energy_kwh", Value::from(self.total_energy_kwh)),
            ("emissions_g", Value::from(self.total_emissions_g)),
            ("avg_ci_g_per_kwh", Value::from(self.average_ci)),
            ("mean_slowdown", Value::from(self.mean_slowdown)),
            ("elapsed_s", Value::from(self.elapsed.as_secs_f64())),
        ])
    }
}

/// A cartesian grid of scenarios: every workload × policy × region set
/// × overhead model × capacity under a shared start/horizon.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Named workload recipes (one axis of the product). The name feeds
    /// scenario names; built-ins use the class label.
    pub workloads: Vec<(String, WorkloadSpec)>,
    /// Policies (second axis).
    pub policies: Vec<PolicyKind>,
    /// Region sets (third axis).
    pub region_sets: Vec<RegionSpec>,
    /// Overhead models (fourth axis; single-entry axes leave names
    /// unchanged).
    pub overheads: Vec<OverheadKind>,
    /// Per-datacenter capacities (fifth axis; single-entry axes leave
    /// names unchanged).
    pub capacities: Vec<usize>,
    /// Forecaster applied to every scenario (a setting, not an axis).
    pub forecaster: ForecasterKind,
    /// Spatiotemporal SLO applied to every scenario, ms.
    pub slo_ms: f64,
    /// Start hour applied to every scenario.
    pub start: Hour,
    /// Horizon applied to every scenario.
    pub horizon: usize,
}

impl ScenarioMatrix {
    /// Expands the cartesian product into named scenarios, workload-major
    /// in axis order. Names are `{workload}-{policy}-{regions}`, suffixed
    /// with `-{overheads}` and `-c{capacity}` only when the respective
    /// axis has more than one value (so built-in names stay stable).
    pub fn expand(&self) -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(
            self.workloads.len()
                * self.policies.len()
                * self.region_sets.len()
                * self.overheads.len()
                * self.capacities.len(),
        );
        for (workload_name, workload) in &self.workloads {
            for &policy in &self.policies {
                for regions in &self.region_sets {
                    for &overheads in &self.overheads {
                        for &capacity in &self.capacities {
                            let mut name =
                                format!("{}-{}-{}", workload_name, policy.label(), regions.label());
                            if self.overheads.len() > 1 {
                                name.push('-');
                                name.push_str(overheads.label());
                            }
                            if self.capacities.len() > 1 {
                                name.push_str(&format!("-c{capacity}"));
                            }
                            scenarios.push(Scenario {
                                name,
                                workload: workload.clone(),
                                policy,
                                regions: regions.clone(),
                                overheads,
                                capacity_per_region: capacity,
                                forecaster: self.forecaster,
                                slo_ms: self.slo_ms,
                                start: self.start,
                                horizon: self.horizon,
                            });
                        }
                    }
                }
            }
        }
        scenarios
    }
}

/// FNV-1a, 64-bit, rendered as 16 hex digits: tiny, dependency-free,
/// and stable across platforms and compiler versions (unlike
/// `DefaultHasher`). Shared by [`Scenario::content_id`] and
/// [`Scenario::outcome_id`].
fn fnv1a64(canonical: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{hash:016x}")
}

/// The built-in matrix: 3 workload classes × 6 policies × 3 region sets
/// = 54 scenarios over a 16-day window of the evaluation year.
pub fn builtin_matrix() -> ScenarioMatrix {
    let workloads = vec![
        WorkloadSpec::Batch {
            per_origin: 12,
            arrival: Arrival::fixed(24),
            length_hours: 8.0,
            slack: Slack::Day,
            interruptible: true,
        },
        WorkloadSpec::Interactive {
            per_origin: 48,
            arrival: Arrival::fixed(6),
        },
        WorkloadSpec::Mixed {
            per_origin: 24,
            arrival: Arrival::fixed(12),
            migratable_fraction: 0.5,
            batch_length_hours: 4.0,
            batch_slack: Slack::Day,
            seed: 0x5EED,
        },
    ];
    ScenarioMatrix {
        workloads: workloads
            .into_iter()
            .map(|w| (w.label().to_string(), w))
            .collect(),
        policies: PolicyKind::ALL.to_vec(),
        region_sets: RegionSet::ALL.iter().map(|&s| s.into()).collect(),
        overheads: vec![OverheadKind::Zero],
        capacities: vec![8],
        forecaster: ForecasterKind::Seasonal,
        slo_ms: SPATIOTEMPORAL_SLO_MS,
        start: year_start(2022),
        horizon: 16 * 24,
    }
}

/// The built-in scenario suite, expanded and named.
pub fn builtin_scenarios() -> Vec<Scenario> {
    builtin_matrix().expand()
}

/// Looks a built-in scenario up by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

/// Runs `scenarios` against `data`, fanning out across threads over a
/// shared planner cache; reports come back in input order.
///
/// A thin convenience over the sweep pipeline ([`crate::sweep`]): the
/// scenarios are planned (pre-validated, content-addressed) and the
/// whole plan executes as a single shard.
///
/// # Panics
///
/// Panics at plan time — before any worker thread starts — when a
/// scenario's region set does not resolve against `data` (listing every
/// invalid scenario) or when two scenarios share a name (their reports
/// would be indistinguishable). Use [`crate::sweep::SweepPlan::plan`]
/// directly to handle those cases as errors.
pub fn run_scenarios(data: &TraceSet, scenarios: &[Scenario]) -> Vec<ScenarioReport> {
    let mut reports = Vec::with_capacity(scenarios.len());
    run_scenarios_with(data, scenarios, |report| {
        reports.push(report);
        true
    });
    reports
}

/// Streaming variant of [`run_scenarios`]: executes chunk-by-chunk in
/// parallel (each chunk spans the worker threads) and hands every
/// report to `sink` in input order as soon as its chunk completes, so
/// thousand-scenario sweeps emit incrementally instead of buffering a
/// matrix-sized `Vec`. A `false` return from `sink` aborts the sweep
/// after the current chunk (e.g. the consumer's pipe closed), skipping
/// the remaining scenarios. All scenarios in one call share one
/// [`PlannerCache`].
///
/// # Panics
///
/// As [`run_scenarios`]: invalid or duplicate-named scenarios panic at
/// plan time with the full collected list.
pub fn run_scenarios_with(
    data: &TraceSet,
    scenarios: &[Scenario],
    sink: impl FnMut(ScenarioReport) -> bool,
) {
    let plan =
        // decarb-analyze: allow(no-panic) -- documented: invalid scenarios panic at plan time with the collected list
        crate::sweep::SweepPlan::plan(data, scenarios.to_vec()).unwrap_or_else(|e| panic!("{e}"));
    plan.execute_with(data, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;

    #[test]
    fn builtin_suite_names_are_unique_and_cover_the_product() {
        let scenarios = builtin_scenarios();
        assert_eq!(scenarios.len(), 54);
        assert!(scenarios.len() >= 24, "acceptance floor");
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario name");
        for workload in ["batch", "interactive", "mixed"] {
            for policy in [
                "agnostic",
                "deferral",
                "threshold",
                "greenest",
                "forecast",
                "spatiotemporal",
            ] {
                for regions in ["europe", "us", "global"] {
                    let name = format!("{workload}-{policy}-{regions}");
                    assert!(scenarios.iter().any(|s| s.name == name), "missing {name}");
                }
            }
        }
    }

    #[test]
    fn builtin_horizons_cover_every_job_window() {
        // Every scenario's workload must fit inside its horizon so no
        // built-in run leaks unfinished jobs by construction.
        for s in builtin_scenarios() {
            let origins = s.regions.codes().len();
            let last = s.workload.last_arrival_offset(origins);
            // Worst case: arrive last, defer by full slack, run to length.
            assert!(
                last + 24 + 9 <= s.horizon,
                "{}: last arrival {last} too close to horizon {}",
                s.name,
                s.horizon
            );
        }
    }

    #[test]
    fn outcome_id_ignores_the_name_and_nothing_else() {
        let scenarios = builtin_scenarios();
        let a = &scenarios[0];
        let mut renamed = a.clone();
        renamed.name = "alias".into();
        // Same simulation under a different label: outcome ids agree,
        // content ids (which hash the name first) do not.
        assert_eq!(a.outcome_id(), renamed.outcome_id());
        assert_ne!(a.content_id(), renamed.content_id());
        // Any outcome-bearing field change moves both ids.
        let mut tweaked = a.clone();
        tweaked.horizon += 1;
        assert_ne!(a.outcome_id(), tweaked.outcome_id());
        assert_ne!(a.content_id(), tweaked.content_id());
        // The content hash still covers the exact historical byte
        // layout: name first, then the outcome canonical.
        assert_eq!(
            a.content_id(),
            fnv1a64(&format!("{};{}", a.name, a.outcome_canonical()))
        );
        // The 54 built-in scenarios are pairwise distinct outcomes.
        let mut ids: Vec<String> = scenarios.iter().map(Scenario::outcome_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), scenarios.len());
    }

    #[test]
    fn region_sets_resolve_against_builtin_dataset() {
        let data = builtin_dataset();
        for set in RegionSet::ALL {
            let regions = set.resolve(&data);
            assert_eq!(regions.len(), set.codes().len());
            assert!(!regions.is_empty());
        }
    }

    #[test]
    fn custom_region_specs_resolve_and_report_missing_zones() {
        let data = builtin_dataset();
        let nordics = RegionSpec::Custom {
            label: "nordics".into(),
            codes: vec!["SE".into(), "NO".into(), "FI".into()],
        };
        assert_eq!(nordics.label(), "nordics");
        assert_eq!(nordics.try_resolve(&data).unwrap().len(), 3);
        let bad = RegionSpec::Custom {
            label: "atlantis".into(),
            codes: vec!["SE".into(), "XX-NOPE".into()],
        };
        let err = bad.try_resolve(&data).unwrap_err();
        assert!(err.contains("XX-NOPE"), "{err}");
        assert!(err.contains("atlantis"), "{err}");
    }

    #[test]
    fn policy_and_axis_labels_parse_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()).unwrap(), kind);
        }
        let err = PolicyKind::parse("psychic").unwrap_err();
        assert!(err.contains("spatiotemporal"), "{err}");
        for kind in OverheadKind::ALL {
            assert_eq!(OverheadKind::parse(kind.label()).unwrap(), kind);
        }
        assert!(OverheadKind::parse("free").is_err());
        for set in RegionSet::ALL {
            assert_eq!(RegionSet::parse(set.label()).unwrap(), set);
        }
        assert!(RegionSet::parse("mars").is_err());
    }

    #[test]
    fn multi_value_axes_suffix_names() {
        let mut matrix = builtin_matrix();
        matrix.workloads.truncate(1);
        matrix.policies = vec![PolicyKind::ThresholdSuspend];
        matrix.region_sets = vec![RegionSet::Europe.into()];
        matrix.overheads = OverheadKind::ALL.to_vec();
        matrix.capacities = vec![4, 8];
        let scenarios = matrix.expand();
        assert_eq!(scenarios.len(), 4);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "batch-threshold-europe-zero-c4",
                "batch-threshold-europe-zero-c8",
                "batch-threshold-europe-realistic-c4",
                "batch-threshold-europe-realistic-c8",
            ]
        );
    }

    #[test]
    fn realistic_overheads_raise_transitioning_scenario_emissions() {
        let data = builtin_dataset();
        let mut zero = find_scenario("batch-threshold-us").unwrap();
        let ideal = zero.run(&data);
        zero.overheads = OverheadKind::Realistic;
        let costed = zero.run(&data);
        assert!(ideal.transitions > 0, "threshold policy must transition");
        assert_eq!(ideal.transitions, costed.transitions);
        assert!(
            costed.total_emissions_g > ideal.total_emissions_g,
            "charged transitions must cost carbon"
        );
    }

    #[test]
    fn find_scenario_roundtrips() {
        let s = find_scenario("batch-deferral-europe").expect("built-in name resolves");
        assert_eq!(s.policy, PolicyKind::PlannedDeferral);
        assert_eq!(s.regions, RegionSpec::Named(RegionSet::Europe));
        assert_eq!(s.workload.label(), "batch");
        assert!(find_scenario("batch-deferral-atlantis").is_none());
    }

    #[test]
    fn scenario_run_completes_all_jobs_and_serializes() {
        let data = builtin_dataset();
        let s = find_scenario("batch-agnostic-europe").unwrap();
        let report = s.run(&data);
        assert_eq!(report.jobs, 12 * 8);
        assert_eq!(report.completed, report.jobs);
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.stalled_hours, 0);
        assert!(report.total_energy_kwh > 0.0);
        assert!(report.average_ci > 0.0);
        let json = report.to_json();
        assert_eq!(
            json.get("name"),
            Some(&Value::from("batch-agnostic-europe"))
        );
        assert_eq!(
            json.get("completed"),
            Some(&Value::from(report.jobs as f64))
        );
        assert_eq!(json.get("overheads"), Some(&Value::from("zero")));
        assert_eq!(json.get("capacity"), Some(&Value::from(8)));
    }

    #[test]
    fn carbon_aware_policies_do_not_exceed_the_baseline() {
        let data = builtin_dataset();
        let reports = run_scenarios(
            &data,
            &builtin_scenarios()
                .into_iter()
                .filter(|s| {
                    s.workload.label() == "batch"
                        && s.regions == RegionSpec::Named(RegionSet::Europe)
                })
                .collect::<Vec<_>>(),
        );
        let ci_of = |policy: &str| {
            reports
                .iter()
                .find(|r| r.policy == policy)
                .expect("policy present")
                .average_ci
        };
        let base = ci_of("agnostic");
        assert!(ci_of("deferral") <= base + 1e-9);
        assert!(
            ci_of("threshold") <= base * 1.02,
            "online policy near baseline"
        );
        assert!(
            ci_of("greenest") < base,
            "routing to SE must help in Europe"
        );
        // Forecast deferral is non-clairvoyant: bounded below by the
        // clairvoyant deferral, and near the baseline at worst.
        assert!(ci_of("forecast") >= ci_of("deferral") - 1e-9);
        assert!(ci_of("forecast") <= base * 1.02);
        // Spatial routing dominates; adding forecast deferral on top
        // must not hurt materially.
        assert!(ci_of("spatiotemporal") < base);
    }

    #[test]
    fn run_scenarios_preserves_input_order() {
        let data = builtin_dataset();
        let scenarios: Vec<Scenario> = builtin_scenarios().into_iter().take(5).collect();
        let reports = run_scenarios(&data, &scenarios);
        assert_eq!(reports.len(), 5);
        for (s, r) in scenarios.iter().zip(&reports) {
            assert_eq!(s.name, r.name);
        }
    }

    #[test]
    fn streaming_runner_emits_every_report_in_order() {
        let data = builtin_dataset();
        let scenarios: Vec<Scenario> = builtin_scenarios()
            .into_iter()
            .filter(|s| s.regions == RegionSpec::Named(RegionSet::UnitedStates))
            .collect();
        let mut seen = Vec::new();
        run_scenarios_with(&data, &scenarios, |report| {
            seen.push(report.name.clone());
            true
        });
        let expected: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn streaming_runner_aborts_when_the_sink_declines() {
        let data = builtin_dataset();
        let scenarios = builtin_scenarios();
        let mut delivered = 0usize;
        run_scenarios_with(&data, &scenarios, |_| {
            delivered += 1;
            delivered < 3
        });
        // The sweep stops after the chunk containing the third report
        // instead of running all 54 scenarios.
        assert!(delivered >= 3);
        assert!(delivered < scenarios.len(), "sweep must abort early");
    }

    #[test]
    fn five_minute_replica_matches_hourly_for_every_policy_kind() {
        // The tentpole equivalence property: a 5-minute dataset whose
        // values are each hour's CI repeated 12× carries the same
        // physical signal, so every policy must produce bit-identical
        // total emissions and the same placements, completions, and
        // transitions as the hourly run. Integer CI values and integer
        // job lengths keep every accumulation exact, so "bit-identical"
        // is meaningful rather than within-epsilon.
        let start = year_start(2022);
        let mut state = 0x0dde_5115_c0ff_ee00_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 700 + 40) as f64
        };
        let pairs = ["DE", "SE", "PL"]
            .iter()
            .map(|code| {
                let region = decarb_traces::catalog::region(code).unwrap().clone();
                let values: Vec<f64> = (0..24 * 70).map(|_| next()).collect();
                (region, decarb_traces::TimeSeries::new(start, values))
            })
            .collect();
        let hourly = TraceSet::from_series(pairs);
        let fine = hourly
            .resample_to(decarb_traces::Resolution::from_minutes(5).unwrap())
            .unwrap();
        let regions = RegionSpec::Custom {
            label: "trio".into(),
            codes: vec!["DE".into(), "SE".into(), "PL".into()],
        };
        for kind in PolicyKind::ALL {
            let scenario = Scenario {
                name: format!("replica-{}", kind.label()),
                workload: WorkloadSpec::Batch {
                    per_origin: 6,
                    arrival: Arrival::fixed(24),
                    length_hours: 8.0,
                    slack: Slack::Day,
                    interruptible: true,
                },
                policy: kind,
                regions: regions.clone(),
                overheads: OverheadKind::Zero,
                capacity_per_region: 8,
                forecaster: ForecasterKind::Seasonal,
                slo_ms: SPATIOTEMPORAL_SLO_MS,
                // Mid-dataset so the forecast policies have a month of
                // history behind them.
                start: start.plus(35 * 24),
                horizon: 16 * 24,
            };
            let coarse = scenario.run(&hourly);
            let replica = scenario.run(&fine);
            let label = kind.label();
            assert_eq!(
                coarse.total_emissions_g, replica.total_emissions_g,
                "{label}: emissions must be bit-identical"
            );
            assert_eq!(
                coarse.total_energy_kwh, replica.total_energy_kwh,
                "{label}: energy must be bit-identical"
            );
            assert_eq!(coarse.completed, replica.completed, "{label}");
            assert_eq!(coarse.unfinished, replica.unfinished, "{label}");
            assert_eq!(coarse.missed_deadlines, replica.missed_deadlines, "{label}");
            assert_eq!(coarse.migrations, replica.migrations, "{label}");
            assert_eq!(coarse.transitions, replica.transitions, "{label}");
            assert_eq!(coarse.jobs, replica.jobs, "{label}: same population");
            assert_eq!(coarse.completed, coarse.jobs, "{label}: all complete");
        }
    }

    #[test]
    fn interactive_scenarios_pin_jobs_to_origin() {
        let data = builtin_dataset();
        let report = find_scenario("interactive-greenest-us").unwrap().run(&data);
        assert_eq!(report.migrations, 0, "interactive jobs never migrate");
        assert_eq!(report.completed, report.jobs);
    }
}
