//! The sharded sweep pipeline: **plan → partition → execute → merge**.
//!
//! `run_scenarios` used to fuse expansion, validation, execution, and
//! reporting into one in-process call, which capped sweeps at a single
//! machine's core count and turned a bad zone code into a panic on a
//! worker thread. This module separates the stages so large sweeps can
//! be partitioned across processes (and machines) and recombined:
//!
//! 1. **Plan** — [`SweepPlan::plan`] turns a scenario list (a matrix
//!    expansion or a scenario file) into a deterministic, stably-ordered
//!    plan. Every scenario is pre-validated against the dataset — *all*
//!    invalid scenarios are collected into one [`SweepError`] instead of
//!    panicking mid-sweep — and assigned a content-addressed id
//!    ([`Scenario::content_id`]) that is stable across processes,
//!    revisions, and declaration order.
//! 2. **Partition** — [`SweepPlan::shard`] splits a plan into `n`
//!    disjoint shards keyed by the stable ids, so `decarb-cli scenario
//!    run all --shards N --shard-index I` in `N` separate processes
//!    covers the plan exactly once with no coordination.
//! 3. **Execute** — [`SweepPlan::execute_with`] runs one shard against a
//!    shared [`TraceSet`] + [`PlannerCache`] with the chunked streaming
//!    sink the in-process engine always had.
//! 4. **Merge** — [`merge_reports`] recombines per-shard JSON reports
//!    into one document, detecting duplicate (overlapping shards),
//!    missing, and unexpected scenarios against the plan.
//!
//! The single-process path is the same pipeline with one shard, so
//! `scenario run all` and a sharded run produce identical per-scenario
//! reports by construction.

use decarb_json::Value;
use decarb_par::{par_map, thread_count};
use decarb_traces::TraceSet;

use crate::planner_cache::PlannerCache;
use crate::scenario::{Scenario, ScenarioReport};

/// One scenario in a plan, with its content-addressed id.
#[derive(Debug, Clone)]
pub struct PlannedScenario {
    /// Stable id: [`Scenario::content_id`] at plan time.
    pub id: String,
    /// The scenario itself.
    pub scenario: Scenario,
}

/// A planning or merge failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// One or more scenarios cannot run against the dataset; every
    /// offender is listed as `(name, reason)`.
    InvalidScenarios(Vec<(String, String)>),
    /// Two scenarios share a name (ambiguous reports).
    DuplicateName(String),
    /// `shard(shards, index)` called with `index >= shards` or zero
    /// shards.
    BadShard {
        /// Requested shard count.
        shards: usize,
        /// Requested shard index.
        index: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::InvalidScenarios(bad) => {
                writeln!(
                    f,
                    "{} scenario{} cannot run against the dataset:",
                    bad.len(),
                    if bad.len() == 1 { "" } else { "s" }
                )?;
                for (name, reason) in bad {
                    writeln!(f, "  {name}: {reason}")?;
                }
                Ok(())
            }
            SweepError::DuplicateName(name) => {
                write!(f, "duplicate scenario name `{name}` in the sweep")
            }
            SweepError::BadShard { shards, index } => {
                write!(f, "shard index {index} out of range for {shards} shard(s)")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// A validated, deterministic, stably-ordered sweep: the unit the
/// pipeline partitions, executes, and merges.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    entries: Vec<PlannedScenario>,
}

impl SweepPlan {
    /// Plans a sweep: validates every scenario against `data` (all
    /// failures are collected, none panic) and assigns stable
    /// content-addressed ids. Scenario order is preserved, so the same
    /// input always yields the same plan.
    pub fn plan(data: &TraceSet, scenarios: Vec<Scenario>) -> Result<SweepPlan, SweepError> {
        let mut invalid: Vec<(String, String)> = Vec::new();
        for scenario in &scenarios {
            if let Err(reason) = scenario.validate_against(data) {
                invalid.push((scenario.name.clone(), reason));
            }
        }
        if !invalid.is_empty() {
            return Err(SweepError::InvalidScenarios(invalid));
        }
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for scenario in &scenarios {
            if !seen.insert(scenario.name.as_str()) {
                return Err(SweepError::DuplicateName(scenario.name.clone()));
            }
        }
        Ok(SweepPlan {
            entries: scenarios
                .into_iter()
                .map(|scenario| PlannedScenario {
                    id: scenario.content_id(),
                    scenario,
                })
                .collect(),
        })
    }

    /// The planned scenarios, in plan order.
    pub fn entries(&self) -> &[PlannedScenario] {
        &self.entries
    }

    /// Number of scenarios in the plan.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the plan holds no scenarios (an empty shard is a
    /// valid plan).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scenario names in plan order (the merge stage's expectation).
    pub fn names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| e.scenario.name.clone())
            .collect()
    }

    /// Partitions the plan into shard `index` of `shards` disjoint
    /// shards, keyed by the stable content ids: scenario `s` lands in
    /// shard `id(s) mod shards`. The union of all shards is exactly the
    /// plan, shards are pairwise disjoint, and the assignment does not
    /// depend on plan order or on which process computes it.
    pub fn shard(&self, shards: usize, index: usize) -> Result<SweepPlan, SweepError> {
        if shards == 0 || index >= shards {
            return Err(SweepError::BadShard { shards, index });
        }
        Ok(SweepPlan {
            entries: self
                .entries
                .iter()
                .filter(|e| shard_of(&e.id, shards) == index)
                .cloned()
                .collect(),
        })
    }

    /// Executes the plan against `data`, fanning out across threads
    /// over one shared [`PlannerCache`], streaming each report to
    /// `sink` in plan order as its chunk completes. A `false` return
    /// from `sink` aborts after the current chunk.
    // decarb-analyze: hot-path
    pub fn execute_with(&self, data: &TraceSet, mut sink: impl FnMut(ScenarioReport) -> bool) {
        let cache = PlannerCache::new();
        let chunk = (thread_count() * 2).max(1);
        for batch in self.entries.chunks(chunk) {
            for report in par_map(batch, |entry| entry.scenario.run_cached(data, &cache)) {
                if !sink(report) {
                    return;
                }
            }
        }
    }

    /// Buffered [`SweepPlan::execute_with`]: all reports, in plan order.
    pub fn execute(&self, data: &TraceSet) -> Vec<ScenarioReport> {
        let mut reports = Vec::with_capacity(self.len());
        self.execute_with(data, |report| {
            reports.push(report);
            true
        });
        reports
    }
}

/// Which shard an id lands in: the id's 64-bit value modulo `shards`.
fn shard_of(id: &str, shards: usize) -> usize {
    let value = u64::from_str_radix(id, 16).unwrap_or_else(|_| {
        // Ids from `Scenario::content_id` are always 16 hex digits; a
        // foreign id still shards deterministically via a re-hash.
        id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    });
    (value % shards as u64) as usize
}

/// A merge failure: the shard reports do not recombine into the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A shard document is not a scenario report object/array.
    Malformed {
        /// Index of the offending document (argument order).
        doc: usize,
        /// What was wrong.
        message: String,
    },
    /// The same scenario appears in more than one report (overlapping
    /// shards, or the same shard merged twice).
    Duplicate(String),
    /// Scenarios the plan expects but no shard delivered.
    Missing(Vec<String>),
    /// Scenarios no plan entry accounts for (stale shard files).
    Unexpected(Vec<String>),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Malformed { doc, message } => {
                write!(f, "shard report #{doc}: {message}")
            }
            MergeError::Duplicate(name) => write!(
                f,
                "scenario `{name}` appears in more than one shard report (overlapping shards?)"
            ),
            MergeError::Missing(names) => write!(
                f,
                "{} scenario(s) missing from the merged shards: {}",
                names.len(),
                names.join(", ")
            ),
            MergeError::Unexpected(names) => write!(
                f,
                "{} scenario(s) not in the sweep plan: {}",
                names.len(),
                names.join(", ")
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges per-shard JSON report documents (each a report object or an
/// array of report objects, as emitted by `scenario run --json`) into
/// one flat report list.
///
/// Duplicates across shards are always an error. When `expected` names
/// are given (from [`SweepPlan::names`]), the merge also fails on
/// missing or unexpected scenarios and orders the output in plan order
/// — making a sharded sweep's merged report comparable entry-for-entry
/// with a single-process run. Without an expectation the output is
/// ordered by scenario name.
pub fn merge_reports(
    expected: Option<&[String]>,
    docs: &[Value],
) -> Result<Vec<Value>, MergeError> {
    // Hash-indexed throughout: the pipeline targets 10k+ scenario
    // sweeps, where linear rescans per entry would dominate the merge.
    let mut items: Vec<(String, Value)> = Vec::new();
    let mut by_name: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (doc_index, doc) in docs.iter().enumerate() {
        let keyed =
            decarb_json::merge_keyed(std::slice::from_ref(doc), "name").map_err(|message| {
                MergeError::Malformed {
                    doc: doc_index,
                    message,
                }
            })?;
        for (name, value) in keyed {
            if by_name.contains_key(&name) {
                return Err(MergeError::Duplicate(name));
            }
            by_name.insert(name.clone(), items.len());
            items.push((name, value));
        }
    }
    match expected {
        None => {
            items.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(items.into_iter().map(|(_, v)| v).collect())
        }
        Some(names) => {
            let expected_set: std::collections::HashSet<&str> =
                names.iter().map(String::as_str).collect();
            let unexpected: Vec<String> = items
                .iter()
                .filter(|(n, _)| !expected_set.contains(n.as_str()))
                .map(|(n, _)| n.clone())
                .collect();
            if !unexpected.is_empty() {
                return Err(MergeError::Unexpected(unexpected));
            }
            let mut slots: Vec<Option<Value>> = items.into_iter().map(|(_, v)| Some(v)).collect();
            let mut merged = Vec::with_capacity(names.len());
            let mut missing = Vec::new();
            for name in names {
                // A repeated expected name can only claim one report;
                // the second occurrence counts as missing.
                match by_name.get(name.as_str()).and_then(|&i| slots[i].take()) {
                    Some(value) => merged.push(value),
                    None => missing.push(name.clone()),
                }
            }
            if !missing.is_empty() {
                return Err(MergeError::Missing(missing));
            }
            Ok(merged)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        builtin_scenarios, find_scenario, ForecasterKind, OverheadKind, PolicyKind, RegionSpec,
    };
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_workloads::{Arrival, Slack, WorkloadSpec};

    fn small_plan(data: &TraceSet) -> SweepPlan {
        let scenarios: Vec<Scenario> = builtin_scenarios()
            .into_iter()
            .filter(|s| s.workload.label() == "batch")
            .collect();
        SweepPlan::plan(data, scenarios).unwrap()
    }

    #[test]
    fn plan_is_deterministic_and_content_addressed() {
        let data = builtin_dataset();
        let a = SweepPlan::plan(&data, builtin_scenarios()).unwrap();
        let b = SweepPlan::plan(&data, builtin_scenarios()).unwrap();
        assert_eq!(a.len(), 54);
        assert_eq!(a.names(), b.names());
        for (ea, eb) in a.entries().iter().zip(b.entries()) {
            assert_eq!(ea.id, eb.id, "{}", ea.scenario.name);
            assert_eq!(ea.id.len(), 16, "16 hex digits");
        }
        // Ids are unique across the whole matrix.
        let mut ids: Vec<&str> = a.entries().iter().map(|e| e.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
    }

    #[test]
    fn content_ids_track_every_outcome_field() {
        let base = find_scenario("batch-deferral-europe").unwrap();
        let id = base.content_id();
        let mut changed = base.clone();
        changed.slo_ms = 80.0;
        assert_ne!(changed.content_id(), id);
        let mut changed = base.clone();
        changed.forecaster = ForecasterKind::Naive;
        assert_ne!(changed.content_id(), id);
        let mut changed = base.clone();
        changed.horizon += 1;
        assert_ne!(changed.content_id(), id);
        let mut changed = base.clone();
        changed.overheads = OverheadKind::Realistic;
        assert_ne!(changed.content_id(), id);
        assert_eq!(base.content_id(), id, "id is a pure function");
    }

    #[test]
    fn plan_collects_every_invalid_scenario() {
        let data = builtin_dataset();
        let mut scenarios = vec![find_scenario("batch-agnostic-europe").unwrap()];
        for (name, zone) in [("lost-atlantis", "XX-AT"), ("lost-lemuria", "XX-LE")] {
            let mut bad = find_scenario("batch-agnostic-europe").unwrap();
            bad.name = name.to_string();
            bad.regions = RegionSpec::Custom {
                label: name.to_string(),
                codes: vec!["SE".into(), zone.into()],
            };
            scenarios.push(bad);
        }
        let err = SweepPlan::plan(&data, scenarios).unwrap_err();
        let SweepError::InvalidScenarios(bad) = &err else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(bad.len(), 2, "both bad scenarios collected");
        let text = err.to_string();
        assert!(
            text.contains("lost-atlantis") && text.contains("XX-AT"),
            "{text}"
        );
        assert!(
            text.contains("lost-lemuria") && text.contains("XX-LE"),
            "{text}"
        );
    }

    #[test]
    fn plan_rejects_duplicate_names() {
        let data = builtin_dataset();
        let s = find_scenario("batch-agnostic-europe").unwrap();
        let err = SweepPlan::plan(&data, vec![s.clone(), s]).unwrap_err();
        assert_eq!(
            err,
            SweepError::DuplicateName("batch-agnostic-europe".into())
        );
    }

    #[test]
    fn shards_partition_the_plan_exactly() {
        let data = builtin_dataset();
        let plan = SweepPlan::plan(&data, builtin_scenarios()).unwrap();
        for shards in [1usize, 2, 4, 7] {
            let mut covered: Vec<String> = Vec::new();
            for index in 0..shards {
                let shard = plan.shard(shards, index).unwrap();
                for entry in shard.entries() {
                    assert!(
                        !covered.contains(&entry.scenario.name),
                        "{} appears in two shards ({} shards)",
                        entry.scenario.name,
                        shards
                    );
                    covered.push(entry.scenario.name.clone());
                }
            }
            let mut expected = plan.names();
            covered.sort();
            expected.sort();
            assert_eq!(covered, expected, "union of {shards} shards == plan");
        }
        assert_eq!(plan.shard(1, 0).unwrap().len(), plan.len());
    }

    #[test]
    fn shard_assignment_is_stable_across_plans_and_orderings() {
        let data = builtin_dataset();
        let forward = SweepPlan::plan(&data, builtin_scenarios()).unwrap();
        let mut reversed_input = builtin_scenarios();
        reversed_input.reverse();
        let reversed = SweepPlan::plan(&data, reversed_input).unwrap();
        for index in 0..4 {
            let mut a: Vec<String> = forward.shard(4, index).unwrap().names();
            let mut b: Vec<String> = reversed.shard(4, index).unwrap().names();
            a.sort();
            b.sort();
            assert_eq!(a, b, "shard {index} membership ignores plan order");
        }
    }

    #[test]
    fn bad_shard_requests_error() {
        let data = builtin_dataset();
        let plan = small_plan(&data);
        assert_eq!(
            plan.shard(4, 4).unwrap_err(),
            SweepError::BadShard {
                shards: 4,
                index: 4
            }
        );
        assert_eq!(
            plan.shard(0, 0).unwrap_err(),
            SweepError::BadShard {
                shards: 0,
                index: 0
            }
        );
    }

    #[test]
    fn executing_all_shards_merges_back_to_the_single_process_run() {
        let data = builtin_dataset();
        let plan = small_plan(&data);
        let single: Vec<Value> = plan.execute(&data).iter().map(|r| r.to_json()).collect();
        let mut shard_docs = Vec::new();
        for index in 0..3 {
            let shard = plan.shard(3, index).unwrap();
            let reports: Vec<Value> = shard.execute(&data).iter().map(|r| r.to_json()).collect();
            shard_docs.push(Value::Array(reports));
        }
        let names = plan.names();
        let merged = merge_reports(Some(&names), &shard_docs).unwrap();
        assert_eq!(merged.len(), single.len());
        // Byte-identical per scenario up to wall-clock `elapsed_s`.
        let strip = |v: &Value| -> Value {
            let Value::Object(pairs) = v else {
                panic!("report is an object")
            };
            Value::Object(
                pairs
                    .iter()
                    .filter(|(k, _)| k != "elapsed_s")
                    .cloned()
                    .collect(),
            )
        };
        for (m, s) in merged.iter().zip(&single) {
            assert_eq!(strip(m), strip(s));
        }
    }

    #[test]
    fn merge_detects_duplicates_missing_and_unexpected() {
        let a = Value::Array(vec![Value::object([
            ("name", Value::from("s1")),
            ("emissions_g", Value::from(1.0)),
        ])]);
        let b = Value::Array(vec![Value::object([
            ("name", Value::from("s2")),
            ("emissions_g", Value::from(2.0)),
        ])]);
        let expected: Vec<String> = vec!["s1".into(), "s2".into()];
        // Round trip.
        let merged = merge_reports(Some(&expected), &[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].get("name"), Some(&Value::from("s1")));
        // Overlapping shards.
        let err = merge_reports(Some(&expected), &[a.clone(), a.clone()]).unwrap_err();
        assert_eq!(err, MergeError::Duplicate("s1".into()));
        // Missing scenario.
        let err = merge_reports(Some(&expected), std::slice::from_ref(&a)).unwrap_err();
        assert_eq!(err, MergeError::Missing(vec!["s2".into()]));
        // Unexpected scenario.
        let only_s1: Vec<String> = vec!["s1".into()];
        let err = merge_reports(Some(&only_s1), &[a.clone(), b.clone()]).unwrap_err();
        assert_eq!(err, MergeError::Unexpected(vec!["s2".into()]));
        // Plan-less merge sorts by name and still rejects duplicates.
        let merged = merge_reports(None, &[b.clone(), a.clone()]).unwrap();
        assert_eq!(merged[0].get("name"), Some(&Value::from("s1")));
        assert!(merge_reports(None, &[a.clone(), a]).is_err());
        // Malformed documents name the offending file.
        let err = merge_reports(None, &[Value::from(3.0)]).unwrap_err();
        assert!(
            matches!(err, MergeError::Malformed { doc: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn empty_shards_execute_and_merge_cleanly() {
        let data = builtin_dataset();
        // A one-scenario plan sharded 4 ways leaves three empty shards.
        let scenario = Scenario {
            name: "lone".into(),
            workload: WorkloadSpec::Batch {
                per_origin: 1,
                arrival: Arrival::fixed(24),
                length_hours: 2.0,
                slack: Slack::Day,
                interruptible: true,
            },
            policy: PolicyKind::CarbonAgnostic,
            regions: RegionSpec::Custom {
                label: "se".into(),
                codes: vec!["SE".into()],
            },
            overheads: OverheadKind::Zero,
            capacity_per_region: 8,
            forecaster: ForecasterKind::Seasonal,
            slo_ms: 120.0,
            start: year_start(2022),
            horizon: 48,
        };
        let plan = SweepPlan::plan(&data, vec![scenario]).unwrap();
        let mut docs = Vec::new();
        let mut non_empty = 0;
        for index in 0..4 {
            let shard = plan.shard(4, index).unwrap();
            non_empty += usize::from(!shard.is_empty());
            let reports: Vec<Value> = shard.execute(&data).iter().map(|r| r.to_json()).collect();
            docs.push(Value::Array(reports));
        }
        assert_eq!(non_empty, 1);
        let names = plan.names();
        let merged = merge_reports(Some(&names), &docs).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].get("name"), Some(&Value::from("lone")));
    }
}
