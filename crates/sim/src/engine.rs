//! The discrete-event simulation engine.
//!
//! On hourly datasets, time advances in one-hour steps (the legacy
//! path, bit-for-bit stable). Each step processes, in order: arrivals →
//! planned starts → run-set selection (capacity and suspend decisions)
//! → execution and accounting. Planned starts live in an event calendar
//! keyed by hour, so deferring policies cost nothing until their chosen
//! start arrives.
//!
//! On sub-hourly datasets the axis is *slots* ([`TraceSet::resolution`])
//! and the engine steps event-driven by default ([`Stepping::Auto`]):
//! it jumps straight to the next structural boundary — arrival, planned
//! start, completion, policy decision point (hour boundary), forced
//! deadline flip, trace-coverage edge, or horizon end — and accrues the
//! emissions of every skipped slot in one batched prefix-sum query per
//! running job. Idle or steady spans therefore cost O(1) instead of
//! O(slots-per-hour), which keeps a 5-minute year (105 k slots) within
//! a small factor of the hourly run instead of 12×.
//!
//! All region handling is by interned [`RegionId`]: datacenters live in
//! a dense slice (ordered lexicographically by zone code so accounting
//! order is deterministic), region→datacenter resolution is a flat
//! id-indexed table, and per-region emissions accumulate into a dense
//! buffer — the step loop performs no string hashing at all.

use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;

use decarb_traces::{ChunkedPrefix, Hour, RegionId, Resolution, TimeSeries, TraceSet};
use decarb_workloads::Job;

use crate::accounting::{CompletedJob, SimReport};
use crate::cluster::{slot_in, CloudView, Datacenter, RunningJob};
use crate::overheads::OverheadModel;
use crate::policy::Policy;

/// How the engine advances time on sub-hourly datasets.
///
/// Hourly datasets always use the legacy hour-stepped loop — its float
/// accumulation order is part of the golden-report contract — so this
/// knob only affects runs whose [`TraceSet::resolution`] is finer than
/// one hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stepping {
    /// Event-driven on sub-hourly axes, hour-stepped on hourly ones.
    #[default]
    Auto,
    /// Step every slot, even at 5-minute resolution. The reference
    /// semantics the event-driven mode is tested against, and the
    /// baseline the `sim/subhourly_year` bench compares with.
    SlotPerSlot,
    /// Jump between structural events, accruing skipped spans through
    /// prefix sums (same results as [`Stepping::SlotPerSlot`] on
    /// integer-valued traces; within float tolerance otherwise).
    EventDriven,
}

/// Simulation parameters.
///
/// `start` and `horizon` are expressed on the dataset's axis: hours for
/// hourly traces, *slots* for sub-hourly ones (a 5-minute dataset's
/// `horizon` counts 5-minute slots). `decarb-sim`'s scenario layer does
/// this conversion from wall-clock hours once at the edge.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// First simulated hour (slot index on sub-hourly axes).
    pub start: Hour,
    /// Number of slots to simulate.
    pub horizon: usize,
    /// Capacity (concurrent running jobs) of every datacenter.
    pub capacity_per_region: usize,
    /// Energy overheads for suspend/resume/migration transitions
    /// (defaults to the paper's zero-overhead idealization).
    pub overheads: OverheadModel,
    /// Time-advance strategy for sub-hourly datasets.
    pub stepping: Stepping,
}

impl SimConfig {
    /// Creates a zero-overhead configuration (the paper's idealization).
    pub fn new(start: Hour, horizon: usize, capacity_per_region: usize) -> Self {
        Self {
            start,
            horizon,
            capacity_per_region,
            overheads: OverheadModel::ZERO,
            stepping: Stepping::Auto,
        }
    }

    /// Replaces the overhead model (builder style).
    pub fn with_overheads(mut self, overheads: OverheadModel) -> Self {
        self.overheads = overheads;
        self
    }

    /// Replaces the stepping strategy (builder style).
    pub fn with_stepping(mut self, stepping: Stepping) -> Self {
        self.stepping = stepping;
        self
    }
}

/// A calendar entry: a job admitted to `region` that should start at
/// `start`.
#[derive(Debug)]
struct PlannedStart {
    start: Hour,
    seq: u64,
    job: Job,
    region: RegionId,
}

impl PartialEq for PlannedStart {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start && self.seq == other.seq
    }
}
impl Eq for PlannedStart {}
impl PartialOrd for PlannedStart {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PlannedStart {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need earliest first.
        other.start.cmp(&self.start).then(other.seq.cmp(&self.seq))
    }
}

/// The simulator: datacenters, an event calendar, and a policy-driven run
/// loop.
pub struct Simulator<'a> {
    traces: &'a TraceSet,
    config: SimConfig,
    /// Datacenters in lexicographic zone-code order.
    datacenters: Vec<Datacenter>,
    /// [`RegionId::index`]-indexed map into `datacenters`.
    slot_of: Vec<Option<u16>>,
    calendar: BinaryHeap<PlannedStart>,
    seq: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with one datacenter per region in `regions`.
    ///
    /// # Panics
    ///
    /// Panics if a region id does not belong to `traces`' table.
    pub fn new(traces: &'a TraceSet, regions: &[RegionId], config: SimConfig) -> Self {
        let mut ids: Vec<RegionId> = regions.to_vec();
        ids.sort_by(|a, b| traces.code(*a).cmp(traces.code(*b)));
        ids.dedup();
        let mut slot_of = vec![None; traces.len()];
        let datacenters: Vec<Datacenter> = ids
            .iter()
            .enumerate()
            .map(|(slot, &id)| {
                slot_of[id.index()] = Some(slot as u16);
                Datacenter::new(id, config.capacity_per_region)
            })
            .collect();
        Self {
            traces,
            config,
            datacenters,
            slot_of,
            calendar: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Runs `jobs` (sorted or unsorted by arrival) under `policy` and
    /// returns the aggregate report.
    ///
    /// Jobs whose arrival lies outside the simulated horizon are counted
    /// as unfinished, as are jobs whose planned start lands at or past
    /// the horizon end (they are never admitted). Jobs arriving before
    /// the simulated window are treated as arriving at its first hour.
    ///
    /// Hourly datasets take the legacy hour-stepped loop; sub-hourly
    /// datasets step on the slot axis, either slot-per-slot or
    /// event-driven depending on [`SimConfig::stepping`].
    // decarb-analyze: hot-path
    pub fn run<P: Policy + ?Sized>(&mut self, policy: &mut P, jobs: &[Job]) -> SimReport {
        let resolution = self.traces.resolution();
        if resolution.is_hourly() {
            return self.run_hourly(policy, jobs);
        }
        match self.config.stepping {
            Stepping::SlotPerSlot => self.run_subhourly(policy, jobs, resolution, 1),
            Stepping::Auto | Stepping::EventDriven => {
                self.run_subhourly(policy, jobs, resolution, usize::MAX)
            }
        }
    }

    /// The legacy hour-stepped loop. Accumulation order here is part of
    /// the golden-report contract: hourly runs must stay bit-for-bit
    /// stable across releases, so this path is kept byte-identical and
    /// all sub-hourly arithmetic lives in [`Simulator::run_subhourly`].
    fn run_hourly<P: Policy + ?Sized>(&mut self, policy: &mut P, jobs: &[Job]) -> SimReport {
        let mut report = SimReport::default();
        // Sorted descending so each arrival is *moved* off the tail in
        // arrival order — no per-job clone on the placement hot path.
        let mut arrivals: Vec<Job> = jobs.to_vec();
        arrivals.sort_by_key(|j| std::cmp::Reverse((j.arrival, j.id)));
        let end = self.config.start.plus(self.config.horizon);
        let mut never_admitted = 0usize;
        let dc_count = self.datacenters.len();

        // Hoisted trace lookups: one series resolution per datacenter
        // for the whole run, refreshed into a per-hour CI buffer shared
        // by the run-set selection and execution phases. Per-region
        // emissions accumulate into a dense per-datacenter buffer and
        // fold into the report's map once at the end; only migration
        // overheads (charged at arbitrary origin regions) touch the map
        // mid-run.
        let dc_series: Vec<Option<&TimeSeries>> = self
            .datacenters
            .iter()
            .map(|dc| self.traces.try_series_by_id(dc.region))
            .collect();
        let mut ci_now: Vec<Option<f64>> = vec![None; dc_count];
        let mut dc_emissions: Vec<f64> = vec![0.0; dc_count];
        let mut decisions: Vec<bool> = Vec::with_capacity(self.config.capacity_per_region * 2);
        let mut finished: Vec<usize> = Vec::with_capacity(self.config.capacity_per_region * 2);

        for step in 0..self.config.horizon {
            let now = self.config.start.plus(step);
            for (slot, series) in ci_now.iter_mut().zip(&dc_series) {
                *slot = series.and_then(|s| s.at(now));
            }

            // 1. Place arrivals for this hour.
            while let Some(job) = arrivals.pop_if(|j| j.arrival <= now) {
                let placement = {
                    let view = CloudView {
                        datacenters: &self.datacenters,
                        slot_of: &self.slot_of,
                        traces: self.traces,
                        now,
                    };
                    policy.place(&job, &view)
                };
                let region = if slot_in(&self.slot_of, placement.region).is_some() {
                    placement.region
                } else {
                    job.origin
                };
                let start = placement.start.max(now);
                if start >= end {
                    // A start at or past the horizon end can never run;
                    // count it unfinished instead of parking it in the
                    // calendar.
                    never_admitted += 1;
                    continue;
                }
                self.seq += 1;
                self.calendar.push(PlannedStart {
                    start,
                    seq: self.seq,
                    job,
                    region,
                });
            }

            // 2. Admit planned starts due now; migrations (destination ≠
            // origin) pay the state-copy overhead at the origin's current
            // CI — the state leaves the origin's servers.
            while let Some(top) = self.calendar.peek_mut() {
                if top.start > now {
                    break;
                }
                let planned = PeekMut::pop(top);
                if planned.region != planned.job.origin {
                    report.migrations += 1;
                    let kwh = self.config.overheads.migration_kwh();
                    if kwh > 0.0 {
                        let ci = self
                            .traces
                            .try_series_by_id(planned.job.origin)
                            .and_then(|s| s.at(now))
                            .or_else(|| {
                                self.traces
                                    .try_series_by_id(planned.region)
                                    .and_then(|s| s.at(now))
                            })
                            .unwrap_or(0.0);
                        report.overhead_kwh += kwh;
                        report.overhead_g += kwh * ci;
                        report.total_energy_kwh += kwh;
                        report.total_emissions_g += kwh * ci;
                        *report.per_region_g.entry(planned.job.origin).or_insert(0.0) += kwh * ci;
                    }
                }
                // Placement is validated at arrival time, so a missing
                // slot here means an inconsistent table; count the job
                // unfinished rather than crashing the whole shard.
                let Some(slot) = slot_in(&self.slot_of, planned.region) else {
                    never_admitted += 1;
                    continue;
                };
                self.datacenters[slot]
                    .jobs
                    .push(RunningJob::admitted(planned.job));
            }

            // 3. Select the run set for each datacenter.
            for k in 0..dc_count {
                decisions.clear();
                {
                    let dc = &self.datacenters[k];
                    let view = CloudView {
                        datacenters: &self.datacenters,
                        slot_of: &self.slot_of,
                        traces: self.traces,
                        now,
                    };
                    decisions.extend(dc.jobs.iter().map(|rj| {
                        if !rj.job.interruptible {
                            return true;
                        }
                        let deadline = rj.job.arrival.plus(rj.job.window_hours());
                        policy.should_run(&rj.job, rj.remaining_slots, deadline, &view)
                    }));
                }
                let ci_here = ci_now[k].unwrap_or(0.0);
                let dc = &mut self.datacenters[k];
                let mut running = 0usize;
                let mut suspends = 0usize;
                let mut resumes = 0usize;
                for (rj, want_run) in dc.jobs.iter_mut().zip(&decisions) {
                    let was_suspended = rj.suspended;
                    if *want_run && running < dc.capacity {
                        if was_suspended && rj.has_run() {
                            resumes += 1;
                        }
                        rj.suspended = false;
                        running += 1;
                    } else {
                        if !was_suspended && rj.remaining_slots > 0 {
                            suspends += 1;
                        }
                        rj.suspended = true;
                    }
                }
                report.suspends += suspends;
                report.resumes += resumes;
                // Checkpoint/restore energy is drawn in this region at
                // this hour.
                let kwh = suspends as f64 * self.config.overheads.suspend_kwh
                    + resumes as f64 * self.config.overheads.resume_kwh;
                if kwh > 0.0 {
                    report.overhead_kwh += kwh;
                    report.overhead_g += kwh * ci_here;
                    report.total_energy_kwh += kwh;
                    report.total_emissions_g += kwh * ci_here;
                    dc_emissions[k] += kwh * ci_here;
                }
            }

            // 4. Execute and account.
            for k in 0..dc_count {
                let dc = &mut self.datacenters[k];
                let Some(ci) = ci_now[k] else {
                    // Trace coverage does not reach this hour: jobs
                    // selected to run can neither execute nor be
                    // accounted. Record the stall instead of silently
                    // freezing them.
                    report.stalled_hours += dc.jobs.iter().filter(|rj| !rj.suspended).count();
                    continue;
                };
                finished.clear();
                for (i, rj) in dc.jobs.iter_mut().enumerate() {
                    if rj.suspended {
                        continue;
                    }
                    if rj.started.is_none() {
                        rj.started = Some(now);
                    }
                    // Fractional jobs draw proportionally less energy in
                    // their single slot.
                    let energy = rj.job.length_hours / rj.job.length_slots() as f64;
                    rj.emitted_g += ci * energy;
                    report.total_energy_kwh += energy;
                    report.total_emissions_g += ci * energy;
                    dc_emissions[k] += ci * energy;
                    rj.remaining_slots -= 1;
                    if rj.remaining_slots == 0 {
                        finished.push(i);
                    }
                }
                for &i in finished.iter().rev() {
                    let rj = dc.jobs.swap_remove(i);
                    let deadline = rj.job.arrival.plus(rj.job.window_hours());
                    report.completed.push(CompletedJob {
                        region: dc.region,
                        started: rj.started.unwrap_or(now),
                        finished: now,
                        emitted_g: rj.emitted_g,
                        // The window covers hours [arrival, deadline);
                        // finishing in the last window hour (deadline-1)
                        // is on time, and zero-slack jobs delayed past
                        // their own length (e.g. by queueing) miss too.
                        missed_deadline: now >= deadline,
                        job: rj.job,
                    });
                }
            }
        }

        // Fold the dense per-datacenter ledger into the report's map.
        for (k, &g) in dc_emissions.iter().enumerate() {
            if g != 0.0 {
                *report
                    .per_region_g
                    .entry(self.datacenters[k].region)
                    .or_insert(0.0) += g;
            }
        }

        // Whatever remains anywhere is unfinished: jobs still holding
        // work in a datacenter, planned starts not yet due, jobs whose
        // plan fell past the horizon, and arrivals never reached.
        report.unfinished = self
            .datacenters
            .iter()
            .map(|dc| dc.jobs.len())
            .sum::<usize>()
            + self.calendar.len()
            + never_admitted
            + arrivals.len();
        report
    }

    /// The sub-hourly slot-axis loop, shared by [`Stepping::SlotPerSlot`]
    /// (`max_span = 1`) and [`Stepping::EventDriven`] (unbounded spans).
    ///
    /// Differences from the hourly path, all activated only here so the
    /// golden hourly reports stay byte-stable:
    ///
    /// * **Slot domain** — `config.start`/`horizon`, arrivals, planned
    ///   starts, and deadlines are slot indices; wall-clock job shapes
    ///   convert once via `Job::{length,slack,window}_slots_at`.
    /// * **Hourly decision cadence** — `Policy::should_run` is consulted
    ///   at hour boundaries (and once at admission), its verdict cached
    ///   on the [`RunningJob`] and replayed in between; an engine-side
    ///   forced-deadline check still runs every slot so deadlines keep
    ///   slot precision.
    /// * **Exact span accounting** — executed slots accumulate raw CI
    ///   into `RunningJob::ci_sum` (per slot, or per span through a
    ///   [`ChunkedPrefix`] query); emissions and energy convert once per
    ///   job as `(ci_sum · length_hours) / length_slots` and
    ///   `(slots_run · length_hours) / length_slots`, multiply before
    ///   divide. On integer-valued traces this is exact, which is what
    ///   makes a 12×-repeated 5-minute trace reproduce the hourly run
    ///   bit for bit.
    /// * **Event-driven spans** — time jumps to the next structural
    ///   boundary: arrival, planned start, completion, hour boundary
    ///   (only while interruptible jobs are admitted), forced-deadline
    ///   flip of a suspended job, trace-coverage edge, or horizon end.
    ///   Run sets are provably stable between those boundaries, so the
    ///   skipped slots differ only by accrual, done in O(1) per job.
    // decarb-analyze: hot-path
    fn run_subhourly<P: Policy + ?Sized>(
        &mut self,
        policy: &mut P,
        jobs: &[Job],
        resolution: Resolution,
        max_span: usize,
    ) -> SimReport {
        let mut report = SimReport {
            resolution,
            ..SimReport::default()
        };
        let mut arrivals: Vec<Job> = jobs.to_vec();
        arrivals.sort_by_key(|j| std::cmp::Reverse((j.arrival, j.id)));
        let end = self.config.start.plus(self.config.horizon);
        let mut never_admitted = 0usize;
        let dc_count = self.datacenters.len();
        let sph = resolution.slots_per_hour() as u32;

        let dc_series: Vec<Option<&TimeSeries>> = self
            .datacenters
            .iter()
            .map(|dc| self.traces.try_series_by_id(dc.region))
            .collect();
        // One blocked prefix sum per covered datacenter: span accrual is
        // two O(1) lookups however many slots the span covers. The
        // structures live in the dataset's shared cache, so repeated
        // runs (a scenario matrix, a bench loop) build each one once.
        let dc_prefix: Vec<Option<&ChunkedPrefix>> = self
            .datacenters
            .iter()
            .map(|dc| self.traces.try_chunked_prefix_by_id(dc.region))
            .collect();
        let mut dc_emissions: Vec<f64> = vec![0.0; dc_count];
        let mut verdicts: Vec<bool> = Vec::with_capacity(self.config.capacity_per_region * 2);
        let mut finished: Vec<usize> = Vec::with_capacity(self.config.capacity_per_region * 2);
        let deadline_of = |job: &Job| -> Hour { job.arrival.plus(job.window_slots_at(resolution)) };

        let mut now = self.config.start;
        while now < end {
            let hour_boundary = now.0.is_multiple_of(sph);

            // 1. Place arrivals due now.
            while let Some(job) = arrivals.pop_if(|j| j.arrival <= now) {
                let placement = {
                    let view = CloudView {
                        datacenters: &self.datacenters,
                        slot_of: &self.slot_of,
                        traces: self.traces,
                        now,
                    };
                    policy.place(&job, &view)
                };
                let region = if slot_in(&self.slot_of, placement.region).is_some() {
                    placement.region
                } else {
                    job.origin
                };
                let start = placement.start.max(now);
                if start >= end {
                    never_admitted += 1;
                    continue;
                }
                self.seq += 1;
                self.calendar.push(PlannedStart {
                    start,
                    seq: self.seq,
                    job,
                    region,
                });
            }

            // 2. Admit planned starts due now (migration overheads as on
            // the hourly path, charged at the origin's CI this slot).
            while let Some(top) = self.calendar.peek_mut() {
                if top.start > now {
                    break;
                }
                let planned = PeekMut::pop(top);
                if planned.region != planned.job.origin {
                    report.migrations += 1;
                    let kwh = self.config.overheads.migration_kwh();
                    if kwh > 0.0 {
                        let ci = self
                            .traces
                            .try_series_by_id(planned.job.origin)
                            .and_then(|s| s.at(now))
                            .or_else(|| {
                                self.traces
                                    .try_series_by_id(planned.region)
                                    .and_then(|s| s.at(now))
                            })
                            .unwrap_or(0.0);
                        report.overhead_kwh += kwh;
                        report.overhead_g += kwh * ci;
                        report.total_energy_kwh += kwh;
                        report.total_emissions_g += kwh * ci;
                        *report.per_region_g.entry(planned.job.origin).or_insert(0.0) += kwh * ci;
                    }
                }
                let Some(slot) = slot_in(&self.slot_of, planned.region) else {
                    never_admitted += 1;
                    continue;
                };
                self.datacenters[slot]
                    .jobs
                    .push(RunningJob::admitted_at(planned.job, resolution));
            }

            // 3. Select the run set. Interruptible verdicts refresh at
            // hour boundaries (and at admission), replay otherwise; the
            // forced-deadline check keeps slot precision either way.
            for k in 0..dc_count {
                verdicts.clear();
                {
                    let dc = &self.datacenters[k];
                    let view = CloudView {
                        datacenters: &self.datacenters,
                        slot_of: &self.slot_of,
                        traces: self.traces,
                        now,
                    };
                    verdicts.extend(dc.jobs.iter().map(|rj| {
                        if !rj.job.interruptible {
                            return true;
                        }
                        if hour_boundary || rj.decision_pending {
                            policy.should_run(
                                &rj.job,
                                rj.remaining_slots,
                                deadline_of(&rj.job),
                                &view,
                            )
                        } else {
                            rj.cached_decision
                        }
                    }));
                }
                let ci_here = dc_series[k].and_then(|s| s.at(now)).unwrap_or(0.0);
                let dc = &mut self.datacenters[k];
                let mut running = 0usize;
                let mut suspends = 0usize;
                let mut resumes = 0usize;
                for (rj, &verdict) in dc.jobs.iter_mut().zip(&verdicts) {
                    let want_run = if rj.job.interruptible {
                        rj.cached_decision = verdict;
                        rj.decision_pending = false;
                        verdict || now.plus(rj.remaining_slots) >= deadline_of(&rj.job)
                    } else {
                        true
                    };
                    let was_suspended = rj.suspended;
                    if want_run && running < dc.capacity {
                        if was_suspended && rj.has_run() {
                            resumes += 1;
                        }
                        rj.suspended = false;
                        running += 1;
                    } else {
                        if !was_suspended && rj.remaining_slots > 0 {
                            suspends += 1;
                        }
                        rj.suspended = true;
                    }
                }
                report.suspends += suspends;
                report.resumes += resumes;
                let kwh = suspends as f64 * self.config.overheads.suspend_kwh
                    + resumes as f64 * self.config.overheads.resume_kwh;
                if kwh > 0.0 {
                    report.overhead_kwh += kwh;
                    report.overhead_g += kwh * ci_here;
                    report.total_energy_kwh += kwh;
                    report.total_emissions_g += kwh * ci_here;
                    dc_emissions[k] += kwh * ci_here;
                }
            }

            // 4. Find the next structural boundary. Every candidate is
            // strictly past `now`, so spans always advance.
            let span = if max_span == 1 {
                1
            } else {
                let mut next = end.0;
                if let Some(job) = arrivals.last() {
                    next = next.min(job.arrival.0.max(now.0 + 1));
                }
                if let Some(top) = self.calendar.peek() {
                    next = next.min(top.start.0.max(now.0 + 1));
                }
                let mut any_interruptible = false;
                for (k, dc) in self.datacenters.iter().enumerate() {
                    for rj in &dc.jobs {
                        if rj.job.interruptible {
                            any_interruptible = true;
                        }
                        if !rj.suspended {
                            next = next.min(now.0 + rj.remaining_slots as u32);
                        } else if rj.job.interruptible && !rj.cached_decision {
                            // A suspended job's forced-deadline flip is
                            // predictable: remaining stays constant, so
                            // it fires at deadline − remaining.
                            let flip = deadline_of(&rj.job)
                                .0
                                .saturating_sub(rj.remaining_slots as u32);
                            if flip > now.0 {
                                next = next.min(flip);
                            }
                        }
                    }
                    if let Some(series) = dc_series[k] {
                        let cover_start = series.start().0;
                        let cover_end = cover_start + series.values().len() as u32;
                        if cover_start > now.0 {
                            next = next.min(cover_start);
                        }
                        if cover_end > now.0 {
                            next = next.min(cover_end);
                        }
                    }
                }
                if any_interruptible {
                    // Verdicts refresh each hour, so never skip past one.
                    next = next.min(now.0 - now.0 % sph + sph);
                }
                (next.max(now.0 + 1) - now.0) as usize
            };

            // 5. Execute the span and account completions.
            for k in 0..dc_count {
                let dc = &mut self.datacenters[k];
                let covered = dc_series[k].is_some_and(|s| s.at(now).is_some());
                if !covered {
                    report.stalled_hours +=
                        span * dc.jobs.iter().filter(|rj| !rj.suspended).count();
                    continue;
                }
                // `covered` implies the series — and therefore the
                // prefix built from it — exists.
                let Some(prefix) = dc_prefix[k].as_ref() else {
                    continue;
                };
                finished.clear();
                for (i, rj) in dc.jobs.iter_mut().enumerate() {
                    if rj.suspended {
                        continue;
                    }
                    if rj.started.is_none() {
                        rj.started = Some(now);
                    }
                    rj.ci_sum += prefix.sum(now, span);
                    rj.remaining_slots -= span;
                    if rj.remaining_slots == 0 {
                        finished.push(i);
                    }
                }
                for &i in finished.iter().rev() {
                    let rj = dc.jobs.swap_remove(i);
                    let slots = rj.job.length_slots_at(resolution) as f64;
                    let emitted = (rj.ci_sum * rj.job.length_hours) / slots;
                    let energy = rj.job.length_hours;
                    report.total_energy_kwh += energy;
                    report.total_emissions_g += emitted;
                    dc_emissions[k] += emitted;
                    let finished_at = now.plus(span - 1);
                    report.completed.push(CompletedJob {
                        region: dc.region,
                        started: rj.started.unwrap_or(now),
                        finished: finished_at,
                        emitted_g: emitted,
                        missed_deadline: finished_at >= deadline_of(&rj.job),
                        job: rj.job,
                    });
                }
            }

            now = now.plus(span);
        }

        // Partial work of unfinished jobs is still accounted, pro rata
        // over the slots actually executed.
        for (k, dc) in self.datacenters.iter().enumerate() {
            for rj in &dc.jobs {
                let slots = rj.job.length_slots_at(resolution);
                let run = slots - rj.remaining_slots;
                if run > 0 {
                    let energy = (run as f64 * rj.job.length_hours) / slots as f64;
                    let emitted = (rj.ci_sum * rj.job.length_hours) / slots as f64;
                    report.total_energy_kwh += energy;
                    report.total_emissions_g += emitted;
                    dc_emissions[k] += emitted;
                }
            }
        }

        for (k, &g) in dc_emissions.iter().enumerate() {
            if g != 0.0 {
                *report
                    .per_region_g
                    .entry(self.datacenters[k].region)
                    .or_insert(0.0) += g;
            }
        }

        report.unfinished = self
            .datacenters
            .iter()
            .map(|dc| dc.jobs.len())
            .sum::<usize>()
            + self.calendar.len()
            + never_admitted
            + arrivals.len();
        report
    }

    /// Returns a datacenter by region id (for inspection in tests).
    pub fn datacenter(&self, id: RegionId) -> Option<&Datacenter> {
        Some(&self.datacenters[slot_in(&self.slot_of, id)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CarbonAgnostic, GreenestRouter, PlannedDeferral, ThresholdSuspend};
    use decarb_core::temporal::TemporalPlanner;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    /// Named policy constructors for the axis-equivalence tests.
    type PolicyTable = Vec<(&'static str, fn() -> Box<dyn Policy>)>;

    fn config(horizon: usize) -> SimConfig {
        SimConfig::new(year_start(2022), horizon, 4)
    }

    fn ids(traces: &TraceSet, codes: &[&str]) -> Vec<RegionId> {
        codes.iter().map(|c| traces.id_of(c).unwrap()).collect()
    }

    #[test]
    fn suspend_resume_overheads_are_charged() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["US-CA"]);
        let start = year_start(2022);
        let job = Job::batch(1, rs[0], start, 12.0, Slack::TenX).with_interruptible();
        // Ideal run.
        let mut ideal_sim = Simulator::new(&traces, &rs, config(24 * 30));
        let ideal = ideal_sim.run(&mut ThresholdSuspend::default(), std::slice::from_ref(&job));
        // Same policy, but every transition costs energy.
        let model = OverheadModel {
            suspend_kwh: 0.05,
            resume_kwh: 0.05,
            ..OverheadModel::ZERO
        };
        let mut costed_sim = Simulator::new(&traces, &rs, config(24 * 30).with_overheads(model));
        let costed = costed_sim.run(&mut ThresholdSuspend::default(), &[job]);
        // Decisions are identical (the policy does not see overheads), so
        // transition counts match and only the accounting differs.
        assert_eq!(ideal.suspends, costed.suspends);
        assert_eq!(ideal.resumes, costed.resumes);
        assert!(ideal.suspends > 0, "diurnal CA trace must cause suspends");
        assert_eq!(ideal.overhead_g, 0.0);
        assert!(costed.overhead_g > 0.0);
        let expected_kwh = 0.05 * (costed.suspends + costed.resumes) as f64;
        assert!((costed.overhead_kwh - expected_kwh).abs() < 1e-9);
        assert!(
            costed.total_emissions_g > ideal.total_emissions_g,
            "overheads must raise total emissions"
        );
        assert!(
            (costed.total_emissions_g - ideal.total_emissions_g - costed.overhead_g).abs() < 1e-6
        );
    }

    #[test]
    fn migration_overhead_charged_at_origin() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE", "IN-WE"]);
        let in_we = rs[1];
        let start = year_start(2022);
        let job = Job::batch(1, in_we, start, 4.0, Slack::None);
        let model = OverheadModel {
            migrate_kwh_per_gb: 0.05,
            state_gb: 50.0,
            ..OverheadModel::ZERO
        };
        let mut sim = Simulator::new(&traces, &rs, config(100).with_overheads(model));
        let report = sim.run(&mut GreenestRouter, &[job]);
        assert_eq!(report.completed_count(), 1);
        assert_eq!(report.migrations, 1);
        assert!((report.overhead_kwh - 2.5).abs() < 1e-12);
        // Charged at the origin's CI at the migration hour.
        let origin_ci = traces.series("IN-WE").unwrap().get(start);
        assert!((report.overhead_g - 2.5 * origin_ci).abs() < 1e-9);
        // The per-region ledger bills the origin.
        assert!((report.per_region_g[&in_we] - 2.5 * origin_ci).abs() < 1e-9);
    }

    #[test]
    fn local_jobs_pay_no_migration_overhead() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let start = year_start(2022);
        let model = OverheadModel::realistic();
        let mut sim = Simulator::new(&traces, &rs, config(50).with_overheads(model));
        let report = sim.run(
            &mut CarbonAgnostic,
            &[Job::batch(1, rs[0], start, 3.0, Slack::None)],
        );
        assert_eq!(report.migrations, 0);
        assert_eq!(report.suspends, 0);
        assert_eq!(report.overhead_g, 0.0);
    }

    #[test]
    fn completed_jobs_record_start_and_wait() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["US-CA"]);
        let start = year_start(2022);
        let job = Job::batch(9, rs[0], start, 2.0, Slack::Day);
        let mut sim = Simulator::new(&traces, &rs, config(24 * 3));
        let report = sim.run(&mut PlannedDeferral, &[job]);
        assert_eq!(report.completed_count(), 1);
        let c = &report.completed[0];
        assert!(c.started >= start);
        assert_eq!(c.wait_hours() as u32, c.started.0 - start.0);
        assert!(c.slowdown() >= 1.0);
        assert!(report.mean_slowdown() >= 1.0);
    }

    #[test]
    fn agnostic_job_emissions_match_trace() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["DE"]);
        let mut sim = Simulator::new(&traces, &rs, config(100));
        let start = year_start(2022);
        let job = Job::batch(1, rs[0], start.plus(3), 5.0, Slack::None);
        let report = sim.run(&mut CarbonAgnostic, &[job]);
        assert_eq!(report.completed_count(), 1);
        assert_eq!(report.unfinished, 0);
        let expected: f64 = traces
            .series("DE")
            .unwrap()
            .window(start.plus(3), 5)
            .unwrap()
            .iter()
            .sum();
        assert!((report.total_emissions_g - expected).abs() < 1e-9);
        assert!((report.total_energy_kwh - 5.0).abs() < 1e-9);
    }

    #[test]
    fn planned_deferral_reproduces_analytic_bound() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["US-CA"]);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, config(24 * 10));
        let job = Job::batch(7, rs[0], start, 6.0, Slack::Day);
        let report = sim.run(&mut PlannedDeferral, &[job]);
        assert_eq!(report.completed_count(), 1);
        let planner = TemporalPlanner::new(traces.series("US-CA").unwrap());
        let expected = planner.best_deferred(start, 6, 24).cost_g;
        assert!(
            (report.emissions_of(7).unwrap() - expected).abs() < 1e-9,
            "sim {} vs analytic {}",
            report.emissions_of(7).unwrap(),
            expected
        );
    }

    #[test]
    fn capacity_queues_excess_jobs() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(year_start(2022), 50, 1));
        let start = year_start(2022);
        let jobs = vec![
            Job::batch(1, rs[0], start, 3.0, Slack::None),
            Job::batch(2, rs[0], start, 3.0, Slack::None),
        ];
        let report = sim.run(&mut CarbonAgnostic, &jobs);
        assert_eq!(report.completed_count(), 2);
        // Serialized: job 1 finishes at hour 2, job 2 at hour 5.
        let first = report.completed.iter().find(|c| c.job.id == 1).unwrap();
        let second = report.completed.iter().find(|c| c.job.id == 2).unwrap();
        assert_eq!(first.finished, start.plus(2));
        assert_eq!(second.finished, start.plus(5));
    }

    #[test]
    fn router_sends_batch_to_sweden() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE", "PL", "IN-WE"]);
        let mut sim = Simulator::new(&traces, &rs, config(100));
        let start = year_start(2022);
        let jobs = vec![Job::batch(1, rs[2], start, 4.0, Slack::None)];
        let report = sim.run(&mut GreenestRouter, &jobs);
        assert_eq!(report.completed[0].region, rs[0], "routed to Sweden");
        // Routed emissions far below origin emissions.
        let origin_cost: f64 = traces
            .series("IN-WE")
            .unwrap()
            .window(start, 4)
            .unwrap()
            .iter()
            .sum();
        assert!(report.total_emissions_g < origin_cost / 5.0);
    }

    #[test]
    fn threshold_policy_between_bounds() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["US-CA"]);
        let start = year_start(2022);
        let slots = 12usize;
        let job = Job::batch(3, rs[0], start, slots as f64, Slack::TenX).with_interruptible();
        assert_eq!(job.slack_hours(), 120);
        let mut sim = Simulator::new(&traces, &rs, config(24 * 30));
        let report = sim.run(&mut ThresholdSuspend::default(), &[job]);
        assert_eq!(report.completed_count(), 1);
        let emitted = report.emissions_of(3).unwrap();
        let planner = TemporalPlanner::new(traces.series("US-CA").unwrap());
        let clairvoyant = planner.best_interruptible(start, slots, 120).1;
        let baseline = planner.baseline_cost(start, slots);
        assert!(emitted >= clairvoyant - 1e-9, "below clairvoyant bound");
        // The online policy must capture some of the savings on a
        // strongly diurnal trace.
        assert!(
            emitted < baseline * 1.02,
            "online {emitted} vs baseline {baseline}"
        );
    }

    #[test]
    fn unfinished_jobs_counted() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let mut sim = Simulator::new(&traces, &rs, config(3));
        let start = year_start(2022);
        let jobs = vec![Job::batch(1, rs[0], start, 10.0, Slack::None)];
        let report = sim.run(&mut CarbonAgnostic, &jobs);
        assert_eq!(report.completed_count(), 0);
        assert_eq!(report.unfinished, 1);
        // Partial work is still accounted.
        assert!(report.total_energy_kwh > 0.0);
    }

    #[test]
    fn fractional_interactive_jobs_scale_energy() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let mut sim = Simulator::new(&traces, &rs, config(10));
        let start = year_start(2022);
        let jobs = vec![Job::interactive(1, rs[0], start)];
        let report = sim.run(&mut CarbonAgnostic, &jobs);
        assert_eq!(report.completed_count(), 1);
        assert!((report.total_energy_kwh - 0.01).abs() < 1e-12);
        let ci = traces.series("SE").unwrap().get(start);
        assert!((report.total_emissions_g - ci * 0.01).abs() < 1e-12);
    }

    #[test]
    fn short_trace_records_stalled_hours_instead_of_freezing() {
        // A trace covering only 5 of the 10 simulated hours: the 8-hour
        // job executes 5 slots, then stalls (visibly) for the remaining
        // 5 hours instead of silently freezing.
        let start = year_start(2022);
        let short = TimeSeries::new(start, vec![100.0; 5]);
        let se = decarb_traces::catalog::region("SE").unwrap().clone();
        let traces = TraceSet::from_series(vec![(se, short)]);
        let rs = ids(&traces, &["SE"]);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 10, 4));
        let report = sim.run(
            &mut CarbonAgnostic,
            &[Job::batch(1, rs[0], start, 8.0, Slack::None)],
        );
        assert_eq!(report.completed_count(), 0);
        assert_eq!(report.unfinished, 1);
        assert!((report.total_energy_kwh - 5.0).abs() < 1e-9);
        assert!((report.total_emissions_g - 500.0).abs() < 1e-9);
        assert_eq!(report.stalled_hours, 5);
    }

    #[test]
    fn full_coverage_runs_report_no_stalls() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, config(50));
        let report = sim.run(
            &mut CarbonAgnostic,
            &[Job::batch(1, rs[0], start, 3.0, Slack::None)],
        );
        assert_eq!(report.stalled_hours, 0);
    }

    /// A policy planning a fixed start offset from the arrival hour.
    struct StartAt(usize);
    impl Policy for StartAt {
        fn place(&mut self, job: &Job, view: &CloudView<'_>) -> crate::policy::Placement {
            crate::policy::Placement {
                region: job.origin,
                start: view.now.plus(self.0),
            }
        }
    }

    #[test]
    fn starts_at_or_past_horizon_end_are_never_admitted() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let start = year_start(2022);
        let job = Job::batch(1, rs[0], start, 1.0, Slack::None);
        // Planned exactly at the horizon end: never admitted, no energy.
        let mut sim = Simulator::new(&traces, &rs, config(10));
        let report = sim.run(&mut StartAt(10), std::slice::from_ref(&job));
        assert_eq!(report.completed_count(), 0);
        assert_eq!(report.unfinished, 1);
        assert_eq!(report.total_energy_kwh, 0.0);
        // One hour earlier is admissible and the 1-hour job completes.
        let mut sim = Simulator::new(&traces, &rs, config(10));
        let report = sim.run(&mut StartAt(9), &[job]);
        assert_eq!(report.completed_count(), 1);
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.completed[0].finished, start.plus(9));
    }

    #[test]
    fn finishing_in_last_window_hour_is_on_time() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let start = year_start(2022);
        // 2-hour job, 24 h slack: window covers hours [0, 26); the last
        // permissible start is hour 24, finishing in hour 25.
        let job = Job::batch(1, rs[0], start, 2.0, Slack::Day);
        let mut sim = Simulator::new(&traces, &rs, config(100));
        let report = sim.run(&mut StartAt(24), std::slice::from_ref(&job));
        assert_eq!(report.completed_count(), 1);
        assert_eq!(report.completed[0].finished, start.plus(25));
        assert!(!report.completed[0].missed_deadline);
        assert_eq!(report.missed_deadlines(), 0);
        // One hour later finishes at hour 26 == deadline: missed.
        let mut sim = Simulator::new(&traces, &rs, config(100));
        let report = sim.run(&mut StartAt(25), &[job]);
        assert_eq!(report.completed_count(), 1);
        assert!(report.completed[0].missed_deadline);
    }

    #[test]
    fn queued_zero_slack_jobs_miss_their_deadline() {
        // Two zero-slack 3-hour jobs on a capacity-1 datacenter: the
        // first is on time, the second finishes at hour 5, past its
        // hour-3 deadline — zero slack does not exempt it.
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, SimConfig::new(start, 50, 1));
        let jobs = vec![
            Job::batch(1, rs[0], start, 3.0, Slack::None),
            Job::batch(2, rs[0], start, 3.0, Slack::None),
        ];
        let report = sim.run(&mut CarbonAgnostic, &jobs);
        assert_eq!(report.completed_count(), 2);
        let first = report.completed.iter().find(|c| c.job.id == 1).unwrap();
        let second = report.completed.iter().find(|c| c.job.id == 2).unwrap();
        assert!(!first.missed_deadline);
        assert!(second.missed_deadline);
        assert_eq!(report.missed_deadlines(), 1);
    }

    #[test]
    fn immediate_zero_slack_jobs_are_on_time() {
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let start = year_start(2022);
        let mut sim = Simulator::new(&traces, &rs, config(20));
        let report = sim.run(
            &mut CarbonAgnostic,
            &[Job::batch(1, rs[0], start, 5.0, Slack::None)],
        );
        assert_eq!(report.completed_count(), 1);
        assert!(!report.completed[0].missed_deadline);
    }

    #[test]
    fn invalid_placement_region_falls_back_to_origin() {
        struct BadPolicy;
        impl Policy for BadPolicy {
            fn place(&mut self, _job: &Job, view: &CloudView<'_>) -> crate::policy::Placement {
                crate::policy::Placement {
                    // An id with no deployed datacenter (and even out of
                    // the table's range).
                    region: RegionId(9999),
                    start: view.now,
                }
            }
        }
        let traces = builtin_dataset();
        let rs = ids(&traces, &["SE"]);
        let mut sim = Simulator::new(&traces, &rs, config(10));
        let start = year_start(2022);
        let report = sim.run(
            &mut BadPolicy,
            &[Job::batch(1, rs[0], start, 2.0, Slack::None)],
        );
        assert_eq!(report.completed_count(), 1);
        assert_eq!(report.completed[0].region, rs[0]);
    }

    /// A two-region dataset with integer-valued hourly traces, so the
    /// sub-hourly accounting identities ((12S·L)/12L == S, exact integer
    /// sums) hold bit for bit.
    fn integer_dataset(hours: usize) -> TraceSet {
        let start = year_start(2022);
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 900 + 50) as f64
        };
        let pairs = ["DE", "SE"]
            .iter()
            .map(|code| {
                let region = decarb_traces::catalog::region(code).unwrap().clone();
                let values: Vec<f64> = (0..hours).map(|_| next()).collect();
                (region, TimeSeries::new(start, values))
            })
            .collect();
        TraceSet::from_series(pairs)
    }

    /// Integer-length jobs on hour-aligned arrivals, mixing rigid,
    /// migratable, and interruptible shapes across both regions.
    fn equivalence_jobs(traces: &TraceSet) -> Vec<Job> {
        let de = traces.id_of("DE").unwrap();
        let se = traces.id_of("SE").unwrap();
        let start = year_start(2022);
        let mut jobs = vec![
            Job::batch(1, de, start, 4.0, Slack::None),
            Job::batch(2, de, start.plus(3), 6.0, Slack::Day),
            Job::batch(3, se, start.plus(5), 2.0, Slack::Day),
            Job::batch(4, de, start.plus(7), 12.0, Slack::Week).with_interruptible(),
            Job::batch(5, se, start.plus(7), 8.0, Slack::TenX).with_interruptible(),
            Job::batch(6, de, start.plus(30), 5.0, Slack::Day),
        ];
        for (i, job) in jobs.iter_mut().enumerate() {
            job.migratable = i % 2 == 0;
        }
        jobs
    }

    /// Maps an hourly-domain job list onto a 12-slots-per-hour axis.
    fn jobs_at_5min(jobs: &[Job]) -> Vec<Job> {
        jobs.iter()
            .map(|job| {
                let mut fine = job.clone();
                fine.arrival = Hour(job.arrival.0 * 12);
                fine
            })
            .collect()
    }

    fn run_fine<P: Policy + ?Sized>(
        fine: &TraceSet,
        regions: &[RegionId],
        policy: &mut P,
        jobs: &[Job],
        horizon_hours: usize,
        stepping: Stepping,
    ) -> SimReport {
        let start = Hour(year_start(2022).0 * 12);
        let config = SimConfig::new(start, horizon_hours * 12, 4).with_stepping(stepping);
        let mut sim = Simulator::new(fine, regions, config);
        sim.run(policy, jobs)
    }

    #[test]
    fn event_driven_matches_slot_stepped_on_five_minute_axis() {
        let hourly = integer_dataset(24 * 40);
        let fine = hourly
            .resample_to(Resolution::from_minutes(5).unwrap())
            .unwrap();
        let rs = ids(&fine, &["DE", "SE"]);
        let jobs = jobs_at_5min(&equivalence_jobs(&fine));
        let horizon = 24 * 20;
        let policies: PolicyTable = vec![
            ("agnostic", || Box::new(CarbonAgnostic)),
            ("deferral", || Box::new(PlannedDeferral)),
            ("threshold", || Box::new(ThresholdSuspend::default())),
            ("router", || Box::new(GreenestRouter)),
        ];
        for (name, make) in policies {
            let slot = run_fine(
                &fine,
                &rs,
                make().as_mut(),
                &jobs,
                horizon,
                Stepping::SlotPerSlot,
            );
            let event = run_fine(
                &fine,
                &rs,
                make().as_mut(),
                &jobs,
                horizon,
                Stepping::EventDriven,
            );
            assert_eq!(
                slot.total_emissions_g, event.total_emissions_g,
                "{name}: emissions must be bit-identical"
            );
            assert_eq!(slot.total_energy_kwh, event.total_energy_kwh, "{name}");
            assert_eq!(slot.completed_count(), event.completed_count(), "{name}");
            assert_eq!(slot.suspends, event.suspends, "{name}");
            assert_eq!(slot.resumes, event.resumes, "{name}");
            assert_eq!(slot.unfinished, event.unfinished, "{name}");
            for (a, b) in slot.completed.iter().zip(&event.completed) {
                assert_eq!(a.job.id, b.job.id, "{name}");
                assert_eq!(a.region, b.region, "{name}: same placement");
                assert_eq!(a.started, b.started, "{name}: same start slot");
                assert_eq!(a.finished, b.finished, "{name}: same finish slot");
                assert_eq!(a.emitted_g, b.emitted_g, "{name}: same emissions");
                assert_eq!(a.missed_deadline, b.missed_deadline, "{name}");
            }
            assert!(slot.completed_count() >= 5, "{name}: workload must run");
        }
    }

    #[test]
    fn five_minute_replica_reproduces_hourly_run_bit_for_bit() {
        // The tentpole equivalence property at the engine level: a
        // 5-minute trace that repeats each hour's (integer) CI 12 times
        // is the same physical signal, so emissions totals must be
        // bit-identical and every placement must land on the scaled
        // slot of its hourly counterpart.
        let hourly = integer_dataset(24 * 40);
        let fine = hourly
            .resample_to(Resolution::from_minutes(5).unwrap())
            .unwrap();
        let rs_hourly = ids(&hourly, &["DE", "SE"]);
        let rs_fine = ids(&fine, &["DE", "SE"]);
        let jobs = equivalence_jobs(&hourly);
        let fine_jobs = jobs_at_5min(&jobs);
        let horizon = 24 * 20;
        let policies: PolicyTable = vec![
            ("agnostic", || Box::new(CarbonAgnostic)),
            ("deferral", || Box::new(PlannedDeferral)),
            ("threshold", || Box::new(ThresholdSuspend::default())),
            ("router", || Box::new(GreenestRouter)),
        ];
        for (name, make) in policies {
            let mut hourly_sim = Simulator::new(&hourly, &rs_hourly, config(horizon));
            let coarse = hourly_sim.run(make().as_mut(), &jobs);
            let fine_report = run_fine(
                &fine,
                &rs_fine,
                make().as_mut(),
                &fine_jobs,
                horizon,
                Stepping::EventDriven,
            );
            assert_eq!(
                coarse.total_emissions_g, fine_report.total_emissions_g,
                "{name}: totals must be bit-identical"
            );
            assert_eq!(
                coarse.total_energy_kwh, fine_report.total_energy_kwh,
                "{name}"
            );
            assert_eq!(
                coarse.completed_count(),
                fine_report.completed_count(),
                "{name}"
            );
            assert_eq!(coarse.unfinished, fine_report.unfinished, "{name}");
            for (a, b) in coarse.completed.iter().zip(&fine_report.completed) {
                assert_eq!(a.job.id, b.job.id, "{name}: completion order");
                assert_eq!(a.region, b.region, "{name}: same region");
                assert_eq!(b.started.0, a.started.0 * 12, "{name}: scaled start");
                assert_eq!(
                    b.finished.0,
                    a.finished.0 * 12 + 11,
                    "{name}: finish lands on the last slot of the hour"
                );
                assert_eq!(a.emitted_g, b.emitted_g, "{name}: per-job emissions");
                assert_eq!(a.missed_deadline, b.missed_deadline, "{name}");
            }
            // Slowdown is a ratio of same-axis quantities, so the 12×
            // scaling of numerator and denominator cancels exactly.
            assert_eq!(
                coarse.mean_slowdown(),
                fine_report.mean_slowdown(),
                "{name}: slowdown is axis-independent"
            );
            assert_eq!(
                coarse.mean_wait_hours(),
                fine_report.mean_wait_hours(),
                "{name}: waits are reported in hours on any axis"
            );
            assert!(coarse.completed_count() >= 5, "{name}: workload must run");
        }
    }

    #[test]
    fn datacenter_order_is_lexicographic_whatever_the_input_order() {
        let traces = builtin_dataset();
        let forward = ids(&traces, &["SE", "DE", "PL"]);
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = Simulator::new(&traces, &forward, config(10));
        let b = Simulator::new(&traces, &reversed, config(10));
        let codes = |sim: &Simulator<'_>| -> Vec<String> {
            sim.datacenters
                .iter()
                .map(|dc| traces.code(dc.region).to_string())
                .collect()
        };
        assert_eq!(codes(&a), vec!["DE", "PL", "SE"]);
        assert_eq!(codes(&a), codes(&b));
        assert!(a.datacenter(forward[0]).is_some());
        assert!(a.datacenter(RegionId(9999)).is_none());
    }
}
