//! A shared, thread-safe cache of [`TemporalPlanner`]s.
//!
//! [`crate::policy::PlannedDeferral`] builds a fresh planner — a full
//! copy of the origin's trace plus its prefix sums — for *every*
//! placement. For one validation job that is fine; at scenario-matrix
//! scale (hundreds of scenarios × ~100 jobs each) the rebuild dominates
//! the whole sweep. A [`PlannerCache`] is created once per
//! `run_scenarios` call and shared by reference across the worker
//! threads: each region's planner is built the first time any scenario
//! needs it and reused by every later placement.
//!
//! A planner spans a region's entire stored trace, so the cache is a
//! dense [`RegionId`]-indexed slot table — scenario horizons never
//! change what a planner contains, and the hot-path hit is one bounds
//! check plus an index, no hashing. One cache must only ever see one
//! dataset (ids are per-dataset; the scenario engine guarantees this by
//! scoping the cache to a run).

use std::sync::{Arc, PoisonError, RwLock};

use decarb_core::temporal::TemporalPlanner;
use decarb_traces::{RegionId, Resolution, TimeSeries};
use decarb_workloads::Job;

use crate::cluster::CloudView;
use crate::policy::{Placement, Policy};

/// A [`RegionId`]-indexed cache of temporal planners, safe to share
/// across the scenario engine's worker threads.
#[derive(Debug, Default)]
pub struct PlannerCache {
    planners: RwLock<Vec<Option<Arc<TemporalPlanner>>>>,
}

impl PlannerCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the hourly planner for `id`, building it from `series`
    /// on the first request.
    pub fn planner(&self, id: RegionId, series: &TimeSeries) -> Arc<TemporalPlanner> {
        self.planner_at(id, series, Resolution::HOURLY)
    }

    /// Returns the planner for `id` on an axis sampled at `resolution`,
    /// building it from `series` on the first request. A cache is
    /// scoped to one dataset, so every call sees the same resolution
    /// and the first build wins.
    pub fn planner_at(
        &self,
        id: RegionId,
        series: &TimeSeries,
        resolution: Resolution,
    ) -> Arc<TemporalPlanner> {
        let read = self.planners.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(Some(planner)) = read.get(id.index()) {
            return Arc::clone(planner);
        }
        drop(read);
        let mut planners = self
            .planners
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if planners.len() <= id.index() {
            planners.resize(id.index() + 1, None);
        }
        // Another worker may have built it between the read and write
        // lock; the re-check keeps exactly one build either way.
        Arc::clone(
            planners[id.index()].get_or_insert_with(|| {
                Arc::new(TemporalPlanner::with_resolution(series, resolution))
            }),
        )
    }

    /// Returns how many regions have a cached planner.
    pub fn len(&self) -> usize {
        self.planners
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|slot| slot.is_some())
            .count()
    }

    /// Returns `true` while no planner has been built.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`crate::policy::PlannedDeferral`] backed by a shared
/// [`PlannerCache`]: identical placements, amortized planner builds.
///
/// This is what [`crate::scenario::PolicyKind::PlannedDeferral`] runs —
/// the unit-struct `PlannedDeferral` remains the self-contained variant
/// for one-off analytic validation.
pub struct CachedDeferral<'a> {
    cache: &'a PlannerCache,
}

impl<'a> CachedDeferral<'a> {
    /// Creates the policy over a shared cache.
    pub fn new(cache: &'a PlannerCache) -> Self {
        Self { cache }
    }
}

impl Policy for CachedDeferral<'_> {
    fn place(&mut self, job: &Job, view: &CloudView<'_>) -> Placement {
        // A job originating in a region with no trace cannot be
        // planned; run it now at the origin instead of panicking the
        // worker thread.
        let Some(series) = view.traces.try_series_by_id(job.origin) else {
            return Placement {
                region: job.origin,
                start: view.now,
            };
        };
        let resolution = view.traces.resolution();
        let planner = self.cache.planner_at(job.origin, series, resolution);
        let placement = planner.best_deferred(
            view.now,
            job.length_slots_at(resolution),
            job.slack_slots_at(resolution),
        );
        Placement {
            region: job.origin,
            start: placement.start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::policy::PlannedDeferral;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;
    use decarb_workloads::Slack;

    #[test]
    fn planner_is_built_once_per_region() {
        let data = builtin_dataset();
        let cache = PlannerCache::new();
        assert!(cache.is_empty());
        let se = data.id_of("SE").unwrap();
        let de = data.id_of("DE").unwrap();
        let first = cache.planner(se, data.series_by_id(se));
        let second = cache.planner(se, data.series_by_id(se));
        assert!(Arc::ptr_eq(&first, &second), "same planner instance");
        cache.planner(de, data.series_by_id(de));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_deferral_matches_the_uncached_policy() {
        let data = builtin_dataset();
        let start = year_start(2022);
        let ca = data.id_of("US-CA").unwrap();
        let de = data.id_of("DE").unwrap();
        let regions = vec![ca, de];
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                let origin = if i % 2 == 0 { ca } else { de };
                Job::batch(i + 1, origin, start.plus(i as usize * 5), 6.0, Slack::Day)
            })
            .collect();
        let mut plain_sim = Simulator::new(&data, &regions, SimConfig::new(start, 24 * 10, 8));
        let plain = plain_sim.run(&mut PlannedDeferral, &jobs);
        let cache = PlannerCache::new();
        let mut cached_sim = Simulator::new(&data, &regions, SimConfig::new(start, 24 * 10, 8));
        let cached = cached_sim.run(&mut CachedDeferral::new(&cache), &jobs);
        assert_eq!(plain.completed_count(), cached.completed_count());
        assert!((plain.total_emissions_g - cached.total_emissions_g).abs() < 1e-9);
        assert_eq!(cache.len(), 2, "one planner per origin region");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let data = builtin_dataset();
        let cache = PlannerCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for code in ["SE", "DE", "FR", "GB"] {
                        let id = data.id_of(code).unwrap();
                        let planner = cache.planner(id, data.series_by_id(id));
                        assert_eq!(planner.trace_start(), data.series_by_id(id).start());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4);
    }
}
