//! Keep-alive edge cases over real TCP: pipelined requests landing in
//! one read, a request trickling in split across many writes, the
//! idle-timeout disconnect, server-initiated close at the request
//! bound, oversized batches, and bit-identical placement answers
//! whether the connection is reused or closed per request.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use decarb_serve::{PlacementService, Server};
use decarb_traces::builtin_dataset;

/// The CI smoke-test placement query; its exact response bytes are
/// pinned in `tests/golden/serve_place.json`.
const GOLDEN_QUERY: &str =
    r#"{"origin":"PL","duration_hours":6,"slack_hours":24,"slo_ms":1000,"arrival_hour":19704}"#;

fn boot(configure: impl FnOnce(Server) -> Server) -> SocketAddr {
    let service = Arc::new(PlacementService::new(builtin_dataset()));
    let server = configure(Server::bind("127.0.0.1:0", service).expect("bind"));
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = server.run(2);
    });
    addr
}

fn place_request(body: &str, connection: &str) -> String {
    format!(
        "POST /v1/place HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
}

/// Reads exactly one content-length-framed response off `stream`.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Read header bytes one at a time until the blank line; fine for a
    // test helper.
    while !raw.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("header byte");
        raw.push(byte[0]);
    }
    let head = String::from_utf8(raw).expect("utf8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse().expect("length"))
        })
        .expect("content-length header");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

#[test]
fn pipelined_requests_in_one_write_get_all_their_answers() {
    let addr = boot(|s| s);
    let mut stream = TcpStream::connect(addr).unwrap();
    // Both requests land in the server's buffer in one write; the
    // second must be answered from the leftover buffered bytes.
    let both = format!(
        "{}{}",
        place_request(GOLDEN_QUERY, "keep-alive"),
        place_request(GOLDEN_QUERY, "close")
    );
    stream.write_all(both.as_bytes()).unwrap();
    let (s1, b1) = read_response(&mut stream);
    let (s2, b2) = read_response(&mut stream);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "pipelined answers must agree");
    // After the close-marked second response, the server hangs up.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}

#[test]
fn a_request_split_across_many_tiny_writes_still_parses() {
    let addr = boot(|s| s);
    let mut stream = TcpStream::connect(addr).unwrap();
    let raw = place_request(GOLDEN_QUERY, "close");
    // Dribble the request in 7-byte chunks with flushes between them;
    // the parser must assemble it across reads.
    for chunk in raw.as_bytes().chunks(7) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"region\""), "{body}");
}

#[test]
fn idle_connections_are_disconnected_after_the_timeout() {
    let addr = boot(|s| s.with_idle_timeout(Duration::from_millis(200)));
    let mut stream = TcpStream::connect(addr).unwrap();
    // First request answered normally over keep-alive...
    stream
        .write_all(place_request(GOLDEN_QUERY, "keep-alive").as_bytes())
        .unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    // ...then we go quiet; the server must hang up, not wedge a worker.
    let started = Instant::now();
    let mut rest = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.read_to_end(&mut rest).expect("server-side close");
    assert!(rest.is_empty(), "no bytes expected after idle close");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "disconnect must come from the idle timeout, not our read timeout"
    );
}

#[test]
fn the_request_bound_rotates_connections_mid_stream() {
    let addr = boot(|s| s.with_max_requests_per_connection(3));
    let mut stream = TcpStream::connect(addr).unwrap();
    for i in 0..3 {
        stream
            .write_all(place_request(GOLDEN_QUERY, "keep-alive").as_bytes())
            .unwrap();
        let (status, _) = read_response(&mut stream);
        assert_eq!(status, 200, "request {i}");
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must close at the bound");
}

#[test]
fn oversized_batches_get_the_documented_error_code() {
    let addr = boot(|s| s);
    let job = r#"{"origin":"DE","duration_hours":1}"#;
    let body = format!(
        "[{}]",
        std::iter::repeat_n(job, 1001).collect::<Vec<_>>().join(",")
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(place_request(&body, "close").as_bytes())
        .unwrap();
    let (status, text) = read_response(&mut stream);
    assert_eq!(status, 413, "{text}");
    assert!(text.contains("\"batch-too-large\""), "{text}");
}

#[test]
fn placement_answers_match_the_checked_in_golden_over_keep_alive() {
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden/serve_place.json"),
    )
    .expect("golden file");
    let addr = boot(|s| s);
    // Twice over one kept-alive connection, once over close-per-request:
    // all three answers must be byte-identical to the golden.
    let mut stream = TcpStream::connect(addr).unwrap();
    for _ in 0..2 {
        stream
            .write_all(place_request(GOLDEN_QUERY, "keep-alive").as_bytes())
            .unwrap();
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(body, golden, "keep-alive answer drifted from golden");
    }
    drop(stream);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(place_request(GOLDEN_QUERY, "close").as_bytes())
        .unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body, golden, "close-per-request answer drifted from golden");
}

#[test]
fn batch_answers_equal_sequential_singles_over_the_wire() {
    let addr = boot(|s| s);
    let jobs = [
        r#"{"origin":"PL","duration_hours":6,"slack_hours":24,"slo_ms":1000,"arrival_hour":19704}"#,
        r#"{"origin":"DE","duration_hours":2,"slack_hours":6,"slo_ms":100,"arrival_hour":19704}"#,
        r#"{"origin":"SE","duration_hours":1,"arrival_hour":19800}"#,
    ];
    let mut singles = Vec::new();
    let mut stream = TcpStream::connect(addr).unwrap();
    for job in jobs {
        stream
            .write_all(place_request(job, "keep-alive").as_bytes())
            .unwrap();
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        singles.push(decarb_json::parse(&body).unwrap());
    }
    let batch_body = format!("[{}]", jobs.join(","));
    stream
        .write_all(place_request(&batch_body, "close").as_bytes())
        .unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    let batch = decarb_json::parse(&body).unwrap();
    let decarb_json::Value::Array(results) = batch.get("results").unwrap().clone() else {
        panic!("results must be an array")
    };
    assert_eq!(results.len(), singles.len());
    for (slot, single) in results.iter().zip(&singles) {
        assert_eq!(slot, single, "batch slot must equal its single call");
    }
}
