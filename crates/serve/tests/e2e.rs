//! End-to-end: boot the daemon on an ephemeral port, exercise every
//! endpoint over real TCP, reload, and verify placement answers are
//! bit-identical across the snapshot swap.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use decarb_json::Value;
use decarb_serve::{PlacementService, Server};
use decarb_traces::builtin_dataset;
use decarb_traces::time::year_start;

/// Boots a server with a reload hook on an ephemeral port; the server
/// thread is detached and dies with the test process.
fn boot() -> SocketAddr {
    let service = Arc::new(
        PlacementService::new(builtin_dataset()).with_loader(Box::new(|| Ok(builtin_dataset()))),
    );
    let server = Server::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = server.run(4);
    });
    addr
}

fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // `Connection: close` lets the reader below drain to EOF instead
    // of waiting out the server's keep-alive idle timeout.
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .expect("body separator");
    (status, decarb_json::parse(json_body).expect("JSON body"))
}

#[test]
fn every_endpoint_answers_and_place_survives_reload_bit_identically() {
    let addr = boot();

    // healthz
    let (status, health) = request(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("status"), Some(&Value::from("ok")));
    assert_eq!(health.get("regions"), Some(&Value::from(123.0)));

    // regions
    let (status, regions) = request(addr, "GET", "/v1/regions", "");
    assert_eq!(status, 200);
    assert_eq!(regions.get("count"), Some(&Value::from(123.0)));

    // rankings
    let (status, rankings) = request(addr, "GET", "/v1/rankings?year=2022&limit=5", "");
    assert_eq!(status, 200);
    let Some(Value::Array(rows)) = rankings.get("rankings") else {
        panic!("rankings array missing")
    };
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].get("zone"), Some(&Value::from("SE")));

    // forecast
    let (status, forecast) = request(addr, "GET", "/v1/forecast/DE?hours=24", "");
    assert_eq!(status, 200);
    assert_eq!(forecast.get("hours"), Some(&Value::from(24.0)));

    // place, against planner ground truth
    let arrival = year_start(2022).plus(90 * 24);
    let body = format!(
        r#"{{"origin":"PL","duration_hours":6,"slack_hours":24,"slo_ms":1000,"arrival_hour":{}}}"#,
        arrival.0
    );
    let (status, before) = request(addr, "POST", "/v1/place", &body);
    assert_eq!(status, 200, "{before}");
    let data = builtin_dataset();
    let snap = decarb_sim::Snapshot::build(Arc::clone(&data), 1);
    let truth = snap
        .place(&decarb_sim::PlaceRequest {
            origin: data.id_of("PL").unwrap(),
            arrival,
            duration_hours: 6,
            slack_hours: 24,
            slo_ms: 1000.0,
        })
        .expect("ground-truth placement");
    assert_eq!(
        before.get("region"),
        Some(&Value::from(data.code(truth.region))),
        "server must agree with the in-process planner"
    );
    assert_eq!(
        before.get("start_hour"),
        Some(&Value::from(f64::from(truth.start.0)))
    );

    // metrics, pre-reload
    let (status, metrics) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metrics.get("generation"), Some(&Value::from(1.0)));
    let requests = metrics.get("requests").expect("requests object");
    assert_eq!(requests.get("place"), Some(&Value::from(1.0)));

    // reload bumps the generation
    let (status, reload) = request(addr, "POST", "/v1/reload", "");
    assert_eq!(status, 200);
    assert_eq!(reload.get("generation"), Some(&Value::from(2.0)));

    // the same query answers bit-identically across the swap
    let (status, after) = request(addr, "POST", "/v1/place", &body);
    assert_eq!(status, 200);
    let strip = |v: &Value| {
        let Value::Object(fields) = v else {
            panic!("object expected")
        };
        Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "generation")
                .cloned()
                .collect(),
        )
        .to_string()
    };
    assert_eq!(strip(&before), strip(&after));

    // errors over the wire: bad JSON and an unknown path
    let (status, err) = request(addr, "POST", "/v1/place", "{nope");
    assert_eq!(status, 400);
    assert_eq!(
        err.get("error").and_then(|e| e.get("code")),
        Some(&Value::from("bad-json"))
    );
    let (status, _) = request(addr, "GET", "/v2/whatever", "");
    assert_eq!(status, 404);
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let addr = boot();
    let arrival = year_start(2022).0;
    let body = format!(
        r#"{{"origin":"DE","duration_hours":4,"slack_hours":12,"arrival_hour":{arrival}}}"#
    );
    let answers: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || {
                    let (status, json) = request(addr, "POST", "/v1/place", &body);
                    assert_eq!(status, 200);
                    json.to_string()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "identical queries must get identical answers"
    );
}
