//! The TCP front end: a bounded accept loop feeding a worker-thread
//! pool.
//!
//! The listener thread accepts connections and hands them to `threads`
//! workers over an `mpsc` channel (receiver shared behind a mutex —
//! contention is one lock per *connection*, not per byte). Each worker
//! reads one request, answers it from the shared
//! [`PlacementService`], and closes; `Connection: close` keeps the
//! protocol surface small and the parser bounded. Slow or stuck peers
//! are cut off by a per-socket read timeout so a worker can never be
//! wedged by an idle connection.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::api::PlacementService;
use crate::http::{read_request, write_response};

/// How long a worker waits for request bytes before dropping a
/// connection.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound listener, ready to serve.
pub struct Server {
    listener: TcpListener,
    service: Arc<PlacementService>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8980`; port 0 picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub fn bind(addr: &str, service: Arc<PlacementService>) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on `threads` workers. Only returns on a fatal
    /// listener error.
    pub fn run(self, threads: usize) -> std::io::Result<()> {
        let threads = threads.max(1);
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            workers.push(std::thread::spawn(move || loop {
                let received = {
                    let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.recv()
                };
                let Ok(stream) = received else {
                    // The accept loop is gone; drain and exit.
                    return;
                };
                serve_connection(&service, stream);
            }));
        }
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Per-connection accept errors (peer vanished between
                // SYN and accept) are not fatal to the daemon.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Accepts and serves exactly one connection on the calling
    /// thread; test hook for deterministic single-request servers.
    pub fn serve_one(&self) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        serve_connection(&self.service, stream);
        Ok(())
    }
}

/// Reads one request from `stream` and writes one response. All I/O
/// errors are swallowed: the peer is gone, and the daemon must not
/// care.
fn serve_connection(service: &PlacementService, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let (status, body) = match read_request(&mut reader) {
        Ok(Some(request)) => service.handle(&request),
        Ok(None) => return,
        Err(e) => service.handle_http_error(&e),
    };
    let _ = write_response(&mut writer, status, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    use decarb_traces::builtin_dataset;

    fn start() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let service = Arc::new(PlacementService::new(builtin_dataset()));
        let server = Server::bind("127.0.0.1:0", service).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server.serve_one().unwrap();
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_healthz_over_tcp() {
        let (addr, handle) = start();
        let response = roundtrip(addr, b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        handle.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"status\": \"ok\""), "{response}");
    }

    #[test]
    fn malformed_bytes_get_a_400_not_a_dead_worker() {
        let (addr, handle) = start();
        let response = roundtrip(addr, b"NOT-HTTP\r\n\r\n");
        handle.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("bad-request-line"), "{response}");
    }
}
