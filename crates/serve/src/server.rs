//! The TCP front end: a bounded accept loop feeding a worker-thread
//! pool.
//!
//! The listener thread accepts connections and hands them to `threads`
//! workers over an `mpsc` channel (receiver shared behind a mutex —
//! contention is one lock per *connection*, not per byte). Each worker
//! runs [`handle_connection`]: an HTTP/1.1 **keep-alive** loop that
//! answers requests from the shared [`PlacementService`] until the
//! peer closes, sends `Connection: close`, idles past
//! [`IDLE_TIMEOUT`], or exhausts [`MAX_REQUESTS_PER_CONNECTION`]. The
//! loop owns one [`Request`], one body `String`, and one response
//! `Vec<u8>` for the whole connection, so the steady state allocates
//! nothing per request. Slow or stuck peers are cut off by the
//! per-socket read timeout so a worker can never be wedged by an idle
//! connection.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::api::PlacementService;
use crate::http::{read_request_into, render_response, Request};

/// How long a worker waits for the next request on a kept-alive
/// connection before dropping it.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Most requests served over one connection before the server closes
/// it (a fairness bound: one chatty peer cannot pin a worker forever).
pub const MAX_REQUESTS_PER_CONNECTION: u64 = 10_000;

/// A bound listener, ready to serve.
pub struct Server {
    listener: TcpListener,
    service: Arc<PlacementService>,
    idle_timeout: Duration,
    max_requests: u64,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8980`; port 0 picks an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub fn bind(addr: &str, service: Arc<PlacementService>) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
            idle_timeout: IDLE_TIMEOUT,
            max_requests: MAX_REQUESTS_PER_CONNECTION,
        })
    }

    /// Overrides the keep-alive idle timeout (tests use short ones).
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Overrides the per-connection request bound.
    pub fn with_max_requests_per_connection(mut self, max: u64) -> Self {
        self.max_requests = max.max(1);
        self
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on `threads` workers. Only returns on a fatal
    /// listener error.
    pub fn run(self, threads: usize) -> std::io::Result<()> {
        let threads = threads.max(1);
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            let idle_timeout = self.idle_timeout;
            let max_requests = self.max_requests;
            workers.push(std::thread::spawn(move || loop {
                let received = {
                    let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.recv()
                };
                let Ok(stream) = received else {
                    // The accept loop is gone; drain and exit.
                    return;
                };
                serve_connection(&service, stream, idle_timeout, max_requests);
            }));
        }
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Per-connection accept errors (peer vanished between
                // SYN and accept) are not fatal to the daemon.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Accepts and serves exactly one connection (which may carry many
    /// keep-alive requests) on the calling thread; test hook for
    /// deterministic servers.
    pub fn serve_one(&self) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        serve_connection(&self.service, stream, self.idle_timeout, self.max_requests);
        Ok(())
    }
}

/// Configures the socket and runs the keep-alive loop over it. All I/O
/// errors are swallowed: the peer is gone, and the daemon must not
/// care.
fn serve_connection(
    service: &PlacementService,
    stream: TcpStream,
    idle_timeout: Duration,
    max_requests: u64,
) {
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let served = handle_connection(service, &mut reader, &mut writer, max_requests);
    service.metrics().record_connection(served);
}

/// The keep-alive request loop: reads up to `max_requests` requests
/// from `reader`, answering each on `writer`, reusing one request
/// struct, one body buffer, and one response buffer for the whole
/// connection. Returns the number of requests served.
///
/// Responses are flushed only when the read buffer is drained — i.e.
/// when the loop is about to block waiting on the peer. While a
/// pipelined burst of requests is still buffered, their responses
/// coalesce into one write syscall instead of one per response.
///
/// The loop ends when the peer closes (clean EOF), asks to close
/// (`Connection: close`, or HTTP/1.0 without `keep-alive`), idles past
/// the socket's read timeout, breaks the protocol (answered with its
/// 4xx, then closed), or hits the request bound. The last response
/// before any server-initiated close carries `connection: close` so
/// well-behaved clients do not race a reset.
// decarb-analyze: hot-path
pub fn handle_connection<T: std::io::Read, W: Write>(
    service: &PlacementService,
    reader: &mut BufReader<T>,
    writer: &mut W,
    max_requests: u64,
) -> u64 {
    let mut req = Request::default();
    let mut body = String::with_capacity(1024);
    let mut out = Vec::with_capacity(1536);
    let mut served = 0u64;
    while served < max_requests {
        match read_request_into(reader, &mut req) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                // Protocol violations get their 4xx and a close;
                // socket errors (peer gone, idle timeout) close
                // quietly — nobody is listening for a response.
                if !e.is_io() {
                    let (status, text) = service.handle_http_error(&e);
                    render_response(&mut out, status, &text, false);
                    let _ = writer.write_all(&out).and_then(|()| writer.flush());
                }
                break;
            }
        }
        let keep_alive = req.keep_alive() && served + 1 < max_requests;
        let status = service.handle_into(&req, &mut body);
        render_response(&mut out, status, &body, keep_alive);
        served += 1;
        if writer.write_all(&out).is_err() {
            break;
        }
        if !keep_alive {
            let _ = writer.flush();
            break;
        }
        if reader.buffer().is_empty() && writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    use decarb_traces::builtin_dataset;

    fn start() -> (SocketAddr, std::thread::JoinHandle<()>) {
        start_with(|s| s)
    }

    fn start_with(
        configure: impl FnOnce(Server) -> Server,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let service = Arc::new(PlacementService::new(builtin_dataset()));
        let server = configure(Server::bind("127.0.0.1:0", service).unwrap());
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server.serve_one().unwrap();
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_healthz_over_tcp() {
        let (addr, handle) = start();
        let response = roundtrip(
            addr,
            b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        handle.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("connection: close"), "{response}");
        assert!(response.contains("\"status\": \"ok\""), "{response}");
    }

    #[test]
    fn malformed_bytes_get_a_400_not_a_dead_worker() {
        let (addr, handle) = start();
        let response = roundtrip(addr, b"NOT-HTTP\r\n\r\n");
        handle.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("bad-request-line"), "{response}");
        assert!(response.contains("connection: close"), "{response}");
    }

    #[test]
    fn one_connection_serves_many_requests() {
        let (addr, handle) = start();
        let response = roundtrip(
            addr,
            b"GET /v1/healthz HTTP/1.1\r\n\r\n\
              GET /v1/healthz HTTP/1.1\r\n\r\n\
              GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        handle.join().unwrap();
        assert_eq!(response.matches("HTTP/1.1 200 OK").count(), 3, "{response}");
        assert_eq!(response.matches("connection: keep-alive").count(), 2);
        assert_eq!(response.matches("connection: close").count(), 1);
    }

    #[test]
    fn request_bound_closes_the_connection() {
        let (addr, handle) = start_with(|s| s.with_max_requests_per_connection(2));
        let response = roundtrip(
            addr,
            b"GET /v1/healthz HTTP/1.1\r\n\r\n\
              GET /v1/healthz HTTP/1.1\r\n\r\n\
              GET /v1/healthz HTTP/1.1\r\n\r\n",
        );
        handle.join().unwrap();
        // Two answers, then the server closes; the second is already
        // marked close so the client knows not to wait for a third.
        assert_eq!(response.matches("HTTP/1.1 200 OK").count(), 2, "{response}");
        assert!(response.ends_with("}"), "{response}");
        assert_eq!(response.matches("connection: keep-alive").count(), 1);
        assert_eq!(response.matches("connection: close").count(), 1);
    }

    #[test]
    fn handle_connection_reports_requests_served() {
        let service = PlacementService::new(builtin_dataset());
        let raw = b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/regions HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let mut out = Vec::new();
        let served = handle_connection(&service, &mut reader, &mut out, u64::MAX);
        assert_eq!(served, 2);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2);
    }
}
