//! The `/v1` JSON API: request routing, parameter validation, and the
//! shared service state.
//!
//! A [`PlacementService`] owns the current [`Snapshot`] behind an
//! atomically swapped `Arc`: readers take the read side of an
//! uncontended `RwLock` for two atomic ops to clone the `Arc`, then
//! answer entirely from their private snapshot — `POST /v1/reload`
//! builds the *next* snapshot outside any lock and swaps the pointer,
//! so in-flight queries keep their old dataset and new queries see the
//! new one, with no reader ever blocking on the rebuild.
//!
//! Every validation failure maps to a typed [`ApiError`] (HTTP 4xx
//! with a machine-readable `code`), mirroring how
//! [`decarb_sim::PlaceError`] pre-validates the planner's panicking
//! preconditions. The error body shape is documented in `docs/API.md`.

use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use decarb_forecast::{Forecaster, Persistence, SeasonalNaive};
use decarb_json::Value;
use decarb_sim::{PlaceDecision, PlaceError, PlaceRequest, Snapshot};
use decarb_traces::time::{EPOCH_YEAR, LAST_YEAR};
use decarb_traces::{Hour, TraceSet};

use crate::http::{HttpError, Request};
use crate::metrics::{Endpoint, Metrics};

/// Longest forecast horizon served, hours (two weeks).
pub const MAX_FORECAST_HOURS: usize = 336;
/// History handed to the forecasters, hours (four weeks).
pub const FORECAST_HISTORY_HOURS: usize = 28 * 24;
/// Most jobs accepted in one batch `POST /v1/place` call; larger
/// arrays are rejected with `batch-too-large` (HTTP 413).
pub const MAX_BATCH_JOBS: usize = 1000;

/// A rejected API call: an HTTP status plus a machine-readable code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status (4xx/5xx).
    pub status: u16,
    /// Stable error code, e.g. `unknown-region`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            code,
            message: message.into(),
        }
    }

    fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(400, code, message)
    }

    /// Renders the documented error envelope.
    pub fn body(&self) -> Value {
        Value::object([(
            "error",
            Value::object([
                ("code", Value::from(self.code)),
                ("message", Value::from(self.message.as_str())),
            ]),
        )])
    }
}

impl From<PlaceError> for ApiError {
    fn from(e: PlaceError) -> Self {
        let code = match e {
            PlaceError::ZeroDuration => "zero-duration",
            PlaceError::BeforeTraceStart(_) => "before-trace-start",
            PlaceError::BeyondTraceEnd(_) => "beyond-trace-end",
        };
        ApiError::new(422, code, e.to_string())
    }
}

impl From<&HttpError> for ApiError {
    fn from(e: &HttpError) -> Self {
        ApiError::new(e.status(), e.code(), e.to_string())
    }
}

/// Reloads the dataset on `POST /v1/reload`; returns a fresh
/// `TraceSet` or a message for the 503 body.
pub type Loader = Box<dyn Fn() -> Result<Arc<TraceSet>, String> + Send + Sync>;

/// The shared state behind every worker thread: the swappable
/// snapshot, the reload hook, and the service counters.
pub struct PlacementService {
    snapshot: RwLock<Arc<Snapshot>>,
    loader: Option<Loader>,
    metrics: Metrics,
    /// Same-hour admission limit applied to every snapshot this
    /// service builds, including reloads (`usize::MAX` = unlimited).
    capacity_per_hour: usize,
}

impl PlacementService {
    /// Creates the service over `traces` with no reload hook
    /// (`POST /v1/reload` answers 503) and no admission limit.
    pub fn new(traces: Arc<TraceSet>) -> Self {
        Self::with_capacity(traces, usize::MAX)
    }

    /// Creates the service with a same-hour admission limit per region
    /// (the `serve --capacity-per-hour` flag); reloads keep the limit.
    pub fn with_capacity(traces: Arc<TraceSet>, capacity_per_hour: usize) -> Self {
        Self {
            snapshot: RwLock::new(Arc::new(
                Snapshot::build(traces, 1).with_capacity_per_hour(capacity_per_hour),
            )),
            loader: None,
            metrics: Metrics::new(),
            capacity_per_hour,
        }
    }

    /// Installs the reload hook.
    pub fn with_loader(mut self, loader: Loader) -> Self {
        self.loader = Some(loader);
        self
    }

    /// The current snapshot (two atomic ops; never blocks on reload).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Rebuilds the snapshot from the loader and swaps it in.
    fn reload(&self) -> Result<Arc<Snapshot>, ApiError> {
        let Some(loader) = &self.loader else {
            return Err(ApiError::new(
                503,
                "reload-unavailable",
                "service was started without a reloadable data source",
            ));
        };
        let traces = loader().map_err(|message| ApiError::new(503, "reload-failed", message))?;
        // Build outside the lock: readers keep serving the old
        // snapshot for the entire (planner-prewarming) rebuild.
        let next = Arc::new(
            Snapshot::build(traces, self.snapshot().generation() + 1)
                .with_capacity_per_hour(self.capacity_per_hour),
        );
        let mut slot = self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = Arc::clone(&next);
        Ok(next)
    }

    /// Answers one parsed request: routes, validates, and serializes
    /// into the caller-owned `out` buffer (cleared first), recording
    /// metrics. Returns the HTTP status. The connection loop hands the
    /// same buffer in for every request, so steady-state serialization
    /// reuses its allocation.
    pub fn handle_into(&self, req: &Request, out: &mut String) -> u16 {
        out.clear();
        let endpoint = Endpoint::of(req.path());
        let started = Instant::now();
        let status = match self.dispatch(endpoint, req) {
            Ok(value) => {
                value.pretty_into(out);
                200
            }
            Err(e) => {
                e.body().pretty_into(out);
                e.status
            }
        };
        if endpoint == Endpoint::Place {
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            self.metrics.observe_place_us(us);
        }
        self.metrics.record(endpoint, status);
        status
    }

    /// Answers one parsed request, allocating the body text.
    /// Convenience wrapper over [`PlacementService::handle_into`] for
    /// tests and one-shot embedders.
    pub fn handle(&self, req: &Request) -> (u16, String) {
        let mut body = String::new();
        let status = self.handle_into(req, &mut body);
        (status, body)
    }

    /// Answers an unreadable request (parse failure) with its 4xx.
    pub fn handle_http_error(&self, e: &HttpError) -> (u16, String) {
        let api: ApiError = e.into();
        self.metrics.record(Endpoint::Other, api.status);
        (api.status, api.body().pretty())
    }

    fn dispatch(&self, endpoint: Endpoint, req: &Request) -> Result<Value, ApiError> {
        let method = req.method();
        match (endpoint, method) {
            (Endpoint::Healthz, "GET") => Ok(self.healthz()),
            (Endpoint::Regions, "GET") => Ok(self.regions()),
            (Endpoint::Rankings, "GET") => self.rankings(req),
            (Endpoint::Forecast, "GET") => self.forecast(req),
            (Endpoint::Place, "POST") => self.place(req),
            (Endpoint::Metrics, "GET") => Ok(self.metrics_payload()),
            (Endpoint::Reload, "POST") => {
                let snap = self.reload()?;
                Ok(Value::object([
                    ("generation", Value::from(snap.generation() as f64)),
                    ("regions", Value::from(snap.traces().len() as f64)),
                ]))
            }
            (Endpoint::Other, _) => Err(ApiError::new(
                404,
                "not-found",
                format!("no such endpoint: {}", req.path()),
            )),
            (_, _) => Err(ApiError::new(
                405,
                "method-not-allowed",
                format!("{method} is not supported on {}", req.path()),
            )),
        }
    }

    fn metrics_payload(&self) -> Value {
        let snap = self.snapshot();
        let Value::Object(mut fields) = self.metrics.to_json() else {
            return Value::Null;
        };
        fields.insert(
            0,
            (
                "regions".to_string(),
                Value::from(snap.traces().len() as f64),
            ),
        );
        fields.insert(
            0,
            (
                "generation".to_string(),
                Value::from(snap.generation() as f64),
            ),
        );
        Value::Object(fields)
    }

    fn healthz(&self) -> Value {
        let snap = self.snapshot();
        let hours = snap
            .deployed()
            .first()
            .map(|&id| snap.traces().series_by_id(id).len())
            .unwrap_or(0);
        Value::object([
            ("status", Value::from("ok")),
            ("regions", Value::from(snap.traces().len() as f64)),
            ("trace_hours", Value::from(hours as f64)),
            ("generation", Value::from(snap.generation() as f64)),
        ])
    }

    fn regions(&self) -> Value {
        let snap = self.snapshot();
        let rows: Vec<Value> = snap
            .traces()
            .regions()
            .iter()
            .map(|r| {
                Value::object([
                    ("zone", Value::from(r.code.as_str())),
                    ("name", Value::from(r.name.as_str())),
                    ("group", Value::from(r.group.label())),
                    ("lat", Value::from(r.lat)),
                    ("lon", Value::from(r.lon)),
                    ("datacenter", Value::Bool(r.has_datacenter())),
                ])
            })
            .collect();
        Value::object([
            ("count", Value::from(rows.len() as f64)),
            ("regions", Value::Array(rows)),
        ])
    }

    fn rankings(&self, req: &Request) -> Result<Value, ApiError> {
        let year = parse_query(req, "year", 2022i64)? as i32;
        if !(EPOCH_YEAR..=LAST_YEAR).contains(&year) {
            return Err(ApiError::bad_request(
                "year-out-of-horizon",
                format!("year must lie in {EPOCH_YEAR}..={LAST_YEAR}, got {year}"),
            ));
        }
        let limit = parse_query(req, "limit", 0i64)?;
        if limit < 0 {
            return Err(ApiError::bad_request(
                "bad-parameter",
                "limit must be non-negative",
            ));
        }
        let snap = self.snapshot();
        let mut rows = snap.rankings(year);
        if limit > 0 {
            rows.truncate(limit as usize);
        }
        let rows: Vec<Value> = rows
            .iter()
            .enumerate()
            .map(|(i, (region, mean))| {
                Value::object([
                    ("rank", Value::from((i + 1) as f64)),
                    ("zone", Value::from(region.code.as_str())),
                    ("name", Value::from(region.name.as_str())),
                    ("mean_ci_g_per_kwh", Value::from(*mean)),
                ])
            })
            .collect();
        Ok(Value::object([
            ("year", Value::from(f64::from(year))),
            ("count", Value::from(rows.len() as f64)),
            ("rankings", Value::Array(rows)),
        ]))
    }

    fn forecast(&self, req: &Request) -> Result<Value, ApiError> {
        let zone = req.path().strip_prefix("/v1/forecast/").unwrap_or_default();
        if zone.is_empty() {
            return Err(ApiError::bad_request(
                "missing-zone",
                "usage: /v1/forecast/{zone}",
            ));
        }
        let snap = self.snapshot();
        let id = snap.traces().id_of(zone).map_err(|_| {
            ApiError::new(404, "unknown-region", format!("no trace for zone `{zone}`"))
        })?;
        let hours = parse_query(req, "hours", 48i64)?;
        if !(1..=MAX_FORECAST_HOURS as i64).contains(&hours) {
            return Err(ApiError::bad_request(
                "bad-parameter",
                format!("hours must lie in 1..={MAX_FORECAST_HOURS}"),
            ));
        }
        let model = req.query("model").unwrap_or("seasonal");
        // `hours` is wall-clock; on a sub-hourly dataset the forecast
        // covers the same span with proportionally more samples, and
        // `start_hour` is an index on that finer slot axis.
        let resolution = snap.traces().resolution();
        let sph = resolution.slots_per_hour();
        let series = snap.traces().series_by_id(id);
        let history_len = (FORECAST_HISTORY_HOURS * sph).min(series.len());
        let from = Hour(series.end().0 - history_len as u32);
        let history = series
            .slice(from, history_len)
            .map_err(|e| ApiError::new(500, "internal", format!("history slice failed: {e}")))?;
        let horizon = hours as usize * sph;
        let predicted = match model {
            "seasonal" => SeasonalNaive::daily_at(resolution).predict_series(&history, horizon),
            "persistence" => Persistence.predict_series(&history, horizon),
            other => {
                return Err(ApiError::bad_request(
                    "unknown-model",
                    format!("unknown model `{other}`; expected seasonal|persistence"),
                ))
            }
        };
        Ok(Value::object([
            ("zone", Value::from(zone)),
            ("model", Value::from(model)),
            ("start_hour", Value::from(f64::from(predicted.start().0))),
            ("hours", Value::from(hours as f64)),
            (
                "resolution_minutes",
                Value::from(f64::from(resolution.minutes())),
            ),
            ("samples", Value::from(predicted.len() as f64)),
            (
                "values_g_per_kwh",
                Value::array(predicted.values().iter().map(|&v| Value::from(v))),
            ),
        ]))
    }

    fn place(&self, req: &Request) -> Result<Value, ApiError> {
        let text = std::str::from_utf8(req.body())
            .map_err(|_| ApiError::bad_request("bad-body", "request body is not valid UTF-8"))?;
        let body = decarb_json::parse(text)
            .map_err(|e| ApiError::bad_request("bad-json", format!("body is not JSON: {e}")))?;
        let snap = self.snapshot();
        match &body {
            // An array of job objects is a batch; a single object keeps
            // the original one-job contract bit for bit.
            Value::Array(jobs) => self.place_many(&snap, jobs),
            _ => {
                let (query, origin_code) = parse_place_job(&snap, &body)?;
                let decision = snap.place(&query)?;
                Ok(render_place_decision(&snap, origin_code, &query, &decision))
            }
        }
    }

    /// Answers a batch of placement jobs: every job gets a result slot
    /// in input order (a decision object, or the documented error
    /// envelope for that job alone), plus an aggregate summary.
    ///
    /// Valid jobs are evaluated through [`Snapshot::place_batch`], so
    /// large batches fan out across `decarb-par` worker threads when
    /// admission control is off and the answers stay bit-identical to
    /// N sequential single-job calls.
    fn place_many(&self, snap: &Snapshot, jobs: &[Value]) -> Result<Value, ApiError> {
        if jobs.is_empty() {
            return Err(ApiError::bad_request(
                "empty-batch",
                "batch must contain at least one job",
            ));
        }
        if jobs.len() > MAX_BATCH_JOBS {
            return Err(ApiError::new(
                413,
                "batch-too-large",
                format!(
                    "batch of {} jobs exceeds the {MAX_BATCH_JOBS}-job limit",
                    jobs.len()
                ),
            ));
        }
        self.metrics.record_batch(jobs.len() as u64);
        let parsed: Vec<Result<(PlaceRequest, &str), ApiError>> =
            jobs.iter().map(|job| parse_place_job(snap, job)).collect();
        // Only well-formed jobs reach the planner — exactly the calls
        // N sequential single-job requests would have made.
        let queries: Vec<PlaceRequest> = parsed
            .iter()
            .filter_map(|p| p.as_ref().ok().map(|(query, _)| *query))
            .collect();
        let mut decisions = snap.place_batch(&queries).into_iter();
        let mut ok = 0u64;
        let mut failed = 0u64;
        let mut total_saved_g = 0.0;
        let results: Vec<Value> = parsed
            .into_iter()
            .map(|slot| match slot {
                Ok((query, origin_code)) => match decisions.next().expect("one decision per job") {
                    Ok(decision) => {
                        ok += 1;
                        total_saved_g += decision.saved_g;
                        render_place_decision(snap, origin_code, &query, &decision)
                    }
                    Err(e) => {
                        failed += 1;
                        ApiError::from(e).body()
                    }
                },
                Err(e) => {
                    failed += 1;
                    e.body()
                }
            })
            .collect();
        Ok(Value::object([
            ("count", Value::from(results.len() as f64)),
            ("results", Value::Array(results)),
            (
                "summary",
                Value::object([
                    ("ok", Value::from(ok as f64)),
                    ("failed", Value::from(failed as f64)),
                    ("total_saved_g", Value::from(total_saved_g)),
                    ("generation", Value::from(snap.generation() as f64)),
                ]),
            ),
        ]))
    }
}

/// Validates one job object into a [`PlaceRequest`], returning the
/// origin zone code alongside for the response echo. Shared by the
/// single-job and batch paths so both reject with identical codes.
fn parse_place_job<'a>(
    snap: &Snapshot,
    body: &'a Value,
) -> Result<(PlaceRequest, &'a str), ApiError> {
    if !matches!(body, Value::Object(_)) {
        return Err(ApiError::bad_request(
            "bad-parameter",
            "each job must be a JSON object",
        ));
    }
    let origin_code = match body.get("origin") {
        Some(Value::String(code)) => code.as_str(),
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad-parameter",
                "origin must be a zone-code string",
            ))
        }
        None => {
            return Err(ApiError::bad_request(
                "missing-parameter",
                "origin is required",
            ))
        }
    };
    let origin = snap.traces().id_of(origin_code).map_err(|_| {
        ApiError::new(
            404,
            "unknown-region",
            format!("no trace for origin `{origin_code}`"),
        )
    })?;
    let duration_hours = require_whole(body, "duration_hours")?;
    let slack_hours = optional_whole(body, "slack_hours", 0)?;
    let slo_ms = match body.get("slo_ms") {
        None => 0.0,
        Some(Value::Number(n)) if *n >= 0.0 => *n,
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad-parameter",
                "slo_ms must be a non-negative number",
            ))
        }
    };
    let origin_start = snap.traces().series_by_id(origin).start();
    let arrival = Hour(optional_whole(body, "arrival_hour", u64::from(origin_start.0))? as u32);
    Ok((
        PlaceRequest {
            origin,
            arrival,
            duration_hours: duration_hours as usize,
            slack_hours: slack_hours as usize,
            slo_ms,
        },
        origin_code,
    ))
}

/// Renders one placement decision as the documented response object —
/// the same shape whether it answers a single call or fills one batch
/// result slot.
fn render_place_decision(
    snap: &Snapshot,
    origin_code: &str,
    query: &PlaceRequest,
    decision: &PlaceDecision,
) -> Value {
    let saved_pct = if decision.naive_g > 0.0 {
        decision.saved_g / decision.naive_g * 100.0
    } else {
        0.0
    };
    Value::object([
        ("origin", Value::from(origin_code)),
        ("arrival_hour", Value::from(f64::from(query.arrival.0))),
        ("duration_hours", Value::from(query.duration_hours as f64)),
        ("slack_hours", Value::from(query.slack_hours as f64)),
        ("slo_ms", Value::from(query.slo_ms)),
        ("region", Value::from(snap.traces().code(decision.region))),
        ("start_hour", Value::from(f64::from(decision.start.0))),
        (
            "wait_hours",
            Value::from(f64::from(decision.start.0 - query.arrival.0)),
        ),
        ("cost_g", Value::from(decision.cost_g)),
        ("naive_g", Value::from(decision.naive_g)),
        ("saved_g", Value::from(decision.saved_g)),
        ("saved_pct", Value::from(saved_pct)),
        ("rtt_ms", Value::from(decision.rtt_ms)),
        ("generation", Value::from(snap.generation() as f64)),
    ])
}

/// Parses an integer query parameter with a default.
fn parse_query(req: &Request, key: &str, default: i64) -> Result<i64, ApiError> {
    match req.query(key) {
        None => Ok(default),
        Some(raw) => raw.parse::<i64>().map_err(|_| {
            ApiError::bad_request(
                "bad-parameter",
                format!("{key} must be an integer, got `{raw}`"),
            )
        }),
    }
}

/// Extracts a required non-negative whole number from a JSON body.
fn require_whole(body: &Value, key: &str) -> Result<u64, ApiError> {
    match body.get(key) {
        None => Err(ApiError::bad_request(
            "missing-parameter",
            format!("{key} is required"),
        )),
        Some(value) => whole(value, key),
    }
}

/// Extracts an optional non-negative whole number with a default.
fn optional_whole(body: &Value, key: &str, default: u64) -> Result<u64, ApiError> {
    match body.get(key) {
        None => Ok(default),
        Some(value) => whole(value, key),
    }
}

fn whole(value: &Value, key: &str) -> Result<u64, ApiError> {
    match value {
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => Ok(*n as u64),
        _ => Err(ApiError::bad_request(
            "bad-parameter",
            format!("{key} must be a non-negative whole number"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;

    fn service() -> PlacementService {
        PlacementService::new(builtin_dataset())
    }

    fn get(target: &str) -> Request {
        Request::synthetic("GET", target, &[], b"")
    }

    fn post(target: &str, body: &str) -> Request {
        Request::synthetic("POST", target, &[], body.as_bytes())
    }

    #[test]
    fn subhourly_dataset_scales_forecast_and_place_responses() {
        use decarb_traces::{Resolution, TimeSeries, TraceSet};
        // A 30-day single-zone hourly trace re-expressed at 5 minutes:
        // wall-clock `hours` stay the request unit, samples scale 12×.
        let de = decarb_traces::catalog::region("DE").unwrap().clone();
        let start = year_start(2022);
        let values: Vec<f64> = (0..24 * 30).map(|i| 100.0 + (i % 24) as f64).collect();
        let hourly = TraceSet::from_series(vec![(de, TimeSeries::new(start, values))]);
        let fine = hourly
            .resample_to(Resolution::from_minutes(5).unwrap())
            .unwrap();
        let svc = PlacementService::new(Arc::new(fine));

        let (status, text) = svc.handle(&get("/v1/forecast/DE?hours=24"));
        assert_eq!(status, 200, "{text}");
        let json = decarb_json::parse(&text).unwrap();
        assert_eq!(json.get("hours"), Some(&Value::from(24.0)));
        assert_eq!(json.get("resolution_minutes"), Some(&Value::from(5.0)));
        assert_eq!(json.get("samples"), Some(&Value::from(288.0)));
        let Some(Value::Array(values)) = json.get("values_g_per_kwh") else {
            panic!("values missing")
        };
        assert_eq!(values.len(), 288);

        // Placement: wall-clock duration/slack, slot-axis arrival.
        let arrival = (start.0 + 10 * 24) * 12;
        let body = format!(
            r#"{{"origin":"DE","duration_hours":6,"slack_hours":24,"arrival_hour":{arrival}}}"#
        );
        let (status, text) = svc.handle(&post("/v1/place", &body));
        assert_eq!(status, 200, "{text}");
        let json = decarb_json::parse(&text).unwrap();
        let Some(Value::Number(start_slot)) = json.get("start_hour") else {
            panic!("start_hour missing")
        };
        // The diurnal minimum (hour 0 of the cycle) is hour-aligned.
        assert_eq!(*start_slot as u32 % 12, 0);
        // Grams are normalized to whole hours of draw: a 6-hour run in
        // the cheapest window of this cycle costs 100..=105 g/kWh ×6 h.
        let Some(Value::Number(cost)) = json.get("cost_g") else {
            panic!("cost_g missing")
        };
        assert!((600.0..=640.0).contains(cost), "cost_g {cost}");
    }

    #[test]
    fn healthz_reports_the_dataset() {
        let svc = service();
        let (status, body) = svc.handle(&get("/v1/healthz"));
        assert_eq!(status, 200);
        let json = decarb_json::parse(&body).unwrap();
        assert_eq!(json.get("status"), Some(&Value::from("ok")));
        assert_eq!(json.get("regions"), Some(&Value::from(123.0)));
        assert_eq!(json.get("generation"), Some(&Value::from(1.0)));
    }

    #[test]
    fn place_agrees_with_the_planner_ground_truth() {
        let svc = service();
        let arrival = year_start(2022).plus(90 * 24);
        let body = format!(
            r#"{{"origin":"DE","duration_hours":6,"slack_hours":24,"arrival_hour":{}}}"#,
            arrival.0
        );
        let (status, text) = svc.handle(&post("/v1/place", &body));
        assert_eq!(status, 200, "{text}");
        let json = decarb_json::parse(&text).unwrap();
        let snap = svc.snapshot();
        let de = snap.traces().id_of("DE").unwrap();
        let truth = snap.planner(de).best_deferred(arrival, 6, 24);
        assert_eq!(json.get("region"), Some(&Value::from("DE")));
        assert_eq!(
            json.get("start_hour"),
            Some(&Value::from(f64::from(truth.start.0)))
        );
        let Some(Value::Number(cost)) = json.get("cost_g") else {
            panic!("cost_g missing")
        };
        assert!((cost - truth.cost_g).abs() < 1e-9);
    }

    #[test]
    fn place_validates_every_field() {
        let svc = service();
        let cases = [
            ("{", 400, "bad-json"),
            ("{}", 400, "missing-parameter"),
            (r#"{"origin":7,"duration_hours":1}"#, 400, "bad-parameter"),
            (
                r#"{"origin":"NOPE","duration_hours":1}"#,
                404,
                "unknown-region",
            ),
            (r#"{"origin":"DE"}"#, 400, "missing-parameter"),
            (
                r#"{"origin":"DE","duration_hours":-2}"#,
                400,
                "bad-parameter",
            ),
            (
                r#"{"origin":"DE","duration_hours":1.5}"#,
                400,
                "bad-parameter",
            ),
            (
                r#"{"origin":"DE","duration_hours":0}"#,
                422,
                "zero-duration",
            ),
            (
                r#"{"origin":"DE","duration_hours":9999999}"#,
                422,
                "beyond-trace-end",
            ),
            (
                r#"{"origin":"DE","duration_hours":1,"slo_ms":"fast"}"#,
                400,
                "bad-parameter",
            ),
        ];
        for (body, expected_status, expected_code) in cases {
            let (status, text) = svc.handle(&post("/v1/place", body));
            assert_eq!(status, expected_status, "{body} → {text}");
            let json = decarb_json::parse(&text).unwrap();
            assert_eq!(
                json.get("error").and_then(|e| e.get("code")),
                Some(&Value::from(expected_code)),
                "{body}"
            );
        }
    }

    #[test]
    fn rankings_sort_and_limit() {
        let svc = service();
        let (status, text) = svc.handle(&get("/v1/rankings?year=2022&limit=3"));
        assert_eq!(status, 200);
        let json = decarb_json::parse(&text).unwrap();
        assert_eq!(json.get("count"), Some(&Value::from(3.0)));
        let Some(Value::Array(rows)) = json.get("rankings") else {
            panic!("rankings missing")
        };
        assert_eq!(rows[0].get("zone"), Some(&Value::from("SE")));
        let (status, _) = svc.handle(&get("/v1/rankings?year=2019"));
        assert_eq!(status, 400);
        let (status, _) = svc.handle(&get("/v1/rankings?year=abc"));
        assert_eq!(status, 400);
    }

    #[test]
    fn forecast_models_and_errors() {
        let svc = service();
        let (status, text) = svc.handle(&get("/v1/forecast/DE?hours=24"));
        assert_eq!(status, 200);
        let json = decarb_json::parse(&text).unwrap();
        assert_eq!(json.get("hours"), Some(&Value::from(24.0)));
        let Some(Value::Array(values)) = json.get("values_g_per_kwh") else {
            panic!("values missing")
        };
        assert_eq!(values.len(), 24);
        let (status, _) = svc.handle(&get("/v1/forecast/NOPE"));
        assert_eq!(status, 404);
        let (status, _) = svc.handle(&get("/v1/forecast/DE?hours=0"));
        assert_eq!(status, 400);
        let (status, _) = svc.handle(&get("/v1/forecast/DE?model=oracle"));
        assert_eq!(status, 400);
        let (status, _) = svc.handle(&get("/v1/forecast/DE?model=persistence"));
        assert_eq!(status, 200);
    }

    #[test]
    fn unknown_paths_and_methods_are_typed() {
        let svc = service();
        let (status, _) = svc.handle(&get("/nope"));
        assert_eq!(status, 404);
        let (status, _) = svc.handle(&post("/v1/rankings", ""));
        assert_eq!(status, 405);
        let (status, _) = svc.handle(&get("/v1/place"));
        assert_eq!(status, 405);
    }

    #[test]
    fn reload_without_a_loader_is_503_and_with_one_bumps_generation() {
        let svc = service();
        let (status, _) = svc.handle(&post("/v1/reload", ""));
        assert_eq!(status, 503);
        let svc = PlacementService::new(builtin_dataset())
            .with_loader(Box::new(|| Ok(builtin_dataset())));
        let before = svc.snapshot().generation();
        let (status, text) = svc.handle(&post("/v1/reload", ""));
        assert_eq!(status, 200);
        let json = decarb_json::parse(&text).unwrap();
        assert_eq!(
            json.get("generation"),
            Some(&Value::from((before + 1) as f64))
        );
        assert_eq!(svc.snapshot().generation(), before + 1);
    }

    #[test]
    fn place_answers_are_bit_identical_across_reload() {
        let svc = PlacementService::new(builtin_dataset())
            .with_loader(Box::new(|| Ok(builtin_dataset())));
        let arrival = year_start(2022).0;
        let body = format!(
            r#"{{"origin":"PL","duration_hours":4,"slack_hours":12,"slo_ms":1000,"arrival_hour":{arrival}}}"#
        );
        let (s1, before) = svc.handle(&post("/v1/place", &body));
        let (s2, _) = svc.handle(&post("/v1/reload", ""));
        let (s3, after) = svc.handle(&post("/v1/place", &body));
        assert_eq!((s1, s2, s3), (200, 200, 200));
        // The only field allowed to differ is the snapshot generation.
        let strip = |text: &str| {
            text.lines()
                .filter(|l| !l.contains("\"generation\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&before), strip(&after));
    }

    #[test]
    fn batch_answers_are_bit_identical_to_sequential_single_calls() {
        let svc = service();
        let arrival = year_start(2022).plus(60 * 24).0;
        let jobs: Vec<String> = (0..20)
            .map(|i| {
                format!(
                    r#"{{"origin":"{}","duration_hours":{},"slack_hours":{},"slo_ms":150,"arrival_hour":{}}}"#,
                    ["DE", "PL", "FR", "SE"][i % 4],
                    1 + i % 4,
                    (i % 3) * 12,
                    arrival + i as u32 * 5,
                )
            })
            .collect();
        let singles: Vec<String> = jobs
            .iter()
            .map(|job| {
                let (status, text) = svc.handle(&post("/v1/place", job));
                assert_eq!(status, 200, "{text}");
                text
            })
            .collect();
        let batch_body = format!("[{}]", jobs.join(","));
        let (status, text) = svc.handle(&post("/v1/place", &batch_body));
        assert_eq!(status, 200, "{text}");
        let json = decarb_json::parse(&text).unwrap();
        assert_eq!(json.get("count"), Some(&Value::from(20.0)));
        let Some(Value::Array(results)) = json.get("results") else {
            panic!("results missing")
        };
        for (result, single_text) in results.iter().zip(&singles) {
            let single = decarb_json::parse(single_text).unwrap();
            assert_eq!(*result, single, "batch slot must match its single call");
        }
        let summary = json.get("summary").unwrap();
        assert_eq!(summary.get("ok"), Some(&Value::from(20.0)));
        assert_eq!(summary.get("failed"), Some(&Value::from(0.0)));
        assert_eq!(summary.get("generation"), Some(&Value::from(1.0)));
    }

    #[test]
    fn batch_errors_fill_their_slot_without_failing_the_batch() {
        let svc = service();
        let body = r#"[
            {"origin":"DE","duration_hours":2},
            {"origin":"NOPE","duration_hours":1},
            {"origin":"DE","duration_hours":0},
            7,
            {"origin":"DE","duration_hours":3}
        ]"#;
        let (status, text) = svc.handle(&post("/v1/place", body));
        assert_eq!(status, 200, "{text}");
        let json = decarb_json::parse(&text).unwrap();
        let Some(Value::Array(results)) = json.get("results") else {
            panic!("results missing")
        };
        assert_eq!(results.len(), 5);
        assert!(results[0].get("region").is_some());
        let code = |i: usize| results[i].get("error").and_then(|e| e.get("code")).cloned();
        assert_eq!(code(1), Some(Value::from("unknown-region")));
        assert_eq!(code(2), Some(Value::from("zero-duration")));
        assert_eq!(code(3), Some(Value::from("bad-parameter")));
        assert!(results[4].get("region").is_some());
        let summary = json.get("summary").unwrap();
        assert_eq!(summary.get("ok"), Some(&Value::from(2.0)));
        assert_eq!(summary.get("failed"), Some(&Value::from(3.0)));
    }

    #[test]
    fn empty_and_oversized_batches_are_rejected() {
        let svc = service();
        let (status, text) = svc.handle(&post("/v1/place", "[]"));
        assert_eq!(status, 400);
        assert!(text.contains("empty-batch"), "{text}");
        let one_job = r#"{"origin":"DE","duration_hours":1}"#;
        let body = format!(
            "[{}]",
            std::iter::repeat_n(one_job, MAX_BATCH_JOBS + 1)
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, text) = svc.handle(&post("/v1/place", &body));
        assert_eq!(status, 413, "{text}");
        assert!(text.contains("batch-too-large"), "{text}");
    }

    #[test]
    fn capacity_limit_saturates_a_region_across_requests() {
        let svc = PlacementService::with_capacity(builtin_dataset(), 1);
        let body = r#"{"origin":"PL","duration_hours":2,"slo_ms":1e9}"#;
        let (s1, first) = svc.handle(&post("/v1/place", body));
        let (s2, second) = svc.handle(&post("/v1/place", body));
        assert_eq!((s1, s2), (200, 200));
        let winner = |text: &str| {
            decarb_json::parse(text)
                .unwrap()
                .get("region")
                .cloned()
                .unwrap()
        };
        assert_ne!(
            winner(&first),
            winner(&second),
            "a saturated region must stop winning placements"
        );
    }

    #[test]
    fn metrics_count_requests() {
        let svc = service();
        let _ = svc.handle(&get("/v1/healthz"));
        let _ = svc.handle(&post("/v1/place", "{}"));
        let (status, text) = svc.handle(&get("/v1/metrics_is_other"));
        assert_eq!(status, 404);
        let (status, text2) = svc.handle(&get("/v1/metrics"));
        assert_eq!(status, 200, "{text}");
        let json = decarb_json::parse(&text2).unwrap();
        assert_eq!(json.get("generation"), Some(&Value::from(1.0)));
        let requests = json.get("requests").unwrap();
        assert_eq!(requests.get("healthz"), Some(&Value::from(1.0)));
        assert_eq!(requests.get("place"), Some(&Value::from(1.0)));
    }
}
