//! Lock-free service counters for `GET /v1/metrics`.
//!
//! Every request increments one endpoint counter and one status-class
//! counter; placement decisions additionally record their service time
//! in a fixed-bucket latency histogram. Everything is a relaxed
//! `AtomicU64` — the metrics path must not serialize the worker
//! threads it measures.

use std::sync::atomic::{AtomicU64, Ordering};

use decarb_json::Value;

/// The endpoints the service counts individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Place,
    Rankings,
    Forecast,
    Regions,
    Healthz,
    Metrics,
    Reload,
    Other,
}

/// Endpoints in display order; must match [`Metrics::requests`] slots.
const ENDPOINTS: [Endpoint; 8] = [
    Endpoint::Place,
    Endpoint::Rankings,
    Endpoint::Forecast,
    Endpoint::Regions,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Reload,
    Endpoint::Other,
];

impl Endpoint {
    /// Classifies a request path.
    // decarb-analyze: hot-path
    pub fn of(path: &str) -> Endpoint {
        match path {
            "/v1/place" => Endpoint::Place,
            "/v1/rankings" => Endpoint::Rankings,
            "/v1/regions" => Endpoint::Regions,
            "/v1/healthz" => Endpoint::Healthz,
            "/v1/metrics" => Endpoint::Metrics,
            "/v1/reload" => Endpoint::Reload,
            path if path.starts_with("/v1/forecast/") => Endpoint::Forecast,
            _ => Endpoint::Other,
        }
    }

    /// The JSON key this endpoint reports under.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Place => "place",
            Endpoint::Rankings => "rankings",
            Endpoint::Forecast => "forecast",
            Endpoint::Regions => "regions",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Reload => "reload",
            Endpoint::Other => "other",
        }
    }

    fn slot(self) -> usize {
        self as usize
    }
}

/// Upper bounds of the latency histogram buckets, microseconds; one
/// implicit overflow bucket follows.
pub const LATENCY_BOUNDS_US: [u64; 8] = [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000];

/// Upper bounds of the requests-per-connection histogram (how well
/// keep-alive amortizes connection setup); one overflow bucket
/// follows.
pub const REUSE_BOUNDS: [u64; 6] = [1, 2, 5, 10, 100, 1_000];

/// Upper bounds of the batch-size histogram for batch `POST
/// /v1/place` calls; one overflow bucket follows.
pub const BATCH_BOUNDS: [u64; 5] = [1, 8, 64, 256, 1_000];

/// Service counters; shared across worker threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; 8],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    place_latency: [AtomicU64; 9],
    connections: AtomicU64,
    connection_requests: AtomicU64,
    reuse_hist: [AtomicU64; 7],
    batch_calls: AtomicU64,
    batch_jobs: AtomicU64,
    batch_hist: [AtomicU64; 6],
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request to `endpoint` answered with `status`.
    // decarb-analyze: hot-path
    pub fn record(&self, endpoint: Endpoint, status: u16) {
        self.requests[endpoint.slot()].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one placement decision's service time.
    // decarb-analyze: hot-path
    pub fn observe_place_us(&self, us: u64) {
        self.place_latency[bucket(&LATENCY_BOUNDS_US, us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one finished connection that served `requests` requests
    /// (possibly zero: a probe that connected and left).
    pub fn record_connection(&self, requests: u64) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.connection_requests
            .fetch_add(requests, Ordering::Relaxed);
        self.reuse_hist[bucket(&REUSE_BOUNDS, requests)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one batch `POST /v1/place` call carrying `jobs` jobs.
    pub fn record_batch(&self, jobs: u64) {
        self.batch_calls.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs.fetch_add(jobs, Ordering::Relaxed);
        self.batch_hist[bucket(&BATCH_BOUNDS, jobs)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the counters as the `/v1/metrics` JSON payload (minus
    /// the snapshot fields the service adds).
    pub fn to_json(&self) -> Value {
        let requests = Value::Object(
            ENDPOINTS
                .iter()
                .map(|e| {
                    (
                        e.label().to_string(),
                        Value::from(self.requests[e.slot()].load(Ordering::Relaxed) as f64),
                    )
                })
                .collect(),
        );
        Value::object([
            ("requests_total", Value::from(self.total_requests() as f64)),
            ("requests", requests),
            (
                "responses",
                Value::object([
                    (
                        "status_2xx",
                        Value::from(self.status_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "status_4xx",
                        Value::from(self.status_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "status_5xx",
                        Value::from(self.status_5xx.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "place_latency_us",
                histogram(&LATENCY_BOUNDS_US, &self.place_latency, "us"),
            ),
            (
                "connections",
                Value::object([
                    (
                        "accepted",
                        Value::from(self.connections.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "requests_served",
                        Value::from(self.connection_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "requests_per_connection",
                        histogram(&REUSE_BOUNDS, &self.reuse_hist, ""),
                    ),
                ]),
            ),
            (
                "batch",
                Value::object([
                    (
                        "place_calls",
                        Value::from(self.batch_calls.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "place_jobs",
                        Value::from(self.batch_jobs.load(Ordering::Relaxed) as f64),
                    ),
                    ("batch_size", histogram(&BATCH_BOUNDS, &self.batch_hist, "")),
                ]),
            ),
        ])
    }
}

/// The histogram slot for `v`: the first bucket whose bound admits it,
/// or the trailing overflow slot.
fn bucket(bounds: &[u64], v: u64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

/// Renders cumulative-style bucket counters as `le_{bound}{suffix}`
/// keys plus a trailing `overflow`.
fn histogram(bounds: &[u64], counters: &[AtomicU64], suffix: &str) -> Value {
    let mut buckets: Vec<(String, Value)> = bounds
        .iter()
        .zip(counters)
        .map(|(bound, counter)| {
            (
                format!("le_{bound}{suffix}"),
                Value::from(counter.load(Ordering::Relaxed) as f64),
            )
        })
        .collect();
    buckets.push((
        "overflow".to_string(),
        Value::from(counters[bounds.len()].load(Ordering::Relaxed) as f64),
    ));
    Value::Object(buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_classify_paths() {
        assert_eq!(Endpoint::of("/v1/place"), Endpoint::Place);
        assert_eq!(Endpoint::of("/v1/forecast/DE"), Endpoint::Forecast);
        assert_eq!(Endpoint::of("/v1/forecast/"), Endpoint::Forecast);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
    }

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record(Endpoint::Place, 200);
        m.record(Endpoint::Place, 422);
        m.record(Endpoint::Healthz, 200);
        m.observe_place_us(30);
        m.observe_place_us(70);
        m.observe_place_us(1_000_000);
        assert_eq!(m.total_requests(), 3);
        let json = m.to_json();
        assert_eq!(json.get("requests_total"), Some(&Value::from(3.0)));
        let requests = json.get("requests").unwrap();
        assert_eq!(requests.get("place"), Some(&Value::from(2.0)));
        assert_eq!(requests.get("healthz"), Some(&Value::from(1.0)));
        let lat = json.get("place_latency_us").unwrap();
        assert_eq!(lat.get("le_50us"), Some(&Value::from(1.0)));
        assert_eq!(lat.get("le_100us"), Some(&Value::from(1.0)));
        assert_eq!(lat.get("overflow"), Some(&Value::from(1.0)));
        let responses = json.get("responses").unwrap();
        assert_eq!(responses.get("status_2xx"), Some(&Value::from(2.0)));
        assert_eq!(responses.get("status_4xx"), Some(&Value::from(1.0)));
    }

    #[test]
    fn connection_reuse_counters_render() {
        let m = Metrics::new();
        m.record_connection(0);
        m.record_connection(1);
        m.record_connection(7);
        m.record_connection(5_000);
        let json = m.to_json();
        let conns = json.get("connections").unwrap();
        assert_eq!(conns.get("accepted"), Some(&Value::from(4.0)));
        assert_eq!(conns.get("requests_served"), Some(&Value::from(5008.0)));
        let hist = conns.get("requests_per_connection").unwrap();
        assert_eq!(hist.get("le_1"), Some(&Value::from(2.0)));
        assert_eq!(hist.get("le_10"), Some(&Value::from(1.0)));
        assert_eq!(hist.get("overflow"), Some(&Value::from(1.0)));
    }

    #[test]
    fn batch_counters_render() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(20);
        m.record_batch(2_000);
        let json = m.to_json();
        let batch = json.get("batch").unwrap();
        assert_eq!(batch.get("place_calls"), Some(&Value::from(3.0)));
        assert_eq!(batch.get("place_jobs"), Some(&Value::from(2021.0)));
        let hist = batch.get("batch_size").unwrap();
        assert_eq!(hist.get("le_1"), Some(&Value::from(1.0)));
        assert_eq!(hist.get("le_64"), Some(&Value::from(1.0)));
        assert_eq!(hist.get("overflow"), Some(&Value::from(1.0)));
    }
}
