//! Lock-free service counters for `GET /v1/metrics`.
//!
//! Every request increments one endpoint counter and one status-class
//! counter; placement decisions additionally record their service time
//! in a fixed-bucket latency histogram. Everything is a relaxed
//! `AtomicU64` — the metrics path must not serialize the worker
//! threads it measures.

use std::sync::atomic::{AtomicU64, Ordering};

use decarb_json::Value;

/// The endpoints the service counts individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Place,
    Rankings,
    Forecast,
    Regions,
    Healthz,
    Metrics,
    Reload,
    Other,
}

/// Endpoints in display order; must match [`Metrics::requests`] slots.
const ENDPOINTS: [Endpoint; 8] = [
    Endpoint::Place,
    Endpoint::Rankings,
    Endpoint::Forecast,
    Endpoint::Regions,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Reload,
    Endpoint::Other,
];

impl Endpoint {
    /// Classifies a request path.
    // decarb-analyze: hot-path
    pub fn of(path: &str) -> Endpoint {
        match path {
            "/v1/place" => Endpoint::Place,
            "/v1/rankings" => Endpoint::Rankings,
            "/v1/regions" => Endpoint::Regions,
            "/v1/healthz" => Endpoint::Healthz,
            "/v1/metrics" => Endpoint::Metrics,
            "/v1/reload" => Endpoint::Reload,
            path if path.starts_with("/v1/forecast/") => Endpoint::Forecast,
            _ => Endpoint::Other,
        }
    }

    /// The JSON key this endpoint reports under.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Place => "place",
            Endpoint::Rankings => "rankings",
            Endpoint::Forecast => "forecast",
            Endpoint::Regions => "regions",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Reload => "reload",
            Endpoint::Other => "other",
        }
    }

    fn slot(self) -> usize {
        self as usize
    }
}

/// Upper bounds of the latency histogram buckets, microseconds; one
/// implicit overflow bucket follows.
pub const LATENCY_BOUNDS_US: [u64; 8] = [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000];

/// Service counters; shared across worker threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; 8],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    place_latency: [AtomicU64; 9],
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request to `endpoint` answered with `status`.
    // decarb-analyze: hot-path
    pub fn record(&self, endpoint: Endpoint, status: u16) {
        self.requests[endpoint.slot()].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one placement decision's service time.
    // decarb-analyze: hot-path
    pub fn observe_place_us(&self, us: u64) {
        let mut slot = LATENCY_BOUNDS_US.len();
        for (i, &bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            if us <= bound {
                slot = i;
                break;
            }
        }
        self.place_latency[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the counters as the `/v1/metrics` JSON payload (minus
    /// the snapshot fields the service adds).
    pub fn to_json(&self) -> Value {
        let requests = Value::Object(
            ENDPOINTS
                .iter()
                .map(|e| {
                    (
                        e.label().to_string(),
                        Value::from(self.requests[e.slot()].load(Ordering::Relaxed) as f64),
                    )
                })
                .collect(),
        );
        let mut buckets: Vec<(String, Value)> = LATENCY_BOUNDS_US
            .iter()
            .enumerate()
            .map(|(i, bound)| {
                (
                    format!("le_{bound}us"),
                    Value::from(self.place_latency[i].load(Ordering::Relaxed) as f64),
                )
            })
            .collect();
        buckets.push((
            "overflow".to_string(),
            Value::from(self.place_latency[8].load(Ordering::Relaxed) as f64),
        ));
        Value::object([
            ("requests_total", Value::from(self.total_requests() as f64)),
            ("requests", requests),
            (
                "responses",
                Value::object([
                    (
                        "status_2xx",
                        Value::from(self.status_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "status_4xx",
                        Value::from(self.status_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "status_5xx",
                        Value::from(self.status_5xx.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            ("place_latency_us", Value::Object(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_classify_paths() {
        assert_eq!(Endpoint::of("/v1/place"), Endpoint::Place);
        assert_eq!(Endpoint::of("/v1/forecast/DE"), Endpoint::Forecast);
        assert_eq!(Endpoint::of("/v1/forecast/"), Endpoint::Forecast);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
    }

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record(Endpoint::Place, 200);
        m.record(Endpoint::Place, 422);
        m.record(Endpoint::Healthz, 200);
        m.observe_place_us(30);
        m.observe_place_us(70);
        m.observe_place_us(1_000_000);
        assert_eq!(m.total_requests(), 3);
        let json = m.to_json();
        assert_eq!(json.get("requests_total"), Some(&Value::from(3.0)));
        let requests = json.get("requests").unwrap();
        assert_eq!(requests.get("place"), Some(&Value::from(2.0)));
        assert_eq!(requests.get("healthz"), Some(&Value::from(1.0)));
        let lat = json.get("place_latency_us").unwrap();
        assert_eq!(lat.get("le_50us"), Some(&Value::from(1.0)));
        assert_eq!(lat.get("le_100us"), Some(&Value::from(1.0)));
        assert_eq!(lat.get("overflow"), Some(&Value::from(1.0)));
        let responses = json.get("responses").unwrap();
        assert_eq!(responses.get("status_2xx"), Some(&Value::from(2.0)));
        assert_eq!(responses.get("status_4xx"), Some(&Value::from(1.0)));
    }
}
