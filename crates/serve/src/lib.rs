//! `decarb-serve` — the carbon-aware placement service.
//!
//! The batch pipeline answers retrospective questions; this crate
//! answers the operational one — *this job is being submitted now:
//! where and when should it run?* — as a dependency-free HTTP/1.1
//! daemon on std TCP (`decarb-cli serve`). The control-plane shape
//! follows CarbonScaler-style online schedulers: a scheduler calls
//! `POST /v1/place` per job (or posts an array of jobs as one batch)
//! and gets back a region, a start hour, and the estimated g·CO₂eq
//! saved against running the job immediately at its origin.
//!
//! Layering:
//!
//! * [`http`] — a bounded request parser and response writer with
//!   HTTP/1.1 keep-alive; requests parse into reusable buffers and
//!   every malformed input is a typed 4xx, never a panic.
//! * [`api`] — the `/v1` routes over a [`decarb_sim::Snapshot`]
//!   (interned regions, dense series, prebuilt RTT/planner tables)
//!   behind an atomically swapped `Arc`; `POST /v1/reload` rebuilds
//!   off-lock and swaps, so readers never wait. Batch placements fan
//!   out over `decarb-par` when admission control allows.
//! * [`metrics`] — relaxed-atomic request counters, placement latency
//!   and connection-reuse histograms, and batch-size counters for
//!   `GET /v1/metrics`.
//! * [`server`] — the TCP accept loop, worker-thread pool, and the
//!   zero-allocation keep-alive connection loop
//!   ([`server::handle_connection`]).
//! * [`loadgen`] — the in-tree load harness behind
//!   `decarb-cli serve bench`: N concurrent keep-alive connections,
//!   requests/sec and latency percentiles.
//!
//! The full endpoint reference lives in `docs/API.md`.

pub mod api;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use api::{ApiError, Loader, PlacementService};
pub use http::{read_request, write_response, HttpError, Request};
pub use loadgen::{LoadConfig, LoadReport, MAX_PIPELINE};
pub use metrics::{Endpoint, Metrics};
pub use server::{handle_connection, Server};
