//! A bounded HTTP/1.1 request parser and response writer on `std` I/O.
//!
//! The service speaks just enough HTTP for its JSON API: request line,
//! headers, `Content-Length` bodies, and HTTP/1.1 **keep-alive** — a
//! connection serves many requests through one reused [`Request`]
//! buffer, closing only when the peer asks (`Connection: close`, or an
//! HTTP/1.0 request without `Connection: keep-alive`), idles past the
//! server's timeout, or exhausts the per-connection request bound.
//! Every limit is explicit — request line and header lines are capped
//! at [`MAX_LINE_BYTES`], header count at [`MAX_HEADERS`], bodies at
//! [`MAX_BODY_BYTES`] — and every malformed input becomes a typed
//! [`HttpError`] carrying the 4xx status to answer with, never a
//! panic: the daemon's worker threads must survive arbitrary bytes
//! from the network.
//!
//! Allocation discipline: [`read_request_into`] parses into a
//! caller-owned [`Request`] whose buffers (head bytes, header spans,
//! body) are cleared and refilled in place, and [`render_response`]
//! serializes into a caller-owned `Vec<u8>` — so a keep-alive
//! connection's steady state performs no per-request heap churn.

use std::io::{BufRead, Write};

/// Longest accepted request or header line, bytes (including CRLF).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most header lines accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A byte range into [`Request::head`].
type Span = (usize, usize);

/// One parsed HTTP request, backed by reusable buffers.
///
/// The raw request line and header bytes live in one `head` buffer and
/// the parsed fields are spans into it, so parsing the next request on
/// a keep-alive connection reuses every allocation of the previous
/// one. Construct with [`Request::new`] (empty, ready for
/// [`read_request_into`]) or [`Request::synthetic`] (tests, benches,
/// embedders).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    /// Raw request-line + header bytes; spans index into this.
    head: Vec<u8>,
    method: Span,
    target: Span,
    /// `(name, value)` spans; names are lower-cased in place.
    headers: Vec<(Span, Span)>,
    /// Raw body bytes (empty without a `Content-Length`).
    body: Vec<u8>,
    /// Whether the request line declared `HTTP/1.1` (keep-alive by
    /// default) rather than `HTTP/1.0` (close by default).
    http11: bool,
}

impl Request {
    /// An empty request, ready to be filled by [`read_request_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an owned request without any socket I/O — the test and
    /// bench entry point, and how embedders hand a request straight to
    /// `PlacementService::handle`. Header names are stored lower-cased,
    /// matching the parser.
    pub fn synthetic(method: &str, target: &str, headers: &[(&str, &str)], body: &[u8]) -> Self {
        let mut req = Self::new();
        req.head.extend_from_slice(method.as_bytes());
        req.method = (0, req.head.len());
        let target_start = req.head.len();
        req.head.extend_from_slice(target.as_bytes());
        req.target = (target_start, req.head.len());
        for (name, value) in headers {
            let name_start = req.head.len();
            req.head
                .extend_from_slice(name.to_ascii_lowercase().as_bytes());
            let name_span = (name_start, req.head.len());
            let value_start = req.head.len();
            req.head.extend_from_slice(value.as_bytes());
            req.headers.push((name_span, (value_start, req.head.len())));
        }
        req.body.extend_from_slice(body);
        req.http11 = true;
        req
    }

    fn str_at(&self, span: Span) -> &str {
        std::str::from_utf8(&self.head[span.0..span.1]).unwrap_or("")
    }

    /// Upper-case method token (`GET`, `POST`, ...).
    pub fn method(&self) -> &str {
        self.str_at(self.method)
    }

    /// The raw request target, e.g. `/v1/rankings?year=2022`.
    pub fn target(&self) -> &str {
        self.str_at(self.target)
    }

    /// Raw body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Header `(name, value)` pairs in arrival order; names
    /// lower-cased.
    pub fn headers(&self) -> impl Iterator<Item = (&str, &str)> {
        self.headers
            .iter()
            .map(|&(name, value)| (self.str_at(name), self.str_at(value)))
    }

    /// The first value of header `name` (give the name lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value)
    }

    /// Whether the connection should stay open after answering this
    /// request: HTTP/1.1 defaults to keep-alive unless the peer sent
    /// `Connection: close`; HTTP/1.0 defaults to close unless it sent
    /// `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The target's path component, without the query string.
    pub fn path(&self) -> &str {
        let target = self.target();
        target.split('?').next().unwrap_or(target)
    }

    /// Iterates `key=value` pairs of the query string (no %-decoding;
    /// the API's parameters are plain tokens).
    pub fn query_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.target()
            .split_once('?')
            .map(|(_, q)| q)
            .unwrap_or("")
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
    }

    /// The first value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query_pairs().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A request that could not be read; maps to one 4xx response.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-request (includes an idle-timeout expiry
    /// while waiting for the next keep-alive request).
    Io(std::io::Error),
    /// The request line was not `METHOD TARGET HTTP/1.x`.
    BadRequestLine(String),
    /// A request or header line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// A header line had no `:` separator.
    BadHeader(String),
    /// `Content-Length` was not a non-negative integer.
    BadContentLength(String),
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl HttpError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 400,
            HttpError::BadRequestLine(_) | HttpError::BadHeader(_) => 400,
            HttpError::BadContentLength(_) => 400,
            HttpError::LineTooLong | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge(_) => 413,
        }
    }

    /// A short machine-readable error code for the JSON body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Io(_) => "io",
            HttpError::BadRequestLine(_) => "bad-request-line",
            HttpError::LineTooLong => "header-too-large",
            HttpError::TooManyHeaders => "too-many-headers",
            HttpError::BadHeader(_) => "bad-header",
            HttpError::BadContentLength(_) => "bad-content-length",
            HttpError::BodyTooLarge(_) => "body-too-large",
        }
    }

    /// Whether this error is a socket failure (peer gone, idle timeout)
    /// rather than a protocol violation — the connection loop closes
    /// quietly instead of answering a 4xx nobody will read.
    pub fn is_io(&self) -> bool {
        matches!(self, HttpError::Io(_))
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::BadRequestLine(line) => write!(f, "malformed request line `{line}`"),
            HttpError::LineTooLong => {
                write!(f, "request or header line exceeds {MAX_LINE_BYTES} bytes")
            }
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadHeader(line) => write!(f, "malformed header `{line}`"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length `{v}`"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "declared body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one `\n`-terminated line, appending its bytes to `buf` and
/// returning the span of the line content (trailing CRLF excluded).
/// Rejects lines over [`MAX_LINE_BYTES`]. `Ok(None)` on EOF before any
/// byte of this line.
fn read_line_into<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
) -> Result<Option<Span>, HttpError> {
    let start = buf.len();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if buf.len() == start {
                return Ok(None);
            }
            break;
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(available.len());
        if buf.len() - start + take > MAX_LINE_BYTES {
            return Err(HttpError::LineTooLong);
        }
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    let mut end = buf.len();
    while end > start && (buf[end - 1] == b'\n' || buf[end - 1] == b'\r') {
        end -= 1;
    }
    // Keep the trimmed CRLF bytes out of the buffer so the next line
    // starts exactly at the span end.
    buf.truncate(end);
    Ok(Some((start, end)))
}

/// Splits a request line span into `(method, target, http11)`,
/// requiring an `HTTP/1.x` version token.
fn parse_request_line(head: &[u8], line: Span) -> Result<(Span, Span, bool), HttpError> {
    let bad =
        || HttpError::BadRequestLine(String::from_utf8_lossy(&head[line.0..line.1]).into_owned());
    let mut tokens: [Span; 3] = [(0, 0); 3];
    let mut count = 0usize;
    let mut i = line.0;
    while i < line.1 {
        if head[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < line.1 && !head[i].is_ascii_whitespace() {
            i += 1;
        }
        if count == 3 {
            return Err(bad());
        }
        tokens[count] = (start, i);
        count += 1;
    }
    if count != 3 {
        return Err(bad());
    }
    let [method, target, version] = tokens;
    let version_bytes = &head[version.0..version.1];
    if !version_bytes.starts_with(b"HTTP/1.") {
        return Err(bad());
    }
    if method.0 == method.1 || head.get(target.0) != Some(&b'/') {
        return Err(bad());
    }
    // Method and target must be valid UTF-8 for the string accessors.
    if std::str::from_utf8(&head[method.0..target.1]).is_err() {
        return Err(bad());
    }
    Ok((method, target, version_bytes == b"HTTP/1.1"))
}

/// Reads one full request from `reader` into `req`, reusing its
/// buffers. Returns `Ok(false)` when the peer closed the connection
/// before sending anything (the clean end of a keep-alive session).
pub fn read_request_into<R: BufRead>(reader: &mut R, req: &mut Request) -> Result<bool, HttpError> {
    req.head.clear();
    req.headers.clear();
    req.body.clear();
    let Some(line) = read_line_into(reader, &mut req.head)? else {
        return Ok(false);
    };
    let (method, target, http11) = parse_request_line(&req.head, line)?;
    req.method = method;
    req.target = target;
    req.http11 = http11;
    let mut content_length = 0usize;
    while let Some(line) = read_line_into(reader, &mut req.head)? {
        if line.0 == line.1 {
            break;
        }
        if req.headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let Some(colon) = req.head[line.0..line.1].iter().position(|&b| b == b':') else {
            return Err(HttpError::BadHeader(
                String::from_utf8_lossy(&req.head[line.0..line.1]).into_owned(),
            ));
        };
        let mut name = (line.0, line.0 + colon);
        let mut value = (line.0 + colon + 1, line.1);
        trim_span(&req.head, &mut name);
        trim_span(&req.head, &mut value);
        req.head[name.0..name.1].make_ascii_lowercase();
        if &req.head[name.0..name.1] == b"content-length" {
            let raw = &req.head[value.0..value.1];
            let parsed = std::str::from_utf8(raw)
                .ok()
                .and_then(|s| s.parse::<usize>().ok());
            let Some(n) = parsed else {
                return Err(HttpError::BadContentLength(
                    String::from_utf8_lossy(raw).into_owned(),
                ));
            };
            if n > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge(n));
            }
            content_length = n;
        }
        req.headers.push((name, value));
    }
    req.body.resize(content_length, 0);
    reader.read_exact(&mut req.body)?;
    Ok(true)
}

/// Shrinks a span to exclude leading/trailing ASCII whitespace.
fn trim_span(bytes: &[u8], span: &mut Span) {
    while span.0 < span.1 && bytes[span.0].is_ascii_whitespace() {
        span.0 += 1;
    }
    while span.1 > span.0 && bytes[span.1 - 1].is_ascii_whitespace() {
        span.1 -= 1;
    }
}

/// Reads one full request from `reader` into a fresh [`Request`].
/// `Ok(None)` when the peer closed the connection before sending
/// anything. Allocating convenience wrapper over [`read_request_into`]
/// for tests and one-shot embedders; the connection loop reuses one
/// `Request` instead.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut req = Request::new();
    Ok(read_request_into(reader, &mut req)?.then_some(req))
}

/// The reason phrase for the statuses this API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one JSON response into `out` (cleared first), with
/// `connection: keep-alive` or `close` per `keep_alive`. The
/// connection loop reuses one output buffer across requests, so the
/// steady state writes each response with zero allocation.
pub fn render_response(out: &mut Vec<u8>, status: u16, body: &str, keep_alive: bool) {
    out.clear();
    // `write!` into a `Vec<u8>` is infallible (it only grows).
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.extend_from_slice(body.as_bytes());
}

/// Writes one JSON response to `writer`. Convenience wrapper over
/// [`render_response`] for one-shot responders.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    render_response(&mut out, status, body, keep_alive);
    writer.write_all(&out)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /v1/rankings?year=2022&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method(), "GET");
        assert_eq!(req.path(), "/v1/rankings");
        assert_eq!(req.query("year"), Some("2022"));
        assert_eq!(req.query("limit"), Some("5"));
        assert_eq!(req.query("missing"), None);
        assert_eq!(req.headers().collect::<Vec<_>>(), vec![("host", "x")]);
        assert!(req.body().is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(b"POST /v1/place HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method(), "POST");
        assert_eq!(req.body(), b"{}\r\n");
    }

    #[test]
    fn eof_before_any_byte_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn a_reused_request_is_reparsed_in_place() {
        let mut req = Request::new();
        let first = b"POST /v1/place HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let second = b"GET /v1/healthz HTTP/1.0\r\n\r\n";
        let mut reader = BufReader::new(&first[..]);
        assert!(read_request_into(&mut reader, &mut req).unwrap());
        assert_eq!(req.method(), "POST");
        assert_eq!(req.body(), b"{}");
        assert!(req.keep_alive());
        let mut reader = BufReader::new(&second[..]);
        assert!(read_request_into(&mut reader, &mut req).unwrap());
        assert_eq!(req.method(), "GET");
        assert_eq!(req.path(), "/v1/healthz");
        assert!(req.body().is_empty());
        assert!(req.headers().next().is_none());
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_version_defaults() {
        let close11 = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close11.keep_alive());
        let keep10 = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(keep10.keep_alive());
        let default11 = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(default11.keep_alive());
    }

    #[test]
    fn synthetic_requests_match_parsed_ones() {
        let parsed = parse(b"POST /v1/place HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap()
            .unwrap();
        let built = Request::synthetic("POST", "/v1/place", &[("Content-Length", "2")], b"{}");
        assert_eq!(built.method(), parsed.method());
        assert_eq!(built.target(), parsed.target());
        assert_eq!(built.body(), parsed.body());
        assert_eq!(built.header("content-length"), Some("2"));
        assert!(built.keep_alive());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{err}");
            assert!(matches!(err, HttpError::BadRequestLine(_)));
        }
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::LineTooLong));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("x-h-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::TooManyHeaders));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn colonless_header_is_400() {
        let err = parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadHeader(_)));
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn bad_content_length_is_400_and_huge_is_413() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadContentLength(_)));
        assert_eq!(err.status(), 400);
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)));
        assert!(err.is_io());
    }

    #[test]
    fn two_pipelined_requests_parse_back_to_back() {
        let raw = b"GET /v1/healthz HTTP/1.1\r\n\r\nPOST /v1/place HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut reader = BufReader::new(&raw[..]);
        let mut req = Request::new();
        assert!(read_request_into(&mut reader, &mut req).unwrap());
        assert_eq!(req.path(), "/v1/healthz");
        assert!(read_request_into(&mut reader, &mut req).unwrap());
        assert_eq!(req.path(), "/v1/place");
        assert_eq!(req.body(), b"{}");
        assert!(!read_request_into(&mut reader, &mut req).unwrap());
    }

    #[test]
    fn response_writer_frames_json() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn render_response_reuses_the_buffer_and_marks_keep_alive() {
        let mut out = Vec::with_capacity(256);
        render_response(&mut out, 200, "{}", true);
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        let capacity = out.capacity();
        render_response(&mut out, 404, "{\"error\":1}", false);
        assert_eq!(out.capacity(), capacity, "render must not reallocate");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
