//! A bounded HTTP/1.1 request parser and response writer on `std` I/O.
//!
//! The service speaks just enough HTTP for its JSON API: request line,
//! headers, `Content-Length` bodies, one request per connection
//! (`Connection: close` on every response). Every limit is explicit —
//! request line and header lines are capped at [`MAX_LINE_BYTES`],
//! header count at [`MAX_HEADERS`], bodies at [`MAX_BODY_BYTES`] — and
//! every malformed input becomes a typed [`HttpError`] carrying the
//! 4xx status to answer with, never a panic: the daemon's worker
//! threads must survive arbitrary bytes from the network.

use std::io::{BufRead, Write};

/// Longest accepted request or header line, bytes (including CRLF).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most header lines accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// The raw request target, e.g. `/v1/rankings?year=2022`.
    pub target: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component, without the query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Iterates `key=value` pairs of the query string (no %-decoding;
    /// the API's parameters are plain tokens).
    pub fn query_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.target
            .split_once('?')
            .map(|(_, q)| q)
            .unwrap_or("")
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
    }

    /// The first value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query_pairs().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A request that could not be read; maps to one 4xx response.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-request.
    Io(std::io::Error),
    /// The request line was not `METHOD TARGET HTTP/1.x`.
    BadRequestLine(String),
    /// A request or header line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// A header line had no `:` separator.
    BadHeader(String),
    /// `Content-Length` was not a non-negative integer.
    BadContentLength(String),
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl HttpError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) => 400,
            HttpError::BadRequestLine(_) | HttpError::BadHeader(_) => 400,
            HttpError::BadContentLength(_) => 400,
            HttpError::LineTooLong | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge(_) => 413,
        }
    }

    /// A short machine-readable error code for the JSON body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Io(_) => "io",
            HttpError::BadRequestLine(_) => "bad-request-line",
            HttpError::LineTooLong => "header-too-large",
            HttpError::TooManyHeaders => "too-many-headers",
            HttpError::BadHeader(_) => "bad-header",
            HttpError::BadContentLength(_) => "bad-content-length",
            HttpError::BodyTooLarge(_) => "body-too-large",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::BadRequestLine(line) => write!(f, "malformed request line `{line}`"),
            HttpError::LineTooLong => {
                write!(f, "request or header line exceeds {MAX_LINE_BYTES} bytes")
            }
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadHeader(line) => write!(f, "malformed header `{line}`"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length `{v}`"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "declared body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one `\n`-terminated line, rejecting lines over
/// [`MAX_LINE_BYTES`]; trims the trailing CRLF. `Ok(None)` on EOF
/// before any byte.
fn read_line_capped<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            break;
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(available.len());
        if line.len() + take > MAX_LINE_BYTES {
            return Err(HttpError::LineTooLong);
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
}

/// Parses a request line into `(method, target)`, requiring an
/// `HTTP/1.x` version token.
fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine(line.to_string()));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequestLine(line.to_string()));
    }
    if method.is_empty() || !target.starts_with('/') {
        return Err(HttpError::BadRequestLine(line.to_string()));
    }
    Ok((method.to_string(), target.to_string()))
}

/// Reads one full request from `reader`. `Ok(None)` when the peer
/// closed the connection before sending anything.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_capped(reader)? else {
        return Ok(None);
    };
    let (method, target) = parse_request_line(&line)?;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length = 0usize;
    while let Some(line) = read_line_capped(reader)? {
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(line));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::BadContentLength(value.clone()))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge(content_length));
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// The reason phrase for the statuses this API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one JSON response with `Connection: close`.
pub fn write_response<W: Write>(writer: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /v1/rankings?year=2022&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/v1/rankings");
        assert_eq!(req.query("year"), Some("2022"));
        assert_eq!(req.query("limit"), Some("5"));
        assert_eq!(req.query("missing"), None);
        assert_eq!(req.headers, vec![("host".to_string(), "x".to_string())]);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(b"POST /v1/place HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{}\r\n");
    }

    #[test]
    fn eof_before_any_byte_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{err}");
            assert!(matches!(err, HttpError::BadRequestLine(_)));
        }
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::LineTooLong));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("x-h-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::TooManyHeaders));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn colonless_header_is_400() {
        let err = parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadHeader(_)));
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn bad_content_length_is_400_and_huge_is_413() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadContentLength(_)));
        assert_eq!(err.status(), 400);
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)));
    }

    #[test]
    fn response_writer_frames_json() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
