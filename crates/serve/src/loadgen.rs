//! The in-tree load harness behind `decarb-cli serve bench`.
//!
//! Drives N concurrent client connections against a running placement
//! server and reports sustained requests/sec plus latency
//! percentiles. Two modes bracket what keep-alive buys: `keep_alive:
//! true` holds every connection open and streams request after
//! request through it (reconnecting transparently when the server
//! rotates a connection at its per-connection request bound), while
//! `keep_alive: false` opens a fresh TCP connection per request — the
//! close-per-request baseline the keep-alive speedup in
//! `crates/bench/BASELINE.md` is measured against. In keep-alive mode
//! a `pipeline` depth > 1 writes that many requests back-to-back
//! before reading their responses, amortizing per-exchange syscalls
//! the way a streaming client does instead of strict ping-pong.
//!
//! The harness speaks just enough HTTP/1.1 to frame responses by
//! `content-length`; it deliberately shares no code with the server's
//! parser so a framing bug on either side shows up as a harness
//! failure instead of being masked.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// What to drive at the server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections (worker threads).
    pub connections: usize,
    /// Requests each worker issues.
    pub requests_per_connection: u64,
    /// Jobs per `POST /v1/place` body; 1 sends the single-job object,
    /// larger values send a JSON array of that many jobs.
    pub batch: usize,
    /// `true` reuses each connection across requests; `false` opens a
    /// fresh connection per request (the baseline).
    pub keep_alive: bool,
    /// Requests written back-to-back before reading their responses
    /// (keep-alive only; ignored in close mode, where each connection
    /// carries exactly one request). Depth 1 is strict ping-pong; a
    /// deeper pipeline amortizes per-exchange syscalls the way a
    /// streaming client would. Under pipelining a request's recorded
    /// latency is the round trip of its whole chunk. Capped at
    /// [`MAX_PIPELINE`] so a chunk can never overrun socket buffers.
    pub pipeline: usize,
}

/// Upper bound on [`LoadConfig::pipeline`]: 64 in-flight requests is
/// ~10 KiB of request bytes and ~32 KiB of queued responses, safely
/// inside default socket buffers on every platform we run on.
pub const MAX_PIPELINE: usize = 64;

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests_per_connection: 1000,
            batch: 1,
            keep_alive: true,
            pipeline: 1,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total requests answered across all workers.
    pub requests: u64,
    /// Non-200 answers (still counted in `requests`).
    pub failures: u64,
    /// Wall-clock time from first byte to last.
    pub elapsed: Duration,
    /// Requests per second over the whole run.
    pub rps: f64,
    /// Latency percentiles over every request, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Slowest single request, microseconds.
    pub max_us: u64,
}

impl LoadReport {
    /// One-line human summary, e.g. for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} requests in {:.2}s: {:.0} req/s, p50 {} us, p90 {} us, p99 {} us, max {} us, {} failures",
            self.requests,
            self.elapsed.as_secs_f64(),
            self.rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
            self.failures,
        )
    }
}

impl LoadConfig {
    /// Runs the configured load against `addr`, blocking until every
    /// worker finishes. Fails fast on connect errors (server down),
    /// not on HTTP-level failures (those are counted).
    pub fn run(&self, addr: SocketAddr) -> std::io::Result<LoadReport> {
        let body = place_body(self.batch);
        let request = render_request(&body, self.keep_alive);
        let connections = self.connections.max(1);
        let per_worker = self.requests_per_connection.max(1);
        let pipeline = if self.keep_alive {
            self.pipeline.clamp(1, MAX_PIPELINE)
        } else {
            1
        };
        let started = Instant::now();
        let mut outcomes: Vec<std::io::Result<(Vec<u64>, u64)>> = Vec::with_capacity(connections);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|_| {
                    let request = &request;
                    let keep_alive = self.keep_alive;
                    scope.spawn(move || worker(addr, request, per_worker, keep_alive, pipeline))
                })
                .collect();
            for handle in handles {
                outcomes.push(handle.join().expect("load worker panicked"));
            }
        });
        let elapsed = started.elapsed();
        let mut latencies = Vec::with_capacity(connections * per_worker as usize);
        let mut failures = 0u64;
        for outcome in outcomes {
            let (mut worker_latencies, worker_failures) = outcome?;
            latencies.append(&mut worker_latencies);
            failures += worker_failures;
        }
        latencies.sort_unstable();
        let requests = latencies.len() as u64;
        Ok(LoadReport {
            requests,
            failures,
            elapsed,
            rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: percentile(&latencies, 50.0),
            p90_us: percentile(&latencies, 90.0),
            p99_us: percentile(&latencies, 99.0),
            max_us: latencies.last().copied().unwrap_or(0),
        })
    }
}

/// One worker's request loop; returns its per-request latencies
/// (microseconds) and non-200 count.
fn worker(
    addr: SocketAddr,
    request: &[u8],
    requests: u64,
    keep_alive: bool,
    pipeline: usize,
) -> std::io::Result<(Vec<u64>, u64)> {
    let mut latencies = Vec::with_capacity(requests as usize);
    let mut failures = 0u64;
    let mut conn = if keep_alive {
        Some(Conn::open(addr)?)
    } else {
        None
    };
    // The pipeline chunk is the request repeated `pipeline` times; a
    // short final chunk is a prefix slice of it.
    let chunk = request.repeat(pipeline);
    let mut remaining = requests;
    while remaining > 0 {
        let depth = usize::try_from(remaining)
            .unwrap_or(usize::MAX)
            .min(pipeline);
        let bytes = &chunk[..depth * request.len()];
        let t = Instant::now();
        let bad = if keep_alive {
            let live = conn.as_mut().expect("keep-alive worker holds a connection");
            match live.exchange_pipelined(bytes, depth) {
                Ok(bad) => bad,
                // The server rotated this connection (request bound or
                // idle timeout); reconnect once and retry the chunk.
                Err(_) => {
                    let mut fresh = Conn::open(addr)?;
                    let bad = fresh.exchange_pipelined(bytes, depth)?;
                    conn = Some(fresh);
                    bad
                }
            }
        } else {
            u64::from(Conn::open(addr)?.exchange(request)? != 200)
        };
        let elapsed = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
        for _ in 0..depth {
            latencies.push(elapsed);
        }
        failures += bad;
        remaining -= depth as u64;
    }
    Ok((latencies, failures))
}

/// One client connection: buffered read half, raw write half, and the
/// line/body scratch buffers reused across every response so the
/// measurement loop itself allocates nothing per request.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
    body: Vec<u8>,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            line: String::with_capacity(128),
            body: Vec::new(),
        })
    }

    /// Writes `depth` pipelined requests in one syscall (`chunk` is
    /// the request repeated `depth` times), then reads the matching
    /// responses; returns how many were non-200. A server that cannot
    /// handle pipelined requests shows up here as a framing error, not
    /// a silent undercount.
    fn exchange_pipelined(&mut self, chunk: &[u8], depth: usize) -> std::io::Result<u64> {
        self.writer.write_all(chunk)?;
        let mut failures = 0u64;
        for _ in 0..depth {
            if self.read_response()? != 200 {
                failures += 1;
            }
        }
        Ok(failures)
    }

    /// Writes one prebuilt request and reads one response, returning
    /// its status code.
    fn exchange(&mut self, request: &[u8]) -> std::io::Result<u16> {
        self.writer.write_all(request)?;
        self.read_response()
    }

    /// Reads one `content-length`-framed response off the connection.
    fn read_response(&mut self) -> std::io::Result<u16> {
        self.line.clear();
        self.reader.read_line(&mut self.line)?;
        let status: u16 = self
            .line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {:?}", self.line),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            self.line.clear();
            self.reader.read_line(&mut self.line)?;
            let trimmed = self.line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    if let Ok(parsed) = value.trim().parse::<usize>() {
                        content_length = parsed;
                    }
                }
            }
        }
        self.body.resize(content_length, 0);
        self.reader.read_exact(&mut self.body)?;
        Ok(status)
    }
}

/// The `POST /v1/place` body the harness sends: one representative job
/// (origin `DE`, 4 hours of work, 12 hours of slack, 150 ms SLO), or a
/// JSON array of `batch` copies.
pub fn place_body(batch: usize) -> String {
    const JOB: &str = r#"{"origin":"DE","duration_hours":4,"slack_hours":12,"slo_ms":150}"#;
    if batch <= 1 {
        return JOB.to_string();
    }
    let mut body = String::with_capacity(2 + batch * (JOB.len() + 1));
    body.push('[');
    for i in 0..batch {
        if i > 0 {
            body.push(',');
        }
        body.push_str(JOB);
    }
    body.push(']');
    body
}

fn render_request(body: &str, keep_alive: bool) -> Vec<u8> {
    format!(
        "POST /v1/place HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use decarb_traces::builtin_dataset;

    use crate::api::PlacementService;
    use crate::server::Server;

    fn boot(threads: usize) -> SocketAddr {
        let service = Arc::new(PlacementService::new(builtin_dataset()));
        let server = Server::bind("127.0.0.1:0", service).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = server.run(threads);
        });
        addr
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn batch_bodies_are_valid_json_arrays() {
        assert!(place_body(1).starts_with('{'));
        let body = place_body(3);
        let parsed = decarb_json::parse(&body).unwrap();
        let decarb_json::Value::Array(jobs) = parsed else {
            panic!("expected array")
        };
        assert_eq!(jobs.len(), 3);
    }

    #[test]
    fn keep_alive_load_runs_against_a_live_server() {
        let addr = boot(2);
        let report = LoadConfig {
            connections: 2,
            requests_per_connection: 25,
            ..LoadConfig::default()
        }
        .run(addr)
        .unwrap();
        assert_eq!(report.requests, 50);
        assert_eq!(report.failures, 0);
        assert!(report.rps > 0.0);
        assert!(report.p50_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
    }

    #[test]
    fn pipelined_load_answers_every_request() {
        let addr = boot(2);
        // 25 requests at depth 8: two full chunks and a short tail per
        // worker, all answered off one connection.
        let report = LoadConfig {
            connections: 2,
            requests_per_connection: 25,
            pipeline: 8,
            ..LoadConfig::default()
        }
        .run(addr)
        .unwrap();
        assert_eq!(report.requests, 50);
        assert_eq!(report.failures, 0);
    }

    #[test]
    fn close_per_request_load_runs_against_a_live_server() {
        let addr = boot(2);
        let report = LoadConfig {
            connections: 2,
            requests_per_connection: 10,
            batch: 4,
            keep_alive: false,
            ..LoadConfig::default()
        }
        .run(addr)
        .unwrap();
        assert_eq!(report.requests, 20);
        assert_eq!(report.failures, 0);
    }
}
