//! Normalized autocorrelation.

/// Computes the normalized autocorrelation of `signal` at `lag`.
///
/// The signal is mean-centered; the result is in `[-1, 1]` for stationary
/// signals. Returns 0.0 when the lag leaves fewer than two overlapping
/// samples or the signal has no variance.
pub fn autocorrelation(signal: &[f64], lag: usize) -> f64 {
    if signal.len() < 2 || lag + 2 > signal.len() {
        return 0.0;
    }
    let n = signal.len();
    let mean = signal.iter().sum::<f64>() / n as f64;
    let var: f64 = signal.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = signal[..n - lag]
        .iter()
        .zip(&signal[lag..])
        .map(|(&a, &b)| (a - mean) * (b - mean))
        .sum::<f64>()
        / (n - lag) as f64;
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!((autocorrelation(&signal, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_signal_peaks_at_period() {
        let period = 24;
        let signal: Vec<f64> = (0..24 * 60)
            .map(|t| (std::f64::consts::TAU * t as f64 / period as f64).sin())
            .collect();
        let at_period = autocorrelation(&signal, period);
        let off_period = autocorrelation(&signal, period / 2);
        assert!(at_period > 0.95, "at period: {at_period}");
        assert!(off_period < -0.9, "half period: {off_period}");
    }

    #[test]
    fn white_noise_decorrelates() {
        // A simple LCG noise sequence.
        let mut x = 12345u64;
        let signal: Vec<f64> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as f64 / (1u64 << 31) as f64 - 0.5
            })
            .collect();
        assert!(autocorrelation(&signal, 7).abs() < 0.05);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0], 1), 0.0);
        // Lag too large for overlap.
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 2), 0.0);
    }
}
