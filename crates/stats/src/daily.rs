//! The paper's variability metric: *average daily coefficient of
//! variation* (§4.1, footnote 1).
//!
//! For an hourly signal, each UTC day's CV (σ/μ within the day) is
//! computed, then averaged across days. Regions below 0.1 are classified
//! as "low daily variation"; the paper finds > 70 % of regions fall there.

/// Hours per day used to chunk hourly signals.
const HOURS_PER_DAY: usize = 24;

/// Computes the average daily CV of an hourly signal.
///
/// Trailing partial days are ignored. Days with non-positive mean are
/// skipped. Returns 0.0 if no complete day is available.
pub fn average_daily_cv(hourly: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut days = 0usize;
    for day in hourly.chunks_exact(HOURS_PER_DAY) {
        let mean: f64 = day.iter().sum::<f64>() / HOURS_PER_DAY as f64;
        if mean <= 0.0 {
            continue;
        }
        let var: f64 =
            day.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / HOURS_PER_DAY as f64;
        acc += var.sqrt() / mean;
        days += 1;
    }
    if days == 0 {
        0.0
    } else {
        acc / days as f64
    }
}

/// Classification threshold: daily CV below this is "low variation".
pub const LOW_VARIATION_THRESHOLD: f64 = 0.1;

/// Returns `true` if the signal counts as low-variation per the paper.
pub fn is_low_variation(hourly: &[f64]) -> bool {
    average_daily_cv(hourly) < LOW_VARIATION_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_has_zero_cv() {
        let signal = vec![100.0; 24 * 7];
        assert_eq!(average_daily_cv(&signal), 0.0);
        assert!(is_low_variation(&signal));
    }

    #[test]
    fn known_daily_cv() {
        // Alternate 50/150 within each day: mean 100, std 50 → CV 0.5.
        let day: Vec<f64> = (0..24)
            .map(|h| if h % 2 == 0 { 50.0 } else { 150.0 })
            .collect();
        let signal: Vec<f64> = day.repeat(10);
        assert!((average_daily_cv(&signal) - 0.5).abs() < 1e-12);
        assert!(!is_low_variation(&signal));
    }

    #[test]
    fn cross_day_drift_does_not_count() {
        // Each day is constant, but the level drifts across days: the
        // *daily* CV must still be zero (this is the metric's point).
        let mut signal = Vec::new();
        for d in 0..30 {
            signal.extend(std::iter::repeat_n(100.0 + d as f64 * 10.0, 24));
        }
        assert_eq!(average_daily_cv(&signal), 0.0);
    }

    #[test]
    fn partial_days_ignored() {
        let signal = vec![1.0; 30];
        // Only one complete day; 6 trailing hours dropped.
        assert_eq!(average_daily_cv(&signal), 0.0);
        let short = vec![1.0; 5];
        assert_eq!(average_daily_cv(&short), 0.0);
    }

    #[test]
    fn non_positive_days_skipped() {
        let mut signal = vec![0.0; 24];
        signal.extend(vec![100.0; 24]);
        assert_eq!(average_daily_cv(&signal), 0.0);
    }
}
