//! Rank-correlation statistics.
//!
//! The paper's §5.1.4 argument — "migrating once to the greenest region
//! maximizes carbon reductions" — rests on the claim that regions'
//! carbon-intensity maintains the same *rank order* most of the time.
//! Kendall's τ between the instantaneous ranking and a reference ranking
//! is the standard way to quantify that claim.

/// Kendall's τ-a rank correlation between two aligned samples.
///
/// Counts concordant minus discordant pairs over all pairs; ties (in
/// either sample) count as neither. Returns a value in `[-1, 1]`, `None`
/// when fewer than two observations exist.
///
/// The O(n²) pair scan is deliberate: the workspace correlates across
/// ≤ 123 regions (≈ 7.5 k pairs), far below the break-even of the
/// O(n log n) merge-sort formulation.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "samples must align");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let product = da * db;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Spearman's ρ rank correlation between two aligned samples.
///
/// Ranks both samples (average ranks for ties) and returns the Pearson
/// correlation of the ranks; `None` when fewer than two observations or
/// zero rank variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "samples must align");
    if a.len() < 2 {
        return None;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    crate::descriptive::pearson(&ra, &rb)
}

/// Average ranks (1-based) with ties sharing the mean of their positions.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut out = vec![0.0; values.len()];
    let mut pos = 0usize;
    while pos < order.len() {
        let mut end = pos + 1;
        while end < order.len() && values[order[end]] == values[order[pos]] {
            end += 1;
        }
        // Positions pos..end share the average 1-based rank.
        let avg = (pos + 1 + end) as f64 / 2.0;
        for &idx in &order[pos..end] {
            out[idx] = avg;
        }
        pos = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orderings_have_tau_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(kendall_tau(&a, &b), Some(1.0));
        assert!((spearman_rho(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orderings_have_tau_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &b), Some(-1.0));
        assert!((spearman_rho(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_swap_in_four_elements() {
        // Swapping one adjacent pair flips 1 of 6 pairs: τ = (5−1)/6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 3.0, 2.0, 4.0];
        let tau = kendall_tau(&a, &b).unwrap();
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_neither_concordant_nor_discordant() {
        let a = [1.0, 1.0, 2.0];
        let b = [5.0, 6.0, 7.0];
        // Pairs: (0,1) tied in a; (0,2) and (1,2) concordant → τ = 2/3.
        let tau = kendall_tau(&a, &b).unwrap();
        assert!((tau - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn independent_samples_near_zero() {
        // A fixed pseudo-random pairing should land near zero.
        let a: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| ((i * 23 + 7) % 50) as f64).collect();
        let tau = kendall_tau(&a, &b).unwrap();
        assert!(tau.abs() < 0.3, "tau {tau}");
    }

    #[test]
    fn ranks_handle_ties_with_average() {
        let r = ranks(&[10.0, 20.0, 20.0, 5.0]);
        assert_eq!(r, vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), None);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), None);
        assert_eq!(spearman_rho(&[1.0], &[1.0]), None);
        // Constant sample: zero rank variance.
        assert_eq!(spearman_rho(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn tau_bounded_on_arbitrary_data() {
        let a: Vec<f64> = (0..30).map(|i| ((i * 13 + 3) % 17) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i * 7 + 5) % 19) as f64).collect();
        let tau = kendall_tau(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&tau));
        let rho = spearman_rho(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&rho));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
