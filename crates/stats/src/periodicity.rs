//! Period detection with periodicity scores — the equivalent of Azure Data
//! Explorer's `series_periods_detect()` used for the paper's Fig. 4.
//!
//! The pipeline mirrors the Kusto implementation's structure:
//!
//! 1. compute the FFT periodogram of the mean-centered signal and take
//!    local maxima as candidate periods;
//! 2. detrend the signal (subtract a centered moving average) so slow
//!    seasonal drift does not masquerade as short-period correlation;
//! 3. score each candidate as the detrended autocorrelation at that lag
//!    minus any *positive* correlation at the half lag (anti-phase test:
//!    genuinely periodic signals correlate at `p` but not at `p/2`, while
//!    smooth trends correlate at both), refining the lag in a ±2 sample
//!    neighbourhood;
//! 4. return candidates sorted by score in `[0, 1]`.
//!
//! A score of 1 means the pattern repeats exactly (US-WA in the paper);
//! a score of 0 means no periodicity (Hong Kong, Indonesia).

use crate::autocorr::autocorrelation;
use crate::fft::power_spectrum;

/// A detected period with its periodicity score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedPeriod {
    /// Period length in samples (hours for hourly traces).
    pub period: usize,
    /// Score in `[0, 1]`; higher means a stronger, more exact repeat.
    pub score: f64,
}

/// Maximum number of candidate periodogram peaks examined.
const MAX_CANDIDATES: usize = 16;

/// Detects periods in `signal`, returning candidates with score at least
/// `min_score`, sorted by descending score.
///
/// Periods are constrained to `[2, signal.len() / 3]` so at least three
/// full cycles support each detection.
pub fn detect_periods(signal: &[f64], min_score: f64) -> Vec<DetectedPeriod> {
    if signal.len() < 6 {
        return Vec::new();
    }
    let (power, padded) = power_spectrum(signal);
    if power.is_empty() {
        return Vec::new();
    }
    let max_period = signal.len() / 3;

    // Collect local maxima of the periodogram.
    let mut peaks: Vec<(usize, f64)> = Vec::new();
    for k in 2..power.len().saturating_sub(1) {
        if power[k] > power[k - 1] && power[k] >= power[k + 1] {
            peaks.push((k, power[k]));
        }
    }
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    peaks.truncate(MAX_CANDIDATES);

    let detrended = detrend(signal, 169);
    let mut results: Vec<DetectedPeriod> = Vec::new();
    for (bin, _) in peaks {
        let est = padded as f64 / bin as f64;
        let rounded = est.round() as usize;
        if rounded < 2 || rounded > max_period {
            continue;
        }
        // Refine the lag in a small neighbourhood.
        let (best_period, best_score) = ((rounded.saturating_sub(2))..=(rounded + 2))
            .filter(|&p| p >= 2 && p <= max_period)
            .map(|p| (p, score_at(&detrended, p)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((rounded, 0.0));
        if best_score >= min_score && !results.iter().any(|r| r.period == best_period) {
            results.push(DetectedPeriod {
                period: best_period,
                score: best_score.min(1.0),
            });
        }
    }
    results.sort_by(|a, b| b.score.total_cmp(&a.score));
    results
}

/// Scores a specific `period` for `signal` in `[0, 1]`.
///
/// This is the Fig. 4 primitive: the anti-phase-corrected detrended
/// autocorrelation at the period lag, refined over a ±1 neighbourhood to
/// absorb rounding of non-integer periods.
pub fn periodicity_score(signal: &[f64], period: usize) -> f64 {
    if period < 2 || signal.len() < 3 * period {
        return 0.0;
    }
    let detrended = detrend(signal, 169);
    (period - 1..=period + 1)
        .map(|p| score_at(&detrended, p))
        .fold(0.0f64, f64::max)
        .clamp(0.0, 1.0)
}

/// Scores lag `p` on an already-detrended signal: the autocorrelation at
/// `p` discounted by any positive autocorrelation at the anti-phase lag
/// `p / 2`. Smooth (trend-like) signals correlate at both lags and score
/// ≈ 0; genuinely periodic signals only correlate at the full lag.
fn score_at(detrended: &[f64], p: usize) -> f64 {
    let at_period = autocorrelation(detrended, p);
    let anti = if p >= 4 {
        autocorrelation(detrended, p / 2).max(0.0)
    } else {
        0.0
    };
    (at_period - anti).clamp(0.0, 1.0)
}

/// Subtracts a centered moving average of odd width `window` (clamped to
/// the signal length) to remove slow trends.
fn detrend(signal: &[f64], window: usize) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let window = window
        .min(if n.is_multiple_of(2) { n - 1 } else { n })
        .max(1);
    let half = window / 2;
    // Prefix sums for O(1) windowed means.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in signal {
        acc += v;
        prefix.push(acc);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let mean = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
            signal[i] - mean
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_signal(days: usize, noise: f64) -> Vec<f64> {
        let mut x = 987654321u64;
        (0..days * 24)
            .map(|t| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let n = (x >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
                100.0 + 20.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin() + noise * n
            })
            .collect()
    }

    #[test]
    fn detects_clean_daily_period() {
        let signal = daily_signal(60, 0.0);
        let periods = detect_periods(&signal, 0.3);
        assert!(!periods.is_empty());
        assert_eq!(periods[0].period, 24);
        assert!(periods[0].score > 0.95, "score {}", periods[0].score);
    }

    #[test]
    fn detects_noisy_daily_period() {
        let signal = daily_signal(60, 15.0);
        let periods = detect_periods(&signal, 0.3);
        assert!(periods.iter().any(|p| p.period == 24));
    }

    #[test]
    fn detects_weekly_and_daily() {
        let signal: Vec<f64> = (0..24 * 7 * 20)
            .map(|t| {
                let daily = (std::f64::consts::TAU * t as f64 / 24.0).sin();
                let weekly = (std::f64::consts::TAU * t as f64 / 168.0).sin();
                100.0 + 10.0 * daily + 8.0 * weekly
            })
            .collect();
        let periods = detect_periods(&signal, 0.3);
        assert!(periods.iter().any(|p| p.period == 24), "{periods:?}");
        assert!(
            periods.iter().any(|p| (166..=170).contains(&p.period)),
            "{periods:?}"
        );
    }

    #[test]
    fn white_noise_has_no_periods() {
        let mut x = 5u64;
        let signal: Vec<f64> = (0..24 * 90)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let periods = detect_periods(&signal, 0.4);
        assert!(periods.is_empty(), "{periods:?}");
        assert!(periodicity_score(&signal, 24) < 0.2);
    }

    #[test]
    fn score_ignores_slow_trend() {
        // Pure slow seasonal drift must not register as 24 h periodicity.
        let signal: Vec<f64> = (0..24 * 365)
            .map(|t| 400.0 + 100.0 * (std::f64::consts::TAU * t as f64 / 8760.0).cos())
            .collect();
        assert!(
            periodicity_score(&signal, 24) < 0.3,
            "score {}",
            periodicity_score(&signal, 24)
        );
    }

    #[test]
    fn score_of_exact_daily_pattern_is_one() {
        let signal = daily_signal(365, 0.0);
        let score = periodicity_score(&signal, 24);
        assert!(score > 0.98, "score {score}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(detect_periods(&[1.0, 2.0], 0.1).is_empty());
        assert_eq!(periodicity_score(&[1.0; 10], 24), 0.0);
        assert_eq!(periodicity_score(&[1.0; 100], 1), 0.0);
        assert!(detrend(&[], 5).is_empty());
    }

    #[test]
    fn detrend_removes_linear_trend() {
        let signal: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let detrended = detrend(&signal, 21);
        // Interior points should be ≈ 0 (boundary effects at the ends).
        for v in &detrended[20..180] {
            assert!(v.abs() < 1e-9, "{v}");
        }
    }
}
