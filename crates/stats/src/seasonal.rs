//! Classical seasonal decomposition of hourly series.
//!
//! §4.3 of the paper establishes *that* carbon-intensity is periodic;
//! decomposition shows *how much* of the signal the period explains. The
//! additive model `x = trend + seasonal + residual` with a centered
//! moving-average trend is the textbook method (the core of STL without
//! the loess robustness pass), and Hyndman's strength-of-seasonality
//! statistic turns it into the single number the temporal-shifting story
//! depends on: high seasonal strength means valleys are predictable and
//! deferral works; low strength leaves only noise to chase.

/// An additive decomposition `x = trend + seasonal + residual`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The period used, in samples.
    pub period: usize,
    /// Centered moving-average trend (edges extended flat).
    pub trend: Vec<f64>,
    /// Zero-mean seasonal component, one value per phase, tiled.
    pub seasonal: Vec<f64>,
    /// What remains.
    pub residual: Vec<f64>,
}

impl Decomposition {
    /// Reconstructs the original series (exact by construction).
    pub fn reconstruct(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.seasonal)
            .zip(&self.residual)
            .map(|((t, s), r)| t + s + r)
            .collect()
    }

    /// Strength of seasonality in `[0, 1]` (Hyndman & Athanasopoulos):
    /// `max(0, 1 − var(residual) / var(seasonal + residual))`.
    pub fn seasonal_strength(&self) -> f64 {
        strength(&self.residual, &self.seasonal)
    }

    /// Strength of trend in `[0, 1]`, analogous with the trend component.
    pub fn trend_strength(&self) -> f64 {
        strength(&self.residual, &self.trend)
    }
}

fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
}

fn strength(residual: &[f64], component: &[f64]) -> f64 {
    let combined: Vec<f64> = residual.iter().zip(component).map(|(r, c)| r + c).collect();
    let denom = variance(&combined);
    if denom == 0.0 {
        return 0.0;
    }
    (1.0 - variance(residual) / denom).max(0.0)
}

/// Decomposes `values` additively at `period`.
///
/// Returns `None` when the series is shorter than two full periods (the
/// seasonal means would be meaningless) or `period < 2`.
pub fn decompose(values: &[f64], period: usize) -> Option<Decomposition> {
    if period < 2 || values.len() < 2 * period {
        return None;
    }
    let n = values.len();

    // Centered moving average; for even periods the standard 2×MA with
    // half-weights at both ends.
    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    for (i, slot) in trend.iter_mut().enumerate().take(n - half).skip(half) {
        let sum = if period % 2 == 1 {
            values[i - half..=i + half].iter().sum::<f64>() / period as f64
        } else {
            let core: f64 = values[i - half + 1..i + half].iter().sum();
            (core + 0.5 * values[i - half] + 0.5 * values[i + half]) / period as f64
        };
        *slot = sum;
    }
    // Extend the edges flat so every sample decomposes.
    let first = trend[half];
    let last = trend[n - half - 1];
    for slot in trend.iter_mut().take(half) {
        *slot = first;
    }
    for slot in trend.iter_mut().skip(n - half) {
        *slot = last;
    }

    // Per-phase means of the detrended series, recentered to zero.
    let mut phase_sum = vec![0.0; period];
    let mut phase_n = vec![0usize; period];
    for i in 0..n {
        let detrended = values[i] - trend[i];
        phase_sum[i % period] += detrended;
        phase_n[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_n)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for m in &mut phase_mean {
        *m -= grand;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| phase_mean[i % period]).collect();
    // Fold the recentering constant into the trend so the reconstruction
    // stays exact.
    let trend: Vec<f64> = trend.iter().map(|t| t + grand).collect();
    let residual: Vec<f64> = (0..n).map(|i| values[i] - trend[i] - seasonal[i]).collect();

    Some(Decomposition {
        period,
        trend,
        seasonal,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_plus_trend(n: usize, amp: f64, slope: f64) -> Vec<f64> {
        (0..n)
            .map(|t| {
                300.0 + slope * t as f64 + amp * (std::f64::consts::TAU * t as f64 / 24.0).sin()
            })
            .collect()
    }

    #[test]
    fn reconstruction_is_exact() {
        let x = sine_plus_trend(24 * 10, 100.0, 0.05);
        let d = decompose(&x, 24).unwrap();
        for (a, b) in d.reconstruct().iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_a_pure_daily_cycle() {
        let x = sine_plus_trend(24 * 20, 100.0, 0.0);
        let d = decompose(&x, 24).unwrap();
        assert!(d.seasonal_strength() > 0.99, "{}", d.seasonal_strength());
        // The seasonal component carries (almost) the full amplitude.
        let max_seasonal = d.seasonal.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max_seasonal - 100.0).abs() < 2.0, "{max_seasonal}");
        // The trend is flat at the base level.
        for t in &d.trend[24..d.trend.len() - 24] {
            assert!((t - 300.0).abs() < 1.0, "{t}");
        }
    }

    #[test]
    fn separates_trend_from_cycle() {
        let x = sine_plus_trend(24 * 20, 50.0, 0.2);
        let d = decompose(&x, 24).unwrap();
        assert!(d.seasonal_strength() > 0.95);
        assert!(d.trend_strength() > 0.95);
        // Interior trend follows the slope.
        let rise = d.trend[300] - d.trend[100];
        assert!((rise - 0.2 * 200.0).abs() < 5.0, "rise {rise}");
    }

    #[test]
    fn noise_has_low_seasonal_strength() {
        // A deterministic pseudo-random walkless noise series.
        let x: Vec<f64> = (0..24 * 15)
            .map(|t| 300.0 + ((t * 2654435761usize) % 199) as f64 - 99.0)
            .collect();
        let d = decompose(&x, 24).unwrap();
        assert!(d.seasonal_strength() < 0.5, "{}", d.seasonal_strength());
    }

    #[test]
    fn seasonal_component_sums_to_zero_per_cycle() {
        let x = sine_plus_trend(24 * 12, 80.0, 0.1);
        let d = decompose(&x, 24).unwrap();
        let cycle_sum: f64 = d.seasonal[..24].iter().sum();
        assert!(cycle_sum.abs() < 1e-9, "{cycle_sum}");
    }

    #[test]
    fn odd_periods_work() {
        let x: Vec<f64> = (0..70)
            .map(|t| 100.0 + 10.0 * (std::f64::consts::TAU * t as f64 / 7.0).sin())
            .collect();
        let d = decompose(&x, 7).unwrap();
        assert!(d.seasonal_strength() > 0.9);
        for (a, b) in d.reconstruct().iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn too_short_or_degenerate_returns_none() {
        assert!(decompose(&[1.0; 47], 24).is_none());
        assert!(decompose(&[1.0; 100], 1).is_none());
        assert!(decompose(&[], 24).is_none());
    }

    #[test]
    fn constant_series_has_zero_strengths() {
        let x = vec![42.0; 24 * 5];
        let d = decompose(&x, 24).unwrap();
        assert_eq!(d.seasonal_strength(), 0.0);
        assert_eq!(d.trend_strength(), 0.0);
    }
}
