//! Least-squares linear regression.
//!
//! Used for the §5.3.1 observation that every 1 % of idle capacity buys
//! ≈ 1 % (≈ 3.68 g·CO2eq) of global average emission reduction.

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (R²).
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a least-squares line through `(x, y)` pairs.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// points, or `x` has no variance.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
        syy += (yi - my) * (yi - my);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy <= 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_high_r2() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                3.0 * v
                    + 2.0
                    + if (v as usize).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn horizontal_line() {
        let x = [0.0, 1.0, 2.0];
        let y = [4.0, 4.0, 4.0];
        let fit = linear_fit(&x, &y).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        // Zero x-variance.
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }
}
