//! Statistics substrate for the `decarb` workspace.
//!
//! The paper's global carbon analysis (§4) rests on a handful of
//! statistical tools that its artifact borrows from pandas, scikit-learn,
//! and Azure Data Explorer. This crate reimplements each of them from
//! scratch so the workspace has no external analytics dependencies:
//!
//! * [`descriptive`] — means, variance, coefficient of variation,
//!   quantiles, confidence intervals;
//! * [`daily`] — the paper's *average daily CV* variability metric;
//! * [mod@fft] — an iterative radix-2 Cooley–Tukey FFT;
//! * [`periodicity`] — FFT-periodogram period detection with an
//!   autocorrelation score in `[0, 1]`, equivalent to Azure Data Explorer's
//!   `series_periods_detect()` used for Fig. 4;
//! * [`autocorr`] — normalized autocorrelation;
//! * [mod@kmeans] — deterministic K-Means++ (Fig. 3(b) clustering);
//! * [`regression`] — least-squares linear fit (the idle-capacity ≈
//!   reduction correlation in §5.3.1);
//! * [`rank`] — Kendall's τ and Spearman's ρ (the §5.1.4 rank-order
//!   stability claim).

pub mod autocorr;
pub mod daily;
pub mod descriptive;
pub mod fft;
pub mod kmeans;
pub mod periodicity;
pub mod rank;
pub mod regression;
pub mod seasonal;

pub use autocorr::autocorrelation;
pub use daily::average_daily_cv;
pub use descriptive::Summary;
pub use fft::{fft, ifft, Complex};
pub use kmeans::{kmeans, KMeansResult};
pub use periodicity::{detect_periods, periodicity_score, DetectedPeriod};
pub use rank::{kendall_tau, spearman_rho};
pub use regression::{linear_fit, LinearFit};
pub use seasonal::{decompose, Decomposition};
