//! Descriptive statistics over `f64` slices.

/// A one-pass summary of a sample: moments, extremes, and derived ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `values`.
    ///
    /// Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Returns the coefficient of variation (σ / μ).
    ///
    /// Returns 0.0 when the mean is zero to keep downstream table code
    /// panic-free on degenerate inputs.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Returns the half-width of a normal-approximation 95 % confidence
    /// interval for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Returns the arithmetic mean of `values` (0.0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Returns the `q`-quantile of `values` using linear interpolation.
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Returns the Pearson correlation between two equal-length samples.
///
/// Returns `None` if the slices differ in length, are shorter than two
/// elements, or either sample has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let narrow = Summary::of(&[1.0, 2.0, 3.0].repeat(100)).unwrap();
        let wide = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert!((quantile(&v, 0.1).unwrap() - 1.4).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), None);
        // Out-of-range q clamps.
        assert_eq!(quantile(&v, 2.0), Some(5.0));
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), Some(3.0));
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn mean_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3.0, 5.0]), 4.0);
    }
}
