//! Deterministic K-Means++ clustering.
//!
//! The paper clusters regions by their 2020→2022 change in carbon-intensity
//! and daily CV (Fig. 3(b)) with scikit-learn's K-Means++ and `k = 3`. This
//! implementation uses the same algorithm (D² seeding followed by Lloyd
//! iterations) with a deterministic seeded generator so cluster assignments
//! are reproducible.

/// Result of a K-Means clustering run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index for every input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Simple deterministic generator for seeding (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs K-Means++ on `points` with `k` clusters.
///
/// Returns `None` when `points` is empty, `k` is zero, or the points have
/// inconsistent dimensionality.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> Option<KMeansResult> {
    if points.is_empty() || k == 0 {
        return None;
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return None;
    }
    let k = k.min(points.len());
    let mut rng = Rng(seed);

    // K-Means++ seeding: first centroid uniform, then D²-weighted.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (rng.uniform() * points.len() as f64) as usize % points.len();
    centroids.push(points[first].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick round-robin.
            centroids.len() % points.len()
        } else {
            let mut target = rng.uniform() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let newest = points[next].clone();
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, &newest);
            if d < dists[i] {
                dists[i] = d;
            }
        }
        centroids.push(newest);
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b])))
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (cv, &sv) in c.iter_mut().zip(sum) {
                    *cv = sv / count as f64;
                }
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    Some(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            points.push(vec![0.0 + jitter, 0.0 - jitter]);
            points.push(vec![10.0 - jitter, 10.0 + jitter]);
            points.push(vec![-10.0 + jitter, 10.0 - jitter]);
        }
        points
    }

    #[test]
    fn separates_three_blobs() {
        let points = three_blobs();
        let result = kmeans(&points, 3, 42, 100).unwrap();
        // Points 0, 1, 2 are in different blobs; their clusters must differ
        // pairwise, and blob membership must be consistent.
        let c0 = result.assignments[0];
        let c1 = result.assignments[1];
        let c2 = result.assignments[2];
        assert!(c0 != c1 && c1 != c2 && c0 != c2);
        for i in 0..20 {
            assert_eq!(result.assignments[3 * i], c0);
            assert_eq!(result.assignments[3 * i + 1], c1);
            assert_eq!(result.assignments[3 * i + 2], c2);
        }
        assert!(result.inertia < 1.0, "inertia {}", result.inertia);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points = three_blobs();
        let a = kmeans(&points, 3, 7, 100).unwrap();
        let b = kmeans(&points, 3, 7, 100).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_larger_than_points_clamps() {
        let points = vec![vec![0.0], vec![1.0]];
        let result = kmeans(&points, 10, 1, 50).unwrap();
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn identical_points_are_fine() {
        let points = vec![vec![1.0, 1.0]; 8];
        let result = kmeans(&points, 3, 1, 50).unwrap();
        assert!(result.inertia < 1e-18);
        assert!(result
            .assignments
            .iter()
            .all(|&a| a < result.centroids.len()));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kmeans(&[], 3, 1, 10).is_none());
        assert!(kmeans(&[vec![1.0]], 0, 1, 10).is_none());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 2, 1, 10).is_none());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![vec![1.0], vec![3.0], vec![5.0]];
        let result = kmeans(&points, 1, 9, 50).unwrap();
        assert!((result.centroids[0][0] - 3.0).abs() < 1e-12);
        assert_eq!(result.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points = three_blobs();
        let k1 = kmeans(&points, 1, 3, 100).unwrap().inertia;
        let k3 = kmeans(&points, 3, 3, 100).unwrap().inertia;
        assert!(k3 < k1);
    }
}
