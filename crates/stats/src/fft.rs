//! Iterative radix-2 Cooley–Tukey fast Fourier transform.
//!
//! Supports power-of-two lengths directly; callers with arbitrary lengths
//! (a year is 8760 hours) zero-pad via [`fft_padded`]. This is the engine
//! behind the periodogram in [`crate::periodicity`].

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Returns the squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// Computes the in-place FFT of `data`.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two (use [`fft_padded`] for
/// arbitrary lengths).
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// Computes the in-place inverse FFT of `data`, including the 1/N scaling.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * std::f64::consts::TAU / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for chunk in data.chunks_exact_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let t = w.mul(*b);
                let u = *a;
                *a = u.add(t);
                *b = u.sub(t);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
}

/// Computes the FFT of a real signal, zero-padded to the next power of two
/// at least `min_len` long. Returns the complex spectrum.
pub fn fft_padded(signal: &[f64], min_len: usize) -> Vec<Complex> {
    let n = signal.len().max(min_len).max(1).next_power_of_two();
    let mut data: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
    data.resize(n, Complex::default());
    fft(&mut data);
    data
}

/// Computes the power spectrum (squared magnitudes, DC removed) of a real
/// signal after mean-centering and zero-padding.
///
/// Returns `(power, padded_len)`; `power[k]` corresponds to frequency
/// `k / padded_len` cycles per sample for `k < padded_len / 2`.
pub fn power_spectrum(signal: &[f64]) -> (Vec<f64>, usize) {
    if signal.is_empty() {
        return (Vec::new(), 0);
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let centered: Vec<f64> = signal.iter().map(|v| v - mean).collect();
    let spectrum = fft_padded(&centered, centered.len());
    let n = spectrum.len();
    let power: Vec<f64> = spectrum[..n / 2].iter().map(|c| c.norm_sq()).collect();
    (power, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force DFT oracle.
    fn dft(signal: &[Complex]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (t, &x) in signal.iter().enumerate() {
                    let angle = -std::f64::consts::TAU * (k * t) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::new(angle.cos(), angle.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_dft_oracle() {
        let signal: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let expected = dft(&signal);
        let mut actual = signal;
        fft(&mut actual);
        for (a, e) in actual.iter().zip(&expected) {
            assert!((a.re - e.re).abs() < 1e-9 && (a.im - e.im).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_fft_ifft() {
        let original: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_peaks_at_frequency() {
        let n = 256;
        let freq = 8;
        let signal: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * freq as f64 * t as f64 / n as f64).sin())
            .collect();
        let (power, padded) = power_spectrum(&signal);
        assert_eq!(padded, n);
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, freq);
    }

    #[test]
    fn dc_component_removed() {
        let signal = vec![5.0; 128];
        let (power, _) = power_spectrum(&signal);
        assert!(power.iter().all(|&p| p < 1e-18));
    }

    #[test]
    fn padding_to_power_of_two() {
        let spectrum = fft_padded(&[1.0, 2.0, 3.0], 5);
        assert_eq!(spectrum.len(), 8);
        let (power, padded) = power_spectrum(&[]);
        assert!(power.is_empty());
        assert_eq!(padded, 0);
    }

    #[test]
    fn tiny_sizes() {
        let mut one = vec![Complex::new(3.0, 0.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex::new(3.0, 0.0));
        let mut two = vec![Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        fft(&mut two);
        assert!((two[0].re - 3.0).abs() < 1e-12);
        assert!((two[1].re + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::default(); 3];
        fft(&mut data);
    }

    #[test]
    fn complex_helpers() {
        let c = Complex::new(3.0, 4.0);
        assert!((c.abs() - 5.0).abs() < 1e-12);
        assert!((c.norm_sq() - 25.0).abs() < 1e-12);
    }
}
