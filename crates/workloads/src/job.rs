//! The job model of Table 1.

use decarb_traces::{Hour, RegionId, Resolution};

/// The job-length grid of Table 1, in hours.
///
/// `0.01` h (36 s) models interactive requests; 1–24 h are small batch
/// jobs; 24–168 h are long batch jobs. Values are taken from Google's Borg
/// v3 trace as in the paper.
pub const JOB_LENGTHS_HOURS: [f64; 8] = [0.01, 1.0, 6.0, 12.0, 24.0, 48.0, 96.0, 168.0];

/// Workload class (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Delay-tolerant batch work (training, analytics, simulation).
    Batch,
    /// Latency-sensitive interactive requests (web, inference).
    Interactive,
}

/// Temporal slack: how long a job may be delayed past its arrival
/// (Table 1's deferrability dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slack {
    /// No deferral permitted.
    None,
    /// 24-hour slack, the paper's "practical" setting.
    Day,
    /// 7-day slack.
    Week,
    /// 24-day slack.
    Days24,
    /// 30-day slack.
    Month,
    /// One-year slack, the paper's "ideal" setting.
    Year,
    /// Slack proportional to job length (10× the length).
    TenX,
}

impl Slack {
    /// All slack settings of Table 1 that have a fixed duration.
    pub const FIXED: [Slack; 5] = [
        Slack::Day,
        Slack::Week,
        Slack::Days24,
        Slack::Month,
        Slack::Year,
    ];

    /// Returns the slack in hours for a job of `job_hours` length.
    pub fn hours(self, job_hours: f64) -> usize {
        match self {
            Slack::None => 0,
            Slack::Day => 24,
            Slack::Week => 7 * 24,
            Slack::Days24 => 24 * 24,
            Slack::Month => 30 * 24,
            Slack::Year => 365 * 24,
            Slack::TenX => (job_hours * 10.0).round() as usize,
        }
    }

    /// Returns a short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            Slack::None => "none",
            Slack::Day => "24H",
            Slack::Week => "7D",
            Slack::Days24 => "24D",
            Slack::Month => "30D",
            Slack::Year => "1Y",
            Slack::TenX => "10x",
        }
    }

    /// Parses a slack class from scenario-file text. Accepts the table
    /// labels plus friendlier aliases (case-insensitive): `none`,
    /// `day`/`24h`, `week`/`7d`, `24d`, `month`/`30d`, `year`/`1y`,
    /// `10x`.
    pub fn parse(text: &str) -> Result<Slack, String> {
        match text.trim().to_lowercase().as_str() {
            "none" => Ok(Slack::None),
            "day" | "24h" => Ok(Slack::Day),
            "week" | "7d" => Ok(Slack::Week),
            "24d" => Ok(Slack::Days24),
            "month" | "30d" => Ok(Slack::Month),
            "year" | "1y" => Ok(Slack::Year),
            "10x" => Ok(Slack::TenX),
            other => Err(format!(
                "unknown slack `{other}` (valid: none, day, week, 24d, month, year, 10x)"
            )),
        }
    }
}

/// A schedulable unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Unique identifier.
    pub id: u64,
    /// Workload class.
    pub class: JobClass,
    /// Required execution time in hours (uninterrupted total).
    pub length_hours: f64,
    /// Arrival (submission) hour.
    pub arrival: Hour,
    /// Temporal slack.
    pub slack: Slack,
    /// Whether the job may be suspended and resumed.
    pub interruptible: bool,
    /// Whether the job may migrate to another region.
    pub migratable: bool,
    /// Interned id of the submitting region (resolved against the
    /// active dataset's `RegionTable` at materialization time).
    pub origin: RegionId,
}

impl Job {
    /// Creates a batch job with the given shape.
    pub fn batch(id: u64, origin: RegionId, arrival: Hour, length_hours: f64, slack: Slack) -> Job {
        Job {
            id,
            class: JobClass::Batch,
            length_hours,
            arrival,
            slack,
            interruptible: false,
            migratable: true,
            origin,
        }
    }

    /// Creates an interactive job (no temporal flexibility).
    pub fn interactive(id: u64, origin: RegionId, arrival: Hour) -> Job {
        Job {
            id,
            class: JobClass::Interactive,
            length_hours: 0.01,
            arrival,
            slack: Slack::None,
            interruptible: false,
            migratable: false,
            origin,
        }
    }

    /// Marks the job interruptible and returns it (builder style).
    pub fn with_interruptible(mut self) -> Job {
        self.interruptible = true;
        self
    }

    /// Returns the job length in whole hours, with sub-hour jobs rounded
    /// up to one trace sample (the paper's 1-hour granularity floor).
    pub fn length_slots(&self) -> usize {
        (self.length_hours.ceil() as usize).max(1)
    }

    /// Returns the job length in trace slots at `resolution`, rounded up
    /// to a whole slot. At hourly resolution this equals
    /// [`Job::length_slots`].
    pub fn length_slots_at(&self, resolution: Resolution) -> usize {
        if resolution.is_hourly() {
            return self.length_slots();
        }
        resolution.duration_to_slots(self.length_hours)
    }

    /// Returns the slack window in hours for this job.
    pub fn slack_hours(&self) -> usize {
        self.slack.hours(self.length_hours)
    }

    /// Returns the slack window in trace slots at `resolution`.
    pub fn slack_slots_at(&self, resolution: Resolution) -> usize {
        resolution.hours_to_slots(self.slack_hours())
    }

    /// Returns the total scheduling window (slack + execution) in hours.
    pub fn window_hours(&self) -> usize {
        self.slack_hours() + self.length_slots()
    }

    /// Returns the total scheduling window (slack + execution) in trace
    /// slots at `resolution`.
    pub fn window_slots_at(&self, resolution: Resolution) -> usize {
        self.slack_slots_at(resolution) + self.length_slots_at(resolution)
    }

    /// Returns the energy drawn in kWh under the 1 kW resource model.
    pub fn energy_kwh(&self) -> f64 {
        self.length_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_hours_grid() {
        assert_eq!(Slack::None.hours(5.0), 0);
        assert_eq!(Slack::Day.hours(5.0), 24);
        assert_eq!(Slack::Week.hours(5.0), 168);
        assert_eq!(Slack::Days24.hours(5.0), 576);
        assert_eq!(Slack::Month.hours(5.0), 720);
        assert_eq!(Slack::Year.hours(5.0), 8760);
        assert_eq!(Slack::TenX.hours(5.0), 50);
        assert_eq!(Slack::TenX.hours(0.01), 0);
    }

    #[test]
    fn labels_cover_table1() {
        let labels: Vec<&str> = Slack::FIXED.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["24H", "7D", "24D", "30D", "1Y"]);
    }

    #[test]
    fn batch_job_defaults() {
        let job = Job::batch(1, RegionId(0), Hour(10), 12.0, Slack::Day);
        assert_eq!(job.class, JobClass::Batch);
        assert!(job.migratable);
        assert!(!job.interruptible);
        assert_eq!(job.length_slots(), 12);
        assert_eq!(job.slack_hours(), 24);
        assert_eq!(job.window_hours(), 36);
        assert!((job.energy_kwh() - 12.0).abs() < 1e-12);
        let job = job.with_interruptible();
        assert!(job.interruptible);
    }

    #[test]
    fn interactive_job_has_no_flexibility() {
        let job = Job::interactive(2, RegionId(1), Hour(0));
        assert_eq!(job.class, JobClass::Interactive);
        assert!(!job.migratable);
        assert_eq!(job.slack_hours(), 0);
        // Sub-hour jobs still occupy one hourly trace slot.
        assert_eq!(job.length_slots(), 1);
    }

    #[test]
    fn job_length_grid_matches_table1() {
        assert_eq!(JOB_LENGTHS_HOURS.len(), 8);
        assert_eq!(JOB_LENGTHS_HOURS[0], 0.01);
        assert_eq!(JOB_LENGTHS_HOURS[7], 168.0);
        for pair in JOB_LENGTHS_HOURS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn fractional_lengths_round_up_to_slots() {
        let job = Job::batch(3, RegionId(2), Hour(0), 1.5, Slack::None);
        assert_eq!(job.length_slots(), 2);
    }

    #[test]
    fn slot_conversions_scale_with_resolution() {
        let five = Resolution::from_minutes(5).unwrap();
        let job = Job::batch(4, RegionId(0), Hour(0), 12.0, Slack::Day);
        assert_eq!(job.length_slots_at(Resolution::HOURLY), job.length_slots());
        assert_eq!(job.length_slots_at(five), 12 * 12);
        assert_eq!(job.slack_slots_at(five), 24 * 12);
        assert_eq!(job.window_slots_at(five), 36 * 12);
        // Fractional lengths quantize to the finer axis (1.5 h = 18
        // five-minute slots, not 2 hours' worth), and sub-slot jobs
        // still occupy one slot.
        let frac = Job::batch(5, RegionId(0), Hour(0), 1.5, Slack::None);
        assert_eq!(frac.length_slots_at(five), 18);
        let tiny = Job::interactive(6, RegionId(0), Hour(0));
        assert_eq!(tiny.length_slots_at(five), 1);
    }
}
