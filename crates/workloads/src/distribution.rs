//! Job-length distributions over the Table 1 length grid.
//!
//! The paper weights per-length carbon reductions by the share of
//! *resource usage* (equivalently energy) each job-length bucket
//! contributes in real cluster traces (§5.2.5). Cloud traces are heavily
//! bimodal: interactive requests dominate job *counts*, while a tiny
//! number of very long jobs dominate resource usage — in the Google trace,
//! ≈ 1 % of jobs running longer than a week account for ≈ 90 % of
//! utilization.

use crate::job::JOB_LENGTHS_HOURS;

/// A distribution of workload resource usage over the 8 job-length buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobLengthDistribution {
    /// Equal resource share per bucket (the paper's Fig. 10(a)).
    Equal,
    /// Azure Public Dataset-like shape (Fig. 10(b)): the heaviest tail —
    /// VM-style long-running allocations dominate usage.
    AzureLike,
    /// Google Borg v3-like shape (Fig. 10(c)): long jobs dominate usage,
    /// slightly less extremely than Azure.
    GoogleLike,
}

impl JobLengthDistribution {
    /// All distributions, in paper order.
    pub const ALL: [JobLengthDistribution; 3] = [
        JobLengthDistribution::Equal,
        JobLengthDistribution::AzureLike,
        JobLengthDistribution::GoogleLike,
    ];

    /// Returns the resource-usage weight of each job-length bucket
    /// (aligned with [`JOB_LENGTHS_HOURS`], summing to 1).
    pub fn resource_weights(self) -> [f64; 8] {
        match self {
            JobLengthDistribution::Equal => [0.125; 8],
            JobLengthDistribution::AzureLike => {
                [0.005, 0.010, 0.020, 0.030, 0.045, 0.070, 0.120, 0.700]
            }
            JobLengthDistribution::GoogleLike => {
                [0.005, 0.015, 0.030, 0.050, 0.080, 0.120, 0.200, 0.500]
            }
        }
    }

    /// Returns the job-*count* weight of each bucket, derived from the
    /// resource weights (count ∝ resource / length, normalized).
    ///
    /// Short jobs dominate counts even when long jobs dominate usage,
    /// matching the bimodality of real cluster traces.
    pub fn count_weights(self) -> [f64; 8] {
        let resource = self.resource_weights();
        let mut counts = [0.0; 8];
        let mut total = 0.0;
        for i in 0..8 {
            counts[i] = resource[i] / JOB_LENGTHS_HOURS[i];
            total += counts[i];
        }
        for c in &mut counts {
            *c /= total;
        }
        counts
    }

    /// Returns a short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            JobLengthDistribution::Equal => "Equal",
            JobLengthDistribution::AzureLike => "Azure",
            JobLengthDistribution::GoogleLike => "Google",
        }
    }

    /// Computes the weighted average of per-bucket values (e.g. per-length
    /// carbon reductions) under this distribution's resource weights.
    ///
    /// # Panics
    ///
    /// Panics unless `per_bucket` has exactly 8 entries.
    pub fn weighted_mean(self, per_bucket: &[f64]) -> f64 {
        assert_eq!(per_bucket.len(), 8, "expected one value per length bucket");
        self.resource_weights()
            .iter()
            .zip(per_bucket)
            .map(|(w, v)| w * v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for dist in JobLengthDistribution::ALL {
            let sum: f64 = dist.resource_weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{dist:?} resource {sum}");
            let sum: f64 = dist.count_weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{dist:?} count {sum}");
        }
    }

    #[test]
    fn cloud_traces_are_long_job_heavy() {
        // §5.2.5: Azure and Google have much higher shares of jobs > 48 h.
        for dist in [
            JobLengthDistribution::AzureLike,
            JobLengthDistribution::GoogleLike,
        ] {
            let w = dist.resource_weights();
            let long: f64 = w[5..].iter().sum();
            assert!(long > 0.7, "{dist:?} long-job share {long}");
        }
        let equal_long: f64 = JobLengthDistribution::Equal.resource_weights()[5..]
            .iter()
            .sum();
        assert!((equal_long - 0.375).abs() < 1e-9);
    }

    #[test]
    fn azure_tail_heavier_than_google() {
        // Matches the paper's ordering of Fig. 10(b) vs (c): Azure's
        // reductions (100 g) are below Google's (112 g) because its
        // longest bucket carries more weight.
        let azure = JobLengthDistribution::AzureLike.resource_weights();
        let google = JobLengthDistribution::GoogleLike.resource_weights();
        assert!(azure[7] > google[7]);
    }

    #[test]
    fn counts_dominated_by_short_jobs() {
        for dist in [
            JobLengthDistribution::AzureLike,
            JobLengthDistribution::GoogleLike,
        ] {
            let c = dist.count_weights();
            assert!(
                c[0] > 0.5,
                "{dist:?}: interactive requests should dominate counts"
            );
            // The week-long bucket is ≈ 1 % of jobs but ≥ 50 % of usage.
            assert!(c[7] < 0.02, "{dist:?} long-job count share {}", c[7]);
        }
    }

    #[test]
    fn weighted_mean_equal_is_plain_mean() {
        let values = [8.0, 16.0, 24.0, 32.0, 40.0, 48.0, 56.0, 64.0];
        let mean = JobLengthDistribution::Equal.weighted_mean(&values);
        assert!((mean - 36.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_mean_prefers_tail_for_cloud_traces() {
        // Decreasing per-length values (as in Fig. 7) yield lower weighted
        // means under the long-job-heavy cloud distributions.
        let decreasing = [154.0, 150.0, 140.0, 120.0, 110.0, 95.0, 80.0, 70.0];
        let equal = JobLengthDistribution::Equal.weighted_mean(&decreasing);
        let azure = JobLengthDistribution::AzureLike.weighted_mean(&decreasing);
        let google = JobLengthDistribution::GoogleLike.weighted_mean(&decreasing);
        assert!(azure < equal);
        assert!(google < equal);
        assert!(azure < google);
    }

    #[test]
    #[should_panic(expected = "one value per length bucket")]
    fn weighted_mean_wrong_len_panics() {
        JobLengthDistribution::Equal.weighted_mean(&[1.0, 2.0]);
    }
}
