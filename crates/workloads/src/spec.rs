//! Declarative workload specifications for scenario sweeps.
//!
//! A [`WorkloadSpec`] is a recipe, not a job list: it describes a
//! population shape (class mix, length, slack, cadence) and is
//! materialized against a concrete set of origin regions when a
//! scenario runs. The same spec therefore reuses cleanly across region
//! sets of different sizes, which is what the scenario matrix needs.

use decarb_traces::rng::Xoshiro256;
use decarb_traces::Hour;

use crate::job::{Job, Slack};

/// A declarative recipe for a population of jobs.
///
/// Every variant submits `per_origin` jobs from each origin region on a
/// fixed `spacing_hours` cadence; origins are staggered by one hour each
/// so arrivals do not all land on the same instant.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Identical delay-tolerant batch jobs.
    Batch {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
        /// Job length in hours.
        length_hours: f64,
        /// Temporal slack class.
        slack: Slack,
        /// Whether jobs may be suspended and resumed.
        interruptible: bool,
    },
    /// Latency-sensitive interactive requests (no flexibility at all).
    Interactive {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
    },
    /// A seeded random mix of migratable batch work and pinned
    /// interactive requests (§6.1's what-if, as a population).
    Mixed {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
        /// Probability that a submission is batch work, in `[0, 1]`.
        migratable_fraction: f64,
        /// Job length of the batch portion, hours.
        batch_length_hours: f64,
        /// Slack of the batch portion.
        batch_slack: Slack,
        /// RNG seed, so materialization is deterministic.
        seed: u64,
    },
}

/// Key-value view used by [`WorkloadSpec::from_pairs`]: lookup with
/// per-key parse errors and leftover-key detection.
struct Pairs<'a> {
    pairs: &'a [(String, String)],
    used: Vec<bool>,
}

impl<'a> Pairs<'a> {
    fn new(pairs: &'a [(String, String)]) -> Self {
        Self {
            pairs,
            used: vec![false; pairs.len()],
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a str> {
        let i = self.pairs.iter().position(|(k, _)| k == key)?;
        self.used[i] = true;
        Some(self.pairs[i].1.as_str())
    }

    fn parsed<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for workload key `{key}`")),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.used.iter().position(|&u| !u) {
            Some(i) => Err(format!("unknown workload key `{}`", self.pairs[i].0)),
            None => Ok(()),
        }
    }
}

impl WorkloadSpec {
    /// Builds a spec from scenario-file `key = value` pairs.
    ///
    /// The `class` key selects the variant (`batch` / `interactive` /
    /// `mixed`); the remaining keys fill its fields, with the built-in
    /// matrix's values as defaults. Unknown keys, unparseable values,
    /// and out-of-range fractions are errors.
    pub fn from_pairs(pairs: &[(String, String)]) -> Result<WorkloadSpec, String> {
        let mut p = Pairs::new(pairs);
        let class = p.get("class").ok_or("workload section needs `class`")?;
        let per_origin: usize = p.parsed("per_origin", 12)?;
        if per_origin == 0 {
            return Err("`per_origin` must be at least 1".into());
        }
        let spacing_hours: usize = p.parsed("spacing", 24)?;
        if spacing_hours == 0 {
            return Err("`spacing` must be at least 1".into());
        }
        let spec = match class {
            "batch" => {
                let length_hours: f64 = p.parsed("length", 8.0)?;
                if !length_hours.is_finite() || length_hours <= 0.0 {
                    return Err("`length` must be positive".into());
                }
                let slack = match p.get("slack") {
                    Some(raw) => Slack::parse(raw)?,
                    None => Slack::Day,
                };
                WorkloadSpec::Batch {
                    per_origin,
                    spacing_hours,
                    length_hours,
                    slack,
                    interruptible: p.parsed("interruptible", true)?,
                }
            }
            "interactive" => WorkloadSpec::Interactive {
                per_origin,
                spacing_hours,
            },
            "mixed" => {
                let migratable_fraction: f64 = p.parsed("migratable_fraction", 0.5)?;
                if !(0.0..=1.0).contains(&migratable_fraction) {
                    return Err("`migratable_fraction` must lie in [0, 1]".into());
                }
                let batch_length_hours: f64 = p.parsed("length", 4.0)?;
                if !batch_length_hours.is_finite() || batch_length_hours <= 0.0 {
                    return Err("`length` must be positive".into());
                }
                let batch_slack = match p.get("slack") {
                    Some(raw) => Slack::parse(raw)?,
                    None => Slack::Day,
                };
                WorkloadSpec::Mixed {
                    per_origin,
                    spacing_hours,
                    migratable_fraction,
                    batch_length_hours,
                    batch_slack,
                    seed: p.parsed("seed", 0x5EED)?,
                }
            }
            other => {
                return Err(format!(
                    "unknown workload class `{other}` (valid: batch, interactive, mixed)"
                ))
            }
        };
        p.finish()?;
        Ok(spec)
    }

    /// Returns the spec's class label (`batch` / `interactive` / `mixed`).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Batch { .. } => "batch",
            WorkloadSpec::Interactive { .. } => "interactive",
            WorkloadSpec::Mixed { .. } => "mixed",
        }
    }

    /// Returns the number of jobs materialized for `origins` origin
    /// regions.
    pub fn job_count(&self, origins: usize) -> usize {
        let per_origin = match self {
            WorkloadSpec::Batch { per_origin, .. }
            | WorkloadSpec::Interactive { per_origin, .. }
            | WorkloadSpec::Mixed { per_origin, .. } => *per_origin,
        };
        per_origin * origins
    }

    /// Returns the largest arrival offset (hours past `start`) any
    /// materialized job can have, for sizing scenario horizons.
    pub fn last_arrival_offset(&self, origins: usize) -> usize {
        let (per_origin, spacing) = match self {
            WorkloadSpec::Batch {
                per_origin,
                spacing_hours,
                ..
            }
            | WorkloadSpec::Interactive {
                per_origin,
                spacing_hours,
            }
            | WorkloadSpec::Mixed {
                per_origin,
                spacing_hours,
                ..
            } => (*per_origin, *spacing_hours),
        };
        per_origin.saturating_sub(1) * spacing + origins.saturating_sub(1)
    }

    /// Materializes the spec into concrete jobs submitted from every
    /// origin, starting at `start`. Job ids are unique across the whole
    /// population and the result is deterministic.
    pub fn materialize(&self, origins: &[&'static str], start: Hour) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.job_count(origins.len()));
        let mut id = 0u64;
        let mut rng = match self {
            WorkloadSpec::Mixed { seed, .. } => Xoshiro256::seeded(*seed),
            _ => Xoshiro256::seeded(0),
        };
        for (o, origin) in origins.iter().enumerate() {
            let (per_origin, spacing) = match self {
                WorkloadSpec::Batch {
                    per_origin,
                    spacing_hours,
                    ..
                }
                | WorkloadSpec::Interactive {
                    per_origin,
                    spacing_hours,
                }
                | WorkloadSpec::Mixed {
                    per_origin,
                    spacing_hours,
                    ..
                } => (*per_origin, *spacing_hours),
            };
            for k in 0..per_origin {
                id += 1;
                let arrival = start.plus(o + k * spacing);
                jobs.push(match self {
                    WorkloadSpec::Batch {
                        length_hours,
                        slack,
                        interruptible,
                        ..
                    } => {
                        let job = Job::batch(id, origin, arrival, *length_hours, *slack);
                        if *interruptible {
                            job.with_interruptible()
                        } else {
                            job
                        }
                    }
                    WorkloadSpec::Interactive { .. } => Job::interactive(id, origin, arrival),
                    WorkloadSpec::Mixed {
                        migratable_fraction,
                        batch_length_hours,
                        batch_slack,
                        ..
                    } => {
                        if rng.uniform() < *migratable_fraction {
                            Job::batch(id, origin, arrival, *batch_length_hours, *batch_slack)
                        } else {
                            Job::interactive(id, origin, arrival)
                        }
                    }
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    const ORIGINS: [&str; 3] = ["SE", "DE", "US-CA"];

    fn batch_spec() -> WorkloadSpec {
        WorkloadSpec::Batch {
            per_origin: 4,
            spacing_hours: 24,
            length_hours: 8.0,
            slack: Slack::Day,
            interruptible: true,
        }
    }

    #[test]
    fn batch_spec_materializes_per_origin_cadence() {
        let spec = batch_spec();
        assert_eq!(spec.label(), "batch");
        assert_eq!(spec.job_count(3), 12);
        assert_eq!(spec.last_arrival_offset(3), 3 * 24 + 2);
        let jobs = spec.materialize(&ORIGINS, Hour(100));
        assert_eq!(jobs.len(), 12);
        assert!(jobs.iter().all(|j| j.interruptible && j.migratable));
        assert!(jobs.iter().all(|j| j.length_hours == 8.0));
        // Ids are unique across origins.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
        // Origins are staggered by one hour; cadence is 24 h.
        let se: Vec<u32> = jobs
            .iter()
            .filter(|j| j.origin == "SE")
            .map(|j| j.arrival.0)
            .collect();
        assert_eq!(se, vec![100, 124, 148, 172]);
        let de: Vec<u32> = jobs
            .iter()
            .filter(|j| j.origin == "DE")
            .map(|j| j.arrival.0)
            .collect();
        assert_eq!(de, vec![101, 125, 149, 173]);
    }

    #[test]
    fn interactive_spec_is_inflexible() {
        let spec = WorkloadSpec::Interactive {
            per_origin: 5,
            spacing_hours: 6,
        };
        assert_eq!(spec.label(), "interactive");
        let jobs = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(jobs.len(), 15);
        assert!(jobs
            .iter()
            .all(|j| j.class == JobClass::Interactive && !j.migratable));
        assert!(jobs.iter().all(|j| j.slack_hours() == 0));
    }

    #[test]
    fn mixed_spec_is_deterministic_and_mixes_classes() {
        let spec = WorkloadSpec::Mixed {
            per_origin: 40,
            spacing_hours: 2,
            migratable_fraction: 0.5,
            batch_length_hours: 4.0,
            batch_slack: Slack::Day,
            seed: 7,
        };
        assert_eq!(spec.label(), "mixed");
        let a = spec.materialize(&ORIGINS, Hour(0));
        let b = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(a, b, "same seed must give the same population");
        let batch = a.iter().filter(|j| j.class == JobClass::Batch).count();
        assert!(batch > 0 && batch < a.len(), "both classes present");
        for job in &a {
            match job.class {
                JobClass::Batch => assert!(job.migratable),
                JobClass::Interactive => assert!(!job.migratable),
            }
        }
    }

    fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn from_pairs_builds_each_class() {
        let batch = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "3"),
            ("spacing", "12"),
            ("length", "6.5"),
            ("slack", "week"),
            ("interruptible", "false"),
        ]))
        .unwrap();
        match batch {
            WorkloadSpec::Batch {
                per_origin,
                spacing_hours,
                length_hours,
                slack,
                interruptible,
            } => {
                assert_eq!(per_origin, 3);
                assert_eq!(spacing_hours, 12);
                assert_eq!(length_hours, 6.5);
                assert_eq!(slack, Slack::Week);
                assert!(!interruptible);
            }
            other => panic!("wrong class: {other:?}"),
        }
        let interactive =
            WorkloadSpec::from_pairs(&pairs(&[("class", "interactive"), ("per_origin", "7")]))
                .unwrap();
        assert_eq!(interactive.label(), "interactive");
        assert_eq!(interactive.job_count(2), 14);
        let mixed = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "mixed"),
            ("migratable_fraction", "0.25"),
            ("seed", "99"),
        ]))
        .unwrap();
        assert_eq!(mixed.label(), "mixed");
    }

    #[test]
    fn from_pairs_defaults_match_the_builtin_batch_recipe() {
        let spec = WorkloadSpec::from_pairs(&pairs(&[("class", "batch")])).unwrap();
        match spec {
            WorkloadSpec::Batch {
                per_origin,
                spacing_hours,
                length_hours,
                slack,
                interruptible,
            } => {
                assert_eq!(
                    (
                        per_origin,
                        spacing_hours,
                        length_hours,
                        slack,
                        interruptible
                    ),
                    (12, 24, 8.0, Slack::Day, true)
                );
            }
            other => panic!("wrong class: {other:?}"),
        }
    }

    #[test]
    fn from_pairs_rejects_bad_inputs() {
        for (kv, needle) in [
            (vec![("per_origin", "3")], "needs `class`"),
            (vec![("class", "streaming")], "unknown workload class"),
            (vec![("class", "batch"), ("slack", "soon")], "unknown slack"),
            (vec![("class", "batch"), ("length", "-1")], "positive"),
            (vec![("class", "batch"), ("per_origin", "0")], "at least 1"),
            (vec![("class", "batch"), ("spacing", "0")], "at least 1"),
            (
                vec![("class", "batch"), ("per_origin", "many")],
                "invalid value",
            ),
            (
                vec![("class", "mixed"), ("migratable_fraction", "1.5")],
                "[0, 1]",
            ),
            (
                vec![("class", "interactive"), ("length", "4")],
                "unknown workload key",
            ),
            (vec![("class", "batch"), ("bogus", "1")], "unknown workload"),
        ] {
            let err = WorkloadSpec::from_pairs(&pairs(&kv)).unwrap_err();
            assert!(err.contains(needle), "{kv:?}: got `{err}`");
        }
    }

    #[test]
    fn slack_parse_accepts_aliases() {
        for (text, slack) in [
            ("none", Slack::None),
            ("DAY", Slack::Day),
            ("24h", Slack::Day),
            ("week", Slack::Week),
            ("7d", Slack::Week),
            ("24d", Slack::Days24),
            ("month", Slack::Month),
            ("30d", Slack::Month),
            ("year", Slack::Year),
            ("1y", Slack::Year),
            (" 10x ", Slack::TenX),
        ] {
            assert_eq!(Slack::parse(text).unwrap(), slack, "{text}");
        }
        assert!(Slack::parse("fortnight").is_err());
    }

    #[test]
    fn empty_origins_yield_no_jobs() {
        assert!(batch_spec().materialize(&[], Hour(0)).is_empty());
        assert_eq!(batch_spec().job_count(0), 0);
        assert_eq!(batch_spec().last_arrival_offset(0), 3 * 24);
    }
}
