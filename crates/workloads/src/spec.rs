//! Declarative workload specifications for scenario sweeps.
//!
//! A [`WorkloadSpec`] is a recipe, not a job list: it describes a
//! population shape (class mix, length, slack, cadence) and is
//! materialized against a concrete set of origin regions when a
//! scenario runs. The same spec therefore reuses cleanly across region
//! sets of different sizes, which is what the scenario matrix needs.

use decarb_traces::rng::Xoshiro256;
use decarb_traces::Hour;

use crate::job::{Job, Slack};

/// A declarative recipe for a population of jobs.
///
/// Every variant submits `per_origin` jobs from each origin region on a
/// fixed `spacing_hours` cadence; origins are staggered by one hour each
/// so arrivals do not all land on the same instant.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Identical delay-tolerant batch jobs.
    Batch {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
        /// Job length in hours.
        length_hours: f64,
        /// Temporal slack class.
        slack: Slack,
        /// Whether jobs may be suspended and resumed.
        interruptible: bool,
    },
    /// Latency-sensitive interactive requests (no flexibility at all).
    Interactive {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
    },
    /// A seeded random mix of migratable batch work and pinned
    /// interactive requests (§6.1's what-if, as a population).
    Mixed {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
        /// Probability that a submission is batch work, in `[0, 1]`.
        migratable_fraction: f64,
        /// Job length of the batch portion, hours.
        batch_length_hours: f64,
        /// Slack of the batch portion.
        batch_slack: Slack,
        /// RNG seed, so materialization is deterministic.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Returns the spec's class label (`batch` / `interactive` / `mixed`).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Batch { .. } => "batch",
            WorkloadSpec::Interactive { .. } => "interactive",
            WorkloadSpec::Mixed { .. } => "mixed",
        }
    }

    /// Returns the number of jobs materialized for `origins` origin
    /// regions.
    pub fn job_count(&self, origins: usize) -> usize {
        let per_origin = match self {
            WorkloadSpec::Batch { per_origin, .. }
            | WorkloadSpec::Interactive { per_origin, .. }
            | WorkloadSpec::Mixed { per_origin, .. } => *per_origin,
        };
        per_origin * origins
    }

    /// Returns the largest arrival offset (hours past `start`) any
    /// materialized job can have, for sizing scenario horizons.
    pub fn last_arrival_offset(&self, origins: usize) -> usize {
        let (per_origin, spacing) = match self {
            WorkloadSpec::Batch {
                per_origin,
                spacing_hours,
                ..
            }
            | WorkloadSpec::Interactive {
                per_origin,
                spacing_hours,
            }
            | WorkloadSpec::Mixed {
                per_origin,
                spacing_hours,
                ..
            } => (*per_origin, *spacing_hours),
        };
        per_origin.saturating_sub(1) * spacing + origins.saturating_sub(1)
    }

    /// Materializes the spec into concrete jobs submitted from every
    /// origin, starting at `start`. Job ids are unique across the whole
    /// population and the result is deterministic.
    pub fn materialize(&self, origins: &[&'static str], start: Hour) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.job_count(origins.len()));
        let mut id = 0u64;
        let mut rng = match self {
            WorkloadSpec::Mixed { seed, .. } => Xoshiro256::seeded(*seed),
            _ => Xoshiro256::seeded(0),
        };
        for (o, origin) in origins.iter().enumerate() {
            let (per_origin, spacing) = match self {
                WorkloadSpec::Batch {
                    per_origin,
                    spacing_hours,
                    ..
                }
                | WorkloadSpec::Interactive {
                    per_origin,
                    spacing_hours,
                }
                | WorkloadSpec::Mixed {
                    per_origin,
                    spacing_hours,
                    ..
                } => (*per_origin, *spacing_hours),
            };
            for k in 0..per_origin {
                id += 1;
                let arrival = start.plus(o + k * spacing);
                jobs.push(match self {
                    WorkloadSpec::Batch {
                        length_hours,
                        slack,
                        interruptible,
                        ..
                    } => {
                        let job = Job::batch(id, origin, arrival, *length_hours, *slack);
                        if *interruptible {
                            job.with_interruptible()
                        } else {
                            job
                        }
                    }
                    WorkloadSpec::Interactive { .. } => Job::interactive(id, origin, arrival),
                    WorkloadSpec::Mixed {
                        migratable_fraction,
                        batch_length_hours,
                        batch_slack,
                        ..
                    } => {
                        if rng.uniform() < *migratable_fraction {
                            Job::batch(id, origin, arrival, *batch_length_hours, *batch_slack)
                        } else {
                            Job::interactive(id, origin, arrival)
                        }
                    }
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    const ORIGINS: [&str; 3] = ["SE", "DE", "US-CA"];

    fn batch_spec() -> WorkloadSpec {
        WorkloadSpec::Batch {
            per_origin: 4,
            spacing_hours: 24,
            length_hours: 8.0,
            slack: Slack::Day,
            interruptible: true,
        }
    }

    #[test]
    fn batch_spec_materializes_per_origin_cadence() {
        let spec = batch_spec();
        assert_eq!(spec.label(), "batch");
        assert_eq!(spec.job_count(3), 12);
        assert_eq!(spec.last_arrival_offset(3), 3 * 24 + 2);
        let jobs = spec.materialize(&ORIGINS, Hour(100));
        assert_eq!(jobs.len(), 12);
        assert!(jobs.iter().all(|j| j.interruptible && j.migratable));
        assert!(jobs.iter().all(|j| j.length_hours == 8.0));
        // Ids are unique across origins.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
        // Origins are staggered by one hour; cadence is 24 h.
        let se: Vec<u32> = jobs
            .iter()
            .filter(|j| j.origin == "SE")
            .map(|j| j.arrival.0)
            .collect();
        assert_eq!(se, vec![100, 124, 148, 172]);
        let de: Vec<u32> = jobs
            .iter()
            .filter(|j| j.origin == "DE")
            .map(|j| j.arrival.0)
            .collect();
        assert_eq!(de, vec![101, 125, 149, 173]);
    }

    #[test]
    fn interactive_spec_is_inflexible() {
        let spec = WorkloadSpec::Interactive {
            per_origin: 5,
            spacing_hours: 6,
        };
        assert_eq!(spec.label(), "interactive");
        let jobs = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(jobs.len(), 15);
        assert!(jobs
            .iter()
            .all(|j| j.class == JobClass::Interactive && !j.migratable));
        assert!(jobs.iter().all(|j| j.slack_hours() == 0));
    }

    #[test]
    fn mixed_spec_is_deterministic_and_mixes_classes() {
        let spec = WorkloadSpec::Mixed {
            per_origin: 40,
            spacing_hours: 2,
            migratable_fraction: 0.5,
            batch_length_hours: 4.0,
            batch_slack: Slack::Day,
            seed: 7,
        };
        assert_eq!(spec.label(), "mixed");
        let a = spec.materialize(&ORIGINS, Hour(0));
        let b = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(a, b, "same seed must give the same population");
        let batch = a.iter().filter(|j| j.class == JobClass::Batch).count();
        assert!(batch > 0 && batch < a.len(), "both classes present");
        for job in &a {
            match job.class {
                JobClass::Batch => assert!(job.migratable),
                JobClass::Interactive => assert!(!job.migratable),
            }
        }
    }

    #[test]
    fn empty_origins_yield_no_jobs() {
        assert!(batch_spec().materialize(&[], Hour(0)).is_empty());
        assert_eq!(batch_spec().job_count(0), 0);
        assert_eq!(batch_spec().last_arrival_offset(0), 3 * 24);
    }
}
