//! Declarative workload specifications for scenario sweeps.
//!
//! A [`WorkloadSpec`] is a recipe, not a job list: it describes a
//! population shape (class mix, length, slack, cadence) and is
//! materialized against a concrete set of origin regions when a
//! scenario runs. The same spec therefore reuses cleanly across region
//! sets of different sizes, which is what the scenario matrix needs.

use decarb_traces::rng::Xoshiro256;
use decarb_traces::{Hour, RegionId, Resolution};

use crate::job::{Job, Slack};

/// Default RNG seed for Poisson arrival processes (overridable via the
/// scenario-file `arrival_seed` key).
pub const DEFAULT_ARRIVAL_SEED: u64 = 0xA221;

/// When one origin submits its jobs: a fixed cadence or a seeded
/// Poisson process.
///
/// Both materialize deterministically — the Poisson variant draws its
/// exponential interarrival gaps from a seeded RNG (re-seeded per
/// origin), so the same spec always yields the same job population.
/// Origins are staggered by one hour each so arrivals do not all land
/// on the same instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// One submission every `spacing_hours` hours.
    Fixed {
        /// Hours between consecutive submissions from one origin.
        spacing_hours: usize,
    },
    /// Exponential interarrival gaps with mean `1 / rate_per_hour`.
    Poisson {
        /// Mean submissions per hour from one origin.
        rate_per_hour: f64,
        /// RNG seed the per-origin streams derive from.
        seed: u64,
    },
    /// Bursts of `burst_size` simultaneous submissions whose epochs
    /// follow exponential gaps with mean `burst_size / rate_per_hour`,
    /// so the long-run job rate matches `rate_per_hour`.
    Bursty {
        /// Mean submissions per hour from one origin (long-run).
        rate_per_hour: f64,
        /// Jobs submitted together at each burst epoch.
        burst_size: usize,
        /// RNG seed the per-origin streams derive from.
        seed: u64,
    },
    /// A day/night-modulated Poisson process: the instantaneous rate is
    /// `rate_per_hour × (1 + amplitude · sin(2π(h−6)/24))`, peaking at
    /// local noon and bottoming out overnight.
    Diurnal {
        /// Mean submissions per hour from one origin (daily average).
        rate_per_hour: f64,
        /// Modulation depth in `[0, 1]` (0 = plain Poisson).
        amplitude: f64,
        /// RNG seed the per-origin streams derive from.
        seed: u64,
    },
}

impl Arrival {
    /// The fixed-cadence arrival process (the built-in matrix's choice).
    pub fn fixed(spacing_hours: usize) -> Arrival {
        Arrival::Fixed { spacing_hours }
    }

    /// Parses an arrival recipe: `fixed:<hours>`, `poisson:<rate>`,
    /// `bursty:<rate>,<burst-size>`, or `diurnal:<rate>,<amplitude>`
    /// (rates in jobs per hour; random recipes are seeded with
    /// [`DEFAULT_ARRIVAL_SEED`], overridable via `arrival_seed`).
    pub fn parse(raw: &str) -> Result<Arrival, String> {
        let (kind, value) = raw.split_once(':').unwrap_or((raw, ""));
        let positive_rate = |text: &str| {
            text.trim()
                .parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r > 0.0)
        };
        match kind.trim() {
            "fixed" => value
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&h| h >= 1)
                .map(|spacing_hours| Arrival::Fixed { spacing_hours })
                .ok_or_else(|| format!("invalid arrival `{raw}` (use fixed:<hours ≥ 1>)")),
            "poisson" => value
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r > 0.0)
                .map(|rate_per_hour| Arrival::Poisson {
                    rate_per_hour,
                    seed: DEFAULT_ARRIVAL_SEED,
                })
                .ok_or_else(|| format!("invalid arrival `{raw}` (use poisson:<jobs per hour>)")),
            "bursty" => {
                let invalid =
                    || format!("invalid arrival `{raw}` (use bursty:<rate>,<burst-size ≥ 1>)");
                let (rate, burst) = value.split_once(',').ok_or_else(invalid)?;
                let rate_per_hour = positive_rate(rate).ok_or_else(invalid)?;
                let burst_size = burst
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&b| b >= 1)
                    .ok_or_else(invalid)?;
                Ok(Arrival::Bursty {
                    rate_per_hour,
                    burst_size,
                    seed: DEFAULT_ARRIVAL_SEED,
                })
            }
            "diurnal" => {
                let invalid = || {
                    format!("invalid arrival `{raw}` (use diurnal:<rate>,<amplitude in [0, 1]>)")
                };
                let (rate, amp) = value.split_once(',').ok_or_else(invalid)?;
                let rate_per_hour = positive_rate(rate).ok_or_else(invalid)?;
                let amplitude = amp
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|a| (0.0..=1.0).contains(a))
                    .ok_or_else(invalid)?;
                Ok(Arrival::Diurnal {
                    rate_per_hour,
                    amplitude,
                    seed: DEFAULT_ARRIVAL_SEED,
                })
            }
            other => Err(format!(
                "unknown arrival recipe `{other}` (valid: fixed:<hours>, poisson:<rate>, \
                 bursty:<rate>,<burst-size>, diurnal:<rate>,<amplitude>)"
            )),
        }
    }

    /// Canonical text form, stable across runs — feeds scenario
    /// content-addressing.
    pub fn canonical(&self) -> String {
        match self {
            Arrival::Fixed { spacing_hours } => format!("fixed:{spacing_hours}"),
            Arrival::Poisson {
                rate_per_hour,
                seed,
            } => format!("poisson:{rate_per_hour}:{seed}"),
            Arrival::Bursty {
                rate_per_hour,
                burst_size,
                seed,
            } => format!("bursty:{rate_per_hour}:{burst_size}:{seed}"),
            Arrival::Diurnal {
                rate_per_hour,
                amplitude,
                seed,
            } => format!("diurnal:{rate_per_hour}:{amplitude}:{seed}"),
        }
    }

    /// The per-origin RNG for the seeded recipes: an independent stream
    /// per origin, decorrelated by mixing the origin index through a
    /// SplitMix64 constant while staying deterministic.
    fn origin_rng(seed: u64, origin_index: usize) -> Xoshiro256 {
        Xoshiro256::seeded(seed ^ (origin_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Arrival offsets (hours past the population start) for origin
    /// number `origin_index` submitting `count` jobs. Offsets are
    /// non-decreasing and deterministic.
    pub fn offsets(&self, count: usize, origin_index: usize) -> Vec<usize> {
        match self {
            Arrival::Fixed { spacing_hours } => (0..count)
                .map(|k| origin_index + k * spacing_hours)
                .collect(),
            Arrival::Poisson {
                rate_per_hour,
                seed,
            } => {
                let mut rng = Self::origin_rng(*seed, origin_index);
                let mut t = origin_index as f64;
                (0..count)
                    .map(|_| {
                        // Inverse-CDF exponential gap; uniform() < 1, so
                        // ln(1 - u) is finite.
                        t += -(1.0 - rng.uniform()).ln() / rate_per_hour;
                        t.round() as usize
                    })
                    .collect()
            }
            Arrival::Bursty {
                rate_per_hour,
                burst_size,
                seed,
            } => {
                let mut rng = Self::origin_rng(*seed, origin_index);
                let mut t = origin_index as f64;
                // Burst epochs keep the long-run job rate at
                // `rate_per_hour` by spacing bursts `burst_size / rate`
                // apart on average.
                let epoch_rate = rate_per_hour / *burst_size as f64;
                let mut offsets = Vec::with_capacity(count);
                while offsets.len() < count {
                    t += -(1.0 - rng.uniform()).ln() / epoch_rate;
                    let epoch = t.round() as usize;
                    for _ in 0..*burst_size {
                        if offsets.len() == count {
                            break;
                        }
                        offsets.push(epoch);
                    }
                }
                offsets
            }
            Arrival::Diurnal {
                rate_per_hour,
                amplitude,
                seed,
            } => {
                let mut rng = Self::origin_rng(*seed, origin_index);
                // Time-rescaled inhomogeneous Poisson: draw unit-rate
                // exponential targets in integrated-intensity space and
                // advance hour by hour until the running integral of
                // λ(h) = rate·(1 + amplitude·sin(2π(h−6)/24)) covers
                // them — λ is non-negative for amplitude ≤ 1.
                let lambda = |hour: usize| {
                    let phase = 2.0 * std::f64::consts::PI * ((hour % 24) as f64 - 6.0) / 24.0;
                    rate_per_hour * (1.0 + amplitude * phase.sin())
                };
                let mut hour = origin_index;
                let mut integral = 0.0f64;
                let mut target = 0.0f64;
                (0..count)
                    .map(|_| {
                        target += -(1.0 - rng.uniform()).ln();
                        while integral < target {
                            integral += lambda(hour).max(1e-12);
                            hour += 1;
                        }
                        hour - 1
                    })
                    .collect()
            }
        }
    }

    /// The largest arrival offset any of `origins` origins submitting
    /// `count` jobs each can have, for sizing scenario horizons.
    pub fn last_offset(&self, count: usize, origins: usize) -> usize {
        match self {
            Arrival::Fixed { spacing_hours } => {
                count.saturating_sub(1) * spacing_hours + origins.saturating_sub(1)
            }
            Arrival::Poisson { .. } | Arrival::Bursty { .. } | Arrival::Diurnal { .. } => (0
                ..origins.max(1))
                .map(|o| self.offsets(count, o).last().copied().unwrap_or(0))
                .max()
                .unwrap_or(0),
        }
    }
}

/// A declarative recipe for a population of jobs.
///
/// Every variant submits `per_origin` jobs from each origin region on
/// its [`Arrival`] process (fixed cadence or seeded Poisson).
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Identical delay-tolerant batch jobs.
    Batch {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Submission process for each origin.
        arrival: Arrival,
        /// Job length in hours.
        length_hours: f64,
        /// Temporal slack class.
        slack: Slack,
        /// Whether jobs may be suspended and resumed.
        interruptible: bool,
    },
    /// Latency-sensitive interactive requests (no flexibility at all).
    Interactive {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Submission process for each origin.
        arrival: Arrival,
    },
    /// A seeded random mix of migratable batch work and pinned
    /// interactive requests (§6.1's what-if, as a population).
    Mixed {
        /// Jobs submitted per origin region.
        per_origin: usize,
        /// Submission process for each origin.
        arrival: Arrival,
        /// Probability that a submission is batch work, in `[0, 1]`.
        migratable_fraction: f64,
        /// Job length of the batch portion, hours.
        batch_length_hours: f64,
        /// Slack of the batch portion.
        batch_slack: Slack,
        /// RNG seed, so materialization is deterministic.
        seed: u64,
    },
}

/// Key-value view used by [`WorkloadSpec::from_pairs`]: lookup with
/// per-key parse errors and leftover-key detection.
struct Pairs<'a> {
    pairs: &'a [(String, String)],
    used: Vec<bool>,
}

impl<'a> Pairs<'a> {
    fn new(pairs: &'a [(String, String)]) -> Self {
        Self {
            pairs,
            used: vec![false; pairs.len()],
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a str> {
        let i = self.pairs.iter().position(|(k, _)| k == key)?;
        self.used[i] = true;
        Some(self.pairs[i].1.as_str())
    }

    fn parsed<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for workload key `{key}`")),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.used.iter().position(|&u| !u) {
            Some(i) => Err(format!("unknown workload key `{}`", self.pairs[i].0)),
            None => Ok(()),
        }
    }
}

impl WorkloadSpec {
    /// Builds a spec from scenario-file `key = value` pairs.
    ///
    /// The `class` key selects the variant (`batch` / `interactive` /
    /// `mixed`); the remaining keys fill its fields, with the built-in
    /// matrix's values as defaults. Unknown keys, unparseable values,
    /// and out-of-range fractions are errors.
    pub fn from_pairs(pairs: &[(String, String)]) -> Result<WorkloadSpec, String> {
        let mut p = Pairs::new(pairs);
        let class = p.get("class").ok_or("workload section needs `class`")?;
        let per_origin: usize = p.parsed("per_origin", 12)?;
        if per_origin == 0 {
            return Err("`per_origin` must be at least 1".into());
        }
        let spacing = p.get("spacing").map(str::to_string);
        let recipe = p.get("arrival").map(str::to_string);
        let arrival_seed: Option<u64> =
            match p.get("arrival_seed") {
                None => None,
                Some(raw) => Some(raw.parse().map_err(|_| {
                    format!("invalid value `{raw}` for workload key `arrival_seed`")
                })?),
            };
        let mut arrival = match (spacing, recipe) {
            (Some(_), Some(_)) => {
                return Err("pass `spacing` or `arrival`, not both".into());
            }
            (Some(raw), None) => {
                let spacing_hours: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid value `{raw}` for workload key `spacing`"))?;
                if spacing_hours == 0 {
                    return Err("`spacing` must be at least 1".into());
                }
                Arrival::Fixed { spacing_hours }
            }
            (None, Some(raw)) => Arrival::parse(&raw)?,
            (None, None) => Arrival::fixed(24),
        };
        match (&mut arrival, arrival_seed) {
            (
                Arrival::Poisson { seed, .. }
                | Arrival::Bursty { seed, .. }
                | Arrival::Diurnal { seed, .. },
                Some(override_seed),
            ) => *seed = override_seed,
            (_, None) => {}
            (Arrival::Fixed { .. }, Some(_)) => {
                return Err(
                    "`arrival_seed` only applies to poisson, bursty, and diurnal arrivals".into(),
                );
            }
        }
        let spec = match class {
            "batch" => {
                let length_hours: f64 = p.parsed("length", 8.0)?;
                if !length_hours.is_finite() || length_hours <= 0.0 {
                    return Err("`length` must be positive".into());
                }
                let slack = match p.get("slack") {
                    Some(raw) => Slack::parse(raw)?,
                    None => Slack::Day,
                };
                WorkloadSpec::Batch {
                    per_origin,
                    arrival,
                    length_hours,
                    slack,
                    interruptible: p.parsed("interruptible", true)?,
                }
            }
            "interactive" => WorkloadSpec::Interactive {
                per_origin,
                arrival,
            },
            "mixed" => {
                let migratable_fraction: f64 = p.parsed("migratable_fraction", 0.5)?;
                if !(0.0..=1.0).contains(&migratable_fraction) {
                    return Err("`migratable_fraction` must lie in [0, 1]".into());
                }
                let batch_length_hours: f64 = p.parsed("length", 4.0)?;
                if !batch_length_hours.is_finite() || batch_length_hours <= 0.0 {
                    return Err("`length` must be positive".into());
                }
                let batch_slack = match p.get("slack") {
                    Some(raw) => Slack::parse(raw)?,
                    None => Slack::Day,
                };
                WorkloadSpec::Mixed {
                    per_origin,
                    arrival,
                    migratable_fraction,
                    batch_length_hours,
                    batch_slack,
                    seed: p.parsed("seed", 0x5EED)?,
                }
            }
            other => {
                return Err(format!(
                    "unknown workload class `{other}` (valid: batch, interactive, mixed)"
                ))
            }
        };
        p.finish()?;
        Ok(spec)
    }

    /// Returns the spec's class label (`batch` / `interactive` / `mixed`).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Batch { .. } => "batch",
            WorkloadSpec::Interactive { .. } => "interactive",
            WorkloadSpec::Mixed { .. } => "mixed",
        }
    }

    /// Returns the number of jobs materialized for `origins` origin
    /// regions.
    pub fn job_count(&self, origins: usize) -> usize {
        let per_origin = match self {
            WorkloadSpec::Batch { per_origin, .. }
            | WorkloadSpec::Interactive { per_origin, .. }
            | WorkloadSpec::Mixed { per_origin, .. } => *per_origin,
        };
        per_origin * origins
    }

    /// Returns the spec's arrival process.
    pub fn arrival(&self) -> &Arrival {
        match self {
            WorkloadSpec::Batch { arrival, .. }
            | WorkloadSpec::Interactive { arrival, .. }
            | WorkloadSpec::Mixed { arrival, .. } => arrival,
        }
    }

    /// Returns the largest arrival offset (hours past `start`) any
    /// materialized job can have, for sizing scenario horizons.
    pub fn last_arrival_offset(&self, origins: usize) -> usize {
        let per_origin = match self {
            WorkloadSpec::Batch { per_origin, .. }
            | WorkloadSpec::Interactive { per_origin, .. }
            | WorkloadSpec::Mixed { per_origin, .. } => *per_origin,
        };
        self.arrival().last_offset(per_origin, origins)
    }

    /// Returns the latest offset (hours past the scenario start) at
    /// which any materialized job may legitimately still be running:
    /// the last arrival plus the worst job's full scheduling window
    /// (slack + runtime, via [`Job::window_hours`]). A scenario horizon
    /// at or above this value gives every job — even one deferred to
    /// the end of its slack — room to finish; a smaller horizon makes
    /// some deadlines structurally unreachable inside the simulation.
    pub fn worst_case_completion_offset(&self, origins: usize) -> usize {
        let last = self.last_arrival_offset(origins);
        // Probe jobs share the scheduling math with `materialize` so
        // the bound cannot drift from what the engine actually sees.
        let window = match self {
            WorkloadSpec::Batch {
                length_hours,
                slack,
                ..
            } => Job::batch(0, RegionId(0), Hour(0), *length_hours, *slack).window_hours(),
            WorkloadSpec::Interactive { .. } => {
                Job::interactive(0, RegionId(0), Hour(0)).window_hours()
            }
            WorkloadSpec::Mixed {
                batch_length_hours,
                batch_slack,
                ..
            } => Job::batch(0, RegionId(0), Hour(0), *batch_length_hours, *batch_slack)
                .window_hours()
                .max(Job::interactive(0, RegionId(0), Hour(0)).window_hours()),
        };
        last + window
    }

    /// Every key [`WorkloadSpec::from_pairs`] understands, across all
    /// classes — the vocabulary behind the scenario checker's
    /// unknown-key suggestions.
    pub const KNOWN_KEYS: &'static [&'static str] = &[
        "class",
        "per_origin",
        "spacing",
        "arrival",
        "arrival_seed",
        "length",
        "slack",
        "interruptible",
        "migratable_fraction",
        "seed",
    ];

    /// Canonical text form of the whole recipe, stable across runs —
    /// feeds scenario content-addressing in `decarb-sim`.
    pub fn canonical(&self) -> String {
        match self {
            WorkloadSpec::Batch {
                per_origin,
                arrival,
                length_hours,
                slack,
                interruptible,
            } => format!(
                "batch:{per_origin}:{}:{length_hours}:{}:{interruptible}",
                arrival.canonical(),
                slack.label(),
            ),
            WorkloadSpec::Interactive {
                per_origin,
                arrival,
            } => format!("interactive:{per_origin}:{}", arrival.canonical()),
            WorkloadSpec::Mixed {
                per_origin,
                arrival,
                migratable_fraction,
                batch_length_hours,
                batch_slack,
                seed,
            } => format!(
                "mixed:{per_origin}:{}:{migratable_fraction}:{batch_length_hours}:{}:{seed}",
                arrival.canonical(),
                batch_slack.label(),
            ),
        }
    }

    /// Materializes the spec into concrete jobs submitted from every
    /// origin, starting at `start`. Job ids are unique across the whole
    /// population and the result is deterministic.
    pub fn materialize(&self, origins: &[RegionId], start: Hour) -> Vec<Job> {
        self.materialize_at(origins, start, Resolution::HOURLY)
    }

    /// Materializes the spec onto a sub-hourly slot axis: `start` is a
    /// *slot* index and each hourly arrival offset lands on its
    /// hour-aligned slot (`offset × slots_per_hour`). Arrival recipes
    /// keep their hourly cadence — finer resolution refines the carbon
    /// axis, not the submission process — so a sub-hourly run sees the
    /// same population as its hourly counterpart, just addressed in
    /// slots. At [`Resolution::HOURLY`] this is exactly
    /// [`WorkloadSpec::materialize`].
    pub fn materialize_at(
        &self,
        origins: &[RegionId],
        start: Hour,
        resolution: Resolution,
    ) -> Vec<Job> {
        let slots_per_hour = resolution.slots_per_hour();
        let mut jobs = Vec::with_capacity(self.job_count(origins.len()));
        let mut id = 0u64;
        let mut rng = match self {
            WorkloadSpec::Mixed { seed, .. } => Xoshiro256::seeded(*seed),
            _ => Xoshiro256::seeded(0),
        };
        for (o, &origin) in origins.iter().enumerate() {
            let per_origin = match self {
                WorkloadSpec::Batch { per_origin, .. }
                | WorkloadSpec::Interactive { per_origin, .. }
                | WorkloadSpec::Mixed { per_origin, .. } => *per_origin,
            };
            let offsets = self.arrival().offsets(per_origin, o);
            for &offset in &offsets {
                id += 1;
                let arrival = start.plus(offset * slots_per_hour);
                jobs.push(match self {
                    WorkloadSpec::Batch {
                        length_hours,
                        slack,
                        interruptible,
                        ..
                    } => {
                        let job = Job::batch(id, origin, arrival, *length_hours, *slack);
                        if *interruptible {
                            job.with_interruptible()
                        } else {
                            job
                        }
                    }
                    WorkloadSpec::Interactive { .. } => Job::interactive(id, origin, arrival),
                    WorkloadSpec::Mixed {
                        migratable_fraction,
                        batch_length_hours,
                        batch_slack,
                        ..
                    } => {
                        if rng.uniform() < *migratable_fraction {
                            Job::batch(id, origin, arrival, *batch_length_hours, *batch_slack)
                        } else {
                            Job::interactive(id, origin, arrival)
                        }
                    }
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    const ORIGINS: [RegionId; 3] = [RegionId(0), RegionId(1), RegionId(2)];

    fn batch_spec() -> WorkloadSpec {
        WorkloadSpec::Batch {
            per_origin: 4,
            arrival: Arrival::fixed(24),
            length_hours: 8.0,
            slack: Slack::Day,
            interruptible: true,
        }
    }

    #[test]
    fn batch_spec_materializes_per_origin_cadence() {
        let spec = batch_spec();
        assert_eq!(spec.label(), "batch");
        assert_eq!(spec.job_count(3), 12);
        assert_eq!(spec.last_arrival_offset(3), 3 * 24 + 2);
        let jobs = spec.materialize(&ORIGINS, Hour(100));
        assert_eq!(jobs.len(), 12);
        assert!(jobs.iter().all(|j| j.interruptible && j.migratable));
        assert!(jobs.iter().all(|j| j.length_hours == 8.0));
        // Ids are unique across origins.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
        // Origins are staggered by one hour; cadence is 24 h.
        let se: Vec<u32> = jobs
            .iter()
            .filter(|j| j.origin == ORIGINS[0])
            .map(|j| j.arrival.0)
            .collect();
        assert_eq!(se, vec![100, 124, 148, 172]);
        let de: Vec<u32> = jobs
            .iter()
            .filter(|j| j.origin == ORIGINS[1])
            .map(|j| j.arrival.0)
            .collect();
        assert_eq!(de, vec![101, 125, 149, 173]);
    }

    #[test]
    fn worst_case_completion_bounds_every_materialized_job() {
        // The static bound must dominate arrival + window of every job
        // the spec actually materializes, for each class.
        let specs = [
            batch_spec(),
            WorkloadSpec::Interactive {
                per_origin: 5,
                arrival: Arrival::fixed(6),
            },
            WorkloadSpec::Mixed {
                per_origin: 4,
                arrival: Arrival::fixed(12),
                migratable_fraction: 0.5,
                batch_length_hours: 4.0,
                batch_slack: Slack::Day,
                seed: 0x5EED,
            },
        ];
        for spec in &specs {
            let bound = spec.worst_case_completion_offset(ORIGINS.len());
            let jobs = spec.materialize(&ORIGINS, Hour(0));
            let max = jobs
                .iter()
                .map(|j| j.arrival.0 as usize + j.window_hours())
                .max()
                .unwrap();
            assert!(max <= bound, "{}: {max} > {bound}", spec.label());
        }
        // For the batch recipe the bound is exact: last arrival
        // (3 × 24 + 2) plus a day of slack plus the 8-hour runtime.
        assert_eq!(
            batch_spec().worst_case_completion_offset(3),
            3 * 24 + 2 + 24 + 8
        );
    }

    #[test]
    fn known_keys_cover_from_pairs_vocabulary() {
        // Every KNOWN_KEYS entry must be accepted by from_pairs in some
        // class, so the checker's suggestion vocabulary cannot rot.
        let recipes: &[&[(&str, &str)]] = &[
            &[
                ("class", "batch"),
                ("per_origin", "2"),
                ("spacing", "24"),
                ("length", "4"),
                ("slack", "day"),
                ("interruptible", "true"),
            ],
            &[
                ("class", "interactive"),
                ("arrival", "poisson:0.5"),
                ("arrival_seed", "7"),
            ],
            &[
                ("class", "mixed"),
                ("migratable_fraction", "0.4"),
                ("seed", "9"),
            ],
        ];
        let mut used: Vec<&str> = Vec::new();
        for pairs in recipes {
            let owned: Vec<(String, String)> = pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect();
            WorkloadSpec::from_pairs(&owned).unwrap();
            used.extend(pairs.iter().map(|(k, _)| *k));
        }
        for key in WorkloadSpec::KNOWN_KEYS {
            assert!(used.contains(key), "KNOWN_KEYS lists unexercised `{key}`");
        }
    }

    #[test]
    fn interactive_spec_is_inflexible() {
        let spec = WorkloadSpec::Interactive {
            per_origin: 5,
            arrival: Arrival::fixed(6),
        };
        assert_eq!(spec.label(), "interactive");
        let jobs = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(jobs.len(), 15);
        assert!(jobs
            .iter()
            .all(|j| j.class == JobClass::Interactive && !j.migratable));
        assert!(jobs.iter().all(|j| j.slack_hours() == 0));
    }

    #[test]
    fn mixed_spec_is_deterministic_and_mixes_classes() {
        let spec = WorkloadSpec::Mixed {
            per_origin: 40,
            arrival: Arrival::fixed(2),
            migratable_fraction: 0.5,
            batch_length_hours: 4.0,
            batch_slack: Slack::Day,
            seed: 7,
        };
        assert_eq!(spec.label(), "mixed");
        let a = spec.materialize(&ORIGINS, Hour(0));
        let b = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(a, b, "same seed must give the same population");
        let batch = a.iter().filter(|j| j.class == JobClass::Batch).count();
        assert!(batch > 0 && batch < a.len(), "both classes present");
        for job in &a {
            match job.class {
                JobClass::Batch => assert!(job.migratable),
                JobClass::Interactive => assert!(!job.migratable),
            }
        }
    }

    fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn from_pairs_builds_each_class() {
        let batch = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "3"),
            ("spacing", "12"),
            ("length", "6.5"),
            ("slack", "week"),
            ("interruptible", "false"),
        ]))
        .unwrap();
        match batch {
            WorkloadSpec::Batch {
                per_origin,
                arrival,
                length_hours,
                slack,
                interruptible,
            } => {
                assert_eq!(per_origin, 3);
                assert_eq!(arrival, Arrival::fixed(12));
                assert_eq!(length_hours, 6.5);
                assert_eq!(slack, Slack::Week);
                assert!(!interruptible);
            }
            other => panic!("wrong class: {other:?}"),
        }
        let interactive =
            WorkloadSpec::from_pairs(&pairs(&[("class", "interactive"), ("per_origin", "7")]))
                .unwrap();
        assert_eq!(interactive.label(), "interactive");
        assert_eq!(interactive.job_count(2), 14);
        let mixed = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "mixed"),
            ("migratable_fraction", "0.25"),
            ("seed", "99"),
        ]))
        .unwrap();
        assert_eq!(mixed.label(), "mixed");
    }

    #[test]
    fn from_pairs_defaults_match_the_builtin_batch_recipe() {
        let spec = WorkloadSpec::from_pairs(&pairs(&[("class", "batch")])).unwrap();
        match spec {
            WorkloadSpec::Batch {
                per_origin,
                arrival,
                length_hours,
                slack,
                interruptible,
            } => {
                assert_eq!(
                    (per_origin, arrival, length_hours, slack, interruptible),
                    (12, Arrival::fixed(24), 8.0, Slack::Day, true)
                );
            }
            other => panic!("wrong class: {other:?}"),
        }
    }

    #[test]
    fn from_pairs_rejects_bad_inputs() {
        for (kv, needle) in [
            (vec![("per_origin", "3")], "needs `class`"),
            (vec![("class", "streaming")], "unknown workload class"),
            (vec![("class", "batch"), ("slack", "soon")], "unknown slack"),
            (vec![("class", "batch"), ("length", "-1")], "positive"),
            (vec![("class", "batch"), ("per_origin", "0")], "at least 1"),
            (vec![("class", "batch"), ("spacing", "0")], "at least 1"),
            (
                vec![("class", "batch"), ("arrival", "bursty:3")],
                "bursty:<rate>,<burst-size",
            ),
            (
                vec![("class", "batch"), ("arrival", "bursty:0,4")],
                "bursty:<rate>,<burst-size",
            ),
            (
                vec![("class", "batch"), ("arrival", "diurnal:1,2")],
                "amplitude in [0, 1]",
            ),
            (
                vec![("class", "batch"), ("arrival", "sporadic:1")],
                "unknown arrival recipe",
            ),
            (
                vec![("class", "batch"), ("arrival", "poisson:-1")],
                "jobs per hour",
            ),
            (
                vec![("class", "batch"), ("arrival", "fixed:0")],
                "fixed:<hours",
            ),
            (
                vec![
                    ("class", "batch"),
                    ("spacing", "6"),
                    ("arrival", "poisson:0.5"),
                ],
                "not both",
            ),
            (
                vec![("class", "batch"), ("arrival_seed", "9")],
                "only applies to poisson",
            ),
            (
                vec![("class", "batch"), ("per_origin", "many")],
                "invalid value",
            ),
            (
                vec![("class", "mixed"), ("migratable_fraction", "1.5")],
                "[0, 1]",
            ),
            (
                vec![("class", "interactive"), ("length", "4")],
                "unknown workload key",
            ),
            (vec![("class", "batch"), ("bogus", "1")], "unknown workload"),
        ] {
            let err = WorkloadSpec::from_pairs(&pairs(&kv)).unwrap_err();
            assert!(err.contains(needle), "{kv:?}: got `{err}`");
        }
    }

    #[test]
    fn slack_parse_accepts_aliases() {
        for (text, slack) in [
            ("none", Slack::None),
            ("DAY", Slack::Day),
            ("24h", Slack::Day),
            ("week", Slack::Week),
            ("7d", Slack::Week),
            ("24d", Slack::Days24),
            ("month", Slack::Month),
            ("30d", Slack::Month),
            ("year", Slack::Year),
            ("1y", Slack::Year),
            (" 10x ", Slack::TenX),
        ] {
            assert_eq!(Slack::parse(text).unwrap(), slack, "{text}");
        }
        assert!(Slack::parse("fortnight").is_err());
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_seed_sensitive() {
        let spec = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "16"),
            ("arrival", "poisson:0.25"),
        ]))
        .unwrap();
        let a = spec.materialize(&ORIGINS, Hour(0));
        let b = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(a, b, "same seed must give the same arrivals");
        assert_eq!(a.len(), 48);
        // Arrivals are non-decreasing per origin and genuinely uneven
        // (a fixed cadence would have constant gaps).
        let se: Vec<u32> = a
            .iter()
            .filter(|j| j.origin == ORIGINS[0])
            .map(|j| j.arrival.0)
            .collect();
        assert!(se.windows(2).all(|w| w[0] <= w[1]), "{se:?}");
        let gaps: Vec<u32> = se.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().any(|&g| g != gaps[0]),
            "poisson gaps vary: {gaps:?}"
        );
        // A different seed shifts the arrival pattern.
        let reseeded = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "16"),
            ("arrival", "poisson:0.25"),
            ("arrival_seed", "7"),
        ]))
        .unwrap();
        let c = reseeded.materialize(&ORIGINS, Hour(0));
        assert_ne!(
            a.iter().map(|j| j.arrival).collect::<Vec<_>>(),
            c.iter().map(|j| j.arrival).collect::<Vec<_>>()
        );
        // Horizon sizing covers the actual last arrival.
        let last = a.iter().map(|j| j.arrival.0).max().unwrap() as usize;
        assert_eq!(spec.last_arrival_offset(ORIGINS.len()), last);
    }

    #[test]
    fn bursty_arrivals_cluster_and_stay_deterministic() {
        let spec = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "24"),
            ("arrival", "bursty:0.5,4"),
        ]))
        .unwrap();
        let a = spec.materialize(&ORIGINS, Hour(0));
        let b = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(a, b, "same seed must give the same arrivals");
        assert_eq!(a.len(), 72);
        let se: Vec<u32> = a
            .iter()
            .filter(|j| j.origin == ORIGINS[0])
            .map(|j| j.arrival.0)
            .collect();
        assert!(se.windows(2).all(|w| w[0] <= w[1]), "{se:?}");
        // Full bursts land on the same hour: 24 jobs in 6 epochs of 4.
        let mut epochs = se.clone();
        epochs.dedup();
        assert_eq!(se.len(), 24);
        assert_eq!(epochs.len(), 6, "bursts of 4 share an epoch: {se:?}");
        // A different seed moves the epochs.
        let reseeded = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "24"),
            ("arrival", "bursty:0.5,4"),
            ("arrival_seed", "9"),
        ]))
        .unwrap();
        assert_ne!(a, reseeded.materialize(&ORIGINS, Hour(0)));
        // Horizon sizing covers the true last arrival.
        let last = a.iter().map(|j| j.arrival.0).max().unwrap() as usize;
        assert_eq!(spec.last_arrival_offset(ORIGINS.len()), last);
    }

    #[test]
    fn diurnal_arrivals_prefer_daytime_hours() {
        let spec = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "400"),
            ("arrival", "diurnal:1,1"),
        ]))
        .unwrap();
        let a = spec.materialize(&ORIGINS, Hour(0));
        assert_eq!(a, spec.materialize(&ORIGINS, Hour(0)), "deterministic");
        // With full modulation the 06:00–18:00 half-day must receive
        // well over half of the arrivals (its rate integral is ~2x).
        let day = a
            .iter()
            .filter(|j| (6..18).contains(&(j.arrival.0 % 24)))
            .count();
        let frac = day as f64 / a.len() as f64;
        assert!(frac > 0.6, "daytime fraction {frac}");
        // Zero amplitude reduces to a plain Poisson-like spread.
        let flat = WorkloadSpec::from_pairs(&pairs(&[
            ("class", "batch"),
            ("per_origin", "400"),
            ("arrival", "diurnal:1,0"),
        ]))
        .unwrap()
        .materialize(&ORIGINS, Hour(0));
        let flat_day = flat
            .iter()
            .filter(|j| (6..18).contains(&(j.arrival.0 % 24)))
            .count();
        let flat_frac = flat_day as f64 / flat.len() as f64;
        assert!((flat_frac - 0.5).abs() < 0.1, "flat fraction {flat_frac}");
    }

    #[test]
    fn bursty_and_diurnal_canonical_forms_round_trip() {
        let bursty = Arrival::parse("bursty:0.5,4").unwrap();
        assert_eq!(
            bursty,
            Arrival::Bursty {
                rate_per_hour: 0.5,
                burst_size: 4,
                seed: DEFAULT_ARRIVAL_SEED
            }
        );
        assert_eq!(bursty.canonical(), format!("bursty:0.5:4:{}", 0xA221));
        let diurnal = Arrival::parse("diurnal:2,0.75").unwrap();
        assert_eq!(
            diurnal,
            Arrival::Diurnal {
                rate_per_hour: 2.0,
                amplitude: 0.75,
                seed: DEFAULT_ARRIVAL_SEED
            }
        );
        assert_eq!(diurnal.canonical(), format!("diurnal:2:0.75:{}", 0xA221));
        // Errors list the valid forms.
        let err = Arrival::parse("bursty:1").unwrap_err();
        assert!(err.contains("bursty:<rate>,<burst-size"), "{err}");
        let err = Arrival::parse("diurnal:1").unwrap_err();
        assert!(err.contains("amplitude in [0, 1]"), "{err}");
        let err = Arrival::parse("sporadic:1").unwrap_err();
        assert!(err.contains("bursty:<rate>,<burst-size>"), "{err}");
        assert!(err.contains("diurnal:<rate>,<amplitude>"), "{err}");
    }

    #[test]
    fn arrival_parse_round_trips_canonical_forms() {
        assert_eq!(Arrival::parse("fixed:12").unwrap(), Arrival::fixed(12));
        let poisson = Arrival::parse("poisson:0.5").unwrap();
        assert_eq!(
            poisson,
            Arrival::Poisson {
                rate_per_hour: 0.5,
                seed: DEFAULT_ARRIVAL_SEED
            }
        );
        assert_eq!(poisson.canonical(), format!("poisson:0.5:{}", 0xA221));
        assert_eq!(Arrival::fixed(24).canonical(), "fixed:24");
        assert!(Arrival::parse("sometimes").is_err());
        assert!(Arrival::parse("poisson:").is_err());
        assert!(Arrival::parse("poisson:inf").is_err());
    }

    #[test]
    fn canonical_encodings_distinguish_specs() {
        let base = batch_spec();
        let mut other = batch_spec();
        if let WorkloadSpec::Batch { length_hours, .. } = &mut other {
            *length_hours = 9.0;
        }
        assert_ne!(base.canonical(), other.canonical());
        assert_eq!(base.canonical(), batch_spec().canonical());
        assert!(base.canonical().starts_with("batch:4:fixed:24:"));
    }

    #[test]
    fn materialize_at_lands_arrivals_on_hour_aligned_slots() {
        use decarb_traces::Resolution;
        let spec = batch_spec();
        let five = Resolution::from_minutes(5).unwrap();
        let hourly = spec.materialize(&ORIGINS, Hour(100));
        // Slot-domain start = hourly start × 12.
        let fine = spec.materialize_at(&ORIGINS, Hour(1200), five);
        assert_eq!(hourly.len(), fine.len());
        for (h, f) in hourly.iter().zip(&fine) {
            assert_eq!(f.arrival.0, h.arrival.0 * 12, "job {}", h.id);
            assert_eq!((f.id, f.origin, f.class), (h.id, h.origin, h.class));
        }
        // Hourly resolution is the identity.
        assert_eq!(
            spec.materialize_at(&ORIGINS, Hour(100), Resolution::HOURLY),
            hourly
        );
    }

    #[test]
    fn empty_origins_yield_no_jobs() {
        assert!(batch_spec().materialize(&[], Hour(0)).is_empty());
        assert_eq!(batch_spec().job_count(0), 0);
        assert_eq!(batch_spec().last_arrival_offset(0), 3 * 24);
    }
}
