//! Synthetic cluster-trace generation.
//!
//! Produces a Borg-like stream of jobs whose length mix follows a
//! [`JobLengthDistribution`]'s *count* weights, so the realized resource
//! usage reproduces the distribution's resource weights. Used by the
//! simulator and the workload-weighted experiments as a stand-in for the
//! Azure Public Dataset and Google Borg v3 traces.

use decarb_traces::rng::Xoshiro256;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{Hour, RegionId};

use crate::distribution::JobLengthDistribution;
use crate::job::{Job, Slack, JOB_LENGTHS_HOURS};

/// Configuration for synthetic cluster-trace generation.
#[derive(Debug, Clone)]
pub struct ClusterTraceConfig {
    /// Year jobs arrive in.
    pub year: i32,
    /// Total number of jobs.
    pub jobs: usize,
    /// Length distribution preset.
    pub distribution: JobLengthDistribution,
    /// Slack applied to every batch job.
    pub slack: Slack,
    /// Whether batch jobs are interruptible.
    pub interruptible: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterTraceConfig {
    fn default() -> Self {
        Self {
            year: 2022,
            jobs: 10_000,
            distribution: JobLengthDistribution::GoogleLike,
            slack: Slack::Day,
            interruptible: false,
            seed: 0xC1A5_7E12,
        }
    }
}

/// A generated cluster trace: jobs sorted by arrival time.
#[derive(Debug, Clone)]
pub struct ClusterTrace {
    /// Jobs sorted by arrival hour.
    pub jobs: Vec<Job>,
}

impl ClusterTrace {
    /// Generates a trace for `origin` under `config`.
    pub fn generate(origin: RegionId, config: &ClusterTraceConfig) -> Self {
        let mut rng = Xoshiro256::seeded(config.seed);
        let counts = config.distribution.count_weights();
        let start = year_start(config.year).0;
        let span = hours_in_year(config.year) as u32;
        let mut jobs: Vec<Job> = (0..config.jobs as u64)
            .map(|id| {
                let arrival = Hour(start + rng.below(span as usize) as u32);
                let bucket = sample_bucket(&counts, rng.uniform());
                let length = JOB_LENGTHS_HOURS[bucket];
                let job = Job::batch(id, origin, arrival, length, config.slack);
                if config.interruptible {
                    job.with_interruptible()
                } else {
                    job
                }
            })
            .collect();
        jobs.sort_by_key(|j| (j.arrival, j.id));
        Self { jobs }
    }

    /// Returns total resource usage (kWh under the 1 kW model).
    pub fn total_energy_kwh(&self) -> f64 {
        self.jobs.iter().map(|j| j.energy_kwh()).sum()
    }

    /// Returns the fraction of total resource usage contributed by jobs
    /// of at least `min_hours` length.
    pub fn usage_share_of_long_jobs(&self, min_hours: f64) -> f64 {
        let total = self.total_energy_kwh();
        if total <= 0.0 {
            return 0.0;
        }
        let long: f64 = self
            .jobs
            .iter()
            .filter(|j| j.length_hours >= min_hours)
            .map(|j| j.energy_kwh())
            .sum();
        long / total
    }

    /// Returns the fraction of job *count* with at least `min_hours` length.
    pub fn count_share_of_long_jobs(&self, min_hours: f64) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let long = self
            .jobs
            .iter()
            .filter(|j| j.length_hours >= min_hours)
            .count();
        long as f64 / self.jobs.len() as f64
    }
}

fn sample_bucket(weights: &[f64; 8], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn google_trace(jobs: usize) -> ClusterTrace {
        ClusterTrace::generate(
            RegionId(0),
            &ClusterTraceConfig {
                jobs,
                ..ClusterTraceConfig::default()
            },
        )
    }

    #[test]
    fn jobs_sorted_by_arrival_within_year() {
        let trace = google_trace(5_000);
        assert_eq!(trace.jobs.len(), 5_000);
        for pair in trace.jobs.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        let start = year_start(2022);
        let end = Hour(start.0 + 8760);
        assert!(trace
            .jobs
            .iter()
            .all(|j| j.arrival >= start && j.arrival < end));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = google_trace(1_000);
        let b = google_trace(1_000);
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn long_jobs_dominate_usage_not_count() {
        // §5.2.5: ≈ 1 % of very long jobs account for ≈ 90 % of usage in
        // the Google trace; our week-long bucket alone must dominate.
        let trace = google_trace(200_000);
        let count_share = trace.count_share_of_long_jobs(96.0);
        let usage_share = trace.usage_share_of_long_jobs(96.0);
        assert!(count_share < 0.03, "count share {count_share}");
        assert!(usage_share > 0.6, "usage share {usage_share}");
    }

    #[test]
    fn realized_usage_matches_resource_weights() {
        let trace = google_trace(300_000);
        let weights = JobLengthDistribution::GoogleLike.resource_weights();
        let total = trace.total_energy_kwh();
        for (i, &len) in JOB_LENGTHS_HOURS.iter().enumerate() {
            let bucket: f64 = trace
                .jobs
                .iter()
                .filter(|j| (j.length_hours - len).abs() < 1e-9)
                .map(|j| j.energy_kwh())
                .sum();
            let share = bucket / total;
            assert!(
                (share - weights[i]).abs() < 0.05,
                "bucket {len}h share {share:.3} vs weight {:.3}",
                weights[i]
            );
        }
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = ClusterTrace { jobs: Vec::new() };
        assert_eq!(trace.total_energy_kwh(), 0.0);
        assert_eq!(trace.usage_share_of_long_jobs(1.0), 0.0);
        assert_eq!(trace.count_share_of_long_jobs(1.0), 0.0);
    }
}
