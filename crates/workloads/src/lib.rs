//! Cloud workload models for the `decarb` workspace.
//!
//! Implements Table 1 of the paper: the job dimensions (length, slack,
//! deferrability, interruptibility, migratability), the job-length
//! distributions derived from the Azure Public Dataset and Google's Borg
//! v3 trace, and generators that sweep arrivals across every hour of a
//! year.
//!
//! All jobs use the paper's *energy-optimized 100 % usage* resource model:
//! a job draws a constant 1 kW for its whole length, so carbon emissions in
//! g·CO2eq equal the sum of hourly carbon-intensity samples over the hours
//! the job runs.

pub mod cluster_trace;
pub mod distribution;
pub mod generator;
pub mod job;
pub mod spec;

pub use cluster_trace::{ClusterTrace, ClusterTraceConfig};
pub use distribution::JobLengthDistribution;
pub use generator::{arrival_sweep, MixedWorkload};
pub use job::{Job, JobClass, Slack, JOB_LENGTHS_HOURS};
pub use spec::{Arrival, WorkloadSpec, DEFAULT_ARRIVAL_SEED};
