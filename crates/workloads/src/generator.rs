//! Workload generators: arrival sweeps and mixed populations.

use decarb_traces::rng::Xoshiro256;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{Hour, RegionId};

use crate::job::{Job, Slack};

/// Returns every hourly arrival time in calendar `year`.
///
/// The paper evaluates all 8760 possible start times in a year and reports
/// averages across them (§3.1.2); this is that sweep.
pub fn arrival_sweep(year: i32) -> impl Iterator<Item = Hour> {
    let start = year_start(year).0;
    let len = hours_in_year(year) as u32;
    (start..start + len).map(Hour)
}

/// A mixed population of migratable batch and pinned interactive jobs
/// (§6.1's what-if).
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Fraction of the workload that is migratable batch work, in `[0, 1]`.
    pub migratable_fraction: f64,
    /// Job length for the batch portion, in hours.
    pub batch_length_hours: f64,
    /// Slack for the batch portion.
    pub batch_slack: Slack,
}

impl MixedWorkload {
    /// Creates a mixed workload with the given migratable fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `migratable_fraction` is in `[0, 1]`.
    pub fn new(migratable_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&migratable_fraction),
            "migratable fraction must be in [0, 1]"
        );
        Self {
            migratable_fraction,
            batch_length_hours: 1.0,
            batch_slack: Slack::None,
        }
    }

    /// Samples `n` jobs arriving at `arrival` from `origin`, using `rng`
    /// to draw each job's class.
    pub fn sample(
        &self,
        n: usize,
        origin: RegionId,
        arrival: Hour,
        rng: &mut Xoshiro256,
    ) -> Vec<Job> {
        (0..n as u64)
            .map(|id| {
                if rng.uniform() < self.migratable_fraction {
                    Job::batch(
                        id,
                        origin,
                        arrival,
                        self.batch_length_hours,
                        self.batch_slack,
                    )
                } else {
                    Job::interactive(id, origin, arrival)
                }
            })
            .collect()
    }

    /// Returns the expected fraction of jobs in each class as
    /// `(migratable, pinned)`.
    pub fn expected_split(&self) -> (f64, f64) {
        (self.migratable_fraction, 1.0 - self.migratable_fraction)
    }
}

/// Generates one batch job per hourly arrival over a year — the unit
/// workload used by every temporal experiment.
pub fn hourly_batch_jobs(
    year: i32,
    origin: RegionId,
    length_hours: f64,
    slack: Slack,
    interruptible: bool,
) -> Vec<Job> {
    arrival_sweep(year)
        .enumerate()
        .map(|(i, arrival)| {
            let job = Job::batch(i as u64, origin, arrival, length_hours, slack);
            if interruptible {
                job.with_interruptible()
            } else {
                job
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    #[test]
    fn sweep_covers_whole_year() {
        let arrivals: Vec<Hour> = arrival_sweep(2022).collect();
        assert_eq!(arrivals.len(), 8760);
        assert_eq!(arrivals[0], year_start(2022));
        assert_eq!(arrivals[8759].0, year_start(2022).0 + 8759);
        // Leap year has 8784 arrivals.
        assert_eq!(arrival_sweep(2020).count(), 8784);
    }

    #[test]
    fn mixed_split_converges_to_fraction() {
        let workload = MixedWorkload::new(0.3);
        let mut rng = Xoshiro256::seeded(1);
        let jobs = workload.sample(20_000, RegionId(0), Hour(0), &mut rng);
        let batch = jobs.iter().filter(|j| j.class == JobClass::Batch).count();
        let frac = batch as f64 / jobs.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "batch fraction {frac}");
        // Interactive jobs are pinned; batch ones are migratable.
        for job in &jobs {
            match job.class {
                JobClass::Batch => assert!(job.migratable),
                JobClass::Interactive => assert!(!job.migratable),
            }
        }
    }

    #[test]
    fn mixed_extremes() {
        let mut rng = Xoshiro256::seeded(2);
        let all_batch = MixedWorkload::new(1.0).sample(100, RegionId(0), Hour(0), &mut rng);
        assert!(all_batch.iter().all(|j| j.class == JobClass::Batch));
        let none_batch = MixedWorkload::new(0.0).sample(100, RegionId(0), Hour(0), &mut rng);
        assert!(none_batch.iter().all(|j| j.class == JobClass::Interactive));
        assert_eq!(MixedWorkload::new(0.25).expected_split(), (0.25, 0.75));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_panics() {
        MixedWorkload::new(1.5);
    }

    #[test]
    fn hourly_batch_jobs_shape() {
        let jobs = hourly_batch_jobs(2022, RegionId(0), 6.0, Slack::Day, true);
        assert_eq!(jobs.len(), 8760);
        assert!(jobs.iter().all(|j| j.interruptible));
        assert!(jobs.iter().all(|j| j.length_hours == 6.0));
        assert_eq!(jobs[0].arrival, year_start(2022));
        let not_int = hourly_batch_jobs(2022, RegionId(0), 6.0, Slack::Day, false);
        assert!(not_int.iter().all(|j| !j.interruptible));
    }
}
