//! Scoped-thread data parallelism for the `decarb` workspace.
//!
//! The workspace builds without a route to a crates registry, so
//! `rayon` is not available; this crate provides the slice of its API
//! the experiment pipeline needs — an indexed parallel map with
//! work-stealing over a shared atomic cursor — on top of
//! `std::thread::scope`. Swapping a call site to rayon later is a
//! one-line change (`par_map(&items, f)` ↔ `items.par_iter().map(f)`).
//!
//! Results are returned in input order regardless of which worker
//! computed them, so `par_map` is a drop-in replacement for a serial
//! `iter().map().collect()`.
//!
//! # Examples
//!
//! ```
//! let squares = decarb_par::par_map(&[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the worker count used by [`par_map`]: the machine's
/// available parallelism, overridable via the `DECARB_THREADS`
/// environment variable (values are clamped to at least 1).
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("DECARB_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads and
/// collects the results in input order.
///
/// Workers claim indices from a shared atomic cursor, so uneven item
/// costs (e.g. a 123-region sweep where some regions are cheaper) still
/// balance. A panic in `f` propagates: the scope joins all workers and
/// panics on the calling thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (`workers == 1` runs
/// serially on the calling thread).
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                // SAFETY: `i` is claimed by exactly one worker (the
                // cursor is fetch_add), every `i` is in bounds, and the
                // scope guarantees workers finish before `slots` is
                // read or dropped.
                unsafe { *slots_ptr.0.add(i) = Some(result) };
            });
        }
    });
    slots
        .into_iter()
        // decarb-analyze: allow(no-panic) -- thread::scope propagates worker panics, so unclaimed slots are unreachable
        .map(|slot| slot.expect("every index was claimed by a worker"))
        .collect()
}

/// Runs `f` over `(index, item)` pairs in parallel purely for effects.
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let indices: Vec<usize> = (0..items.len()).collect();
    par_map(&indices, |&i| f(i, &items[i]));
}

/// A raw pointer wrapper that is `Sync` so workers can share the result
/// buffer; all access is through disjoint indices (see `par_map`).
struct SendPtr<R>(*mut Option<R>);
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for workers in [1, 2, 4, 16] {
            let out = par_map_with(workers, &items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn visits_every_item_exactly_once() {
        let hits = AtomicU32::new(0);
        let items: Vec<u32> = (0..257).collect();
        let out = par_map_with(4, &items, |&x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn par_for_each_sees_correct_pairs() {
        let items = vec![10u32, 20, 30];
        let sum = AtomicU32::new(0);
        par_for_each(&items, |i, &x| {
            assert_eq!(x, (i as u32 + 1) * 10);
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 60);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        par_map_with(4, &items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
