//! Embodied-carbon accounting for the idle-capacity trade-off.
//!
//! §5.1.2 and §5.3.1 of the paper note that the idle capacity which makes
//! spatial shifting effective is not free: "the originating datacenters
//! remain underutilized, which increases operational and non-operational
//! costs such as embodied carbon". The paper leaves that cost
//! unquantified; this module prices it.
//!
//! Embodied (Scope-3) emissions of a server are amortized over its
//! lifetime into a constant g·CO2eq per server-hour, independent of
//! utilization. Provisioning a global fleet with idle fraction `f` to
//! serve fixed useful work `W` requires `W / (1 − f)` server-hours, so the
//! embodied burden *per useful server-hour* grows as `1 / (1 − f)` while
//! the operational saving from spatial shifting grows roughly linearly in
//! `f` (Fig. 5(c)). Their sum has an interior optimum: past it, adding
//! idle capacity for migration headroom emits more in manufacturing than
//! it saves in operations.

/// Embodied-carbon parameters for one server class.
///
/// Defaults follow the published life-cycle analyses cloud providers cite
/// (≈ 1–2 t CO2eq embodied per server, 4–6 year deployment, ≈ 300–500 W
/// wall power under load). The paper's 1 kW "energy-optimized" job model
/// (Table 1) maps one job to one kW of IT load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbodiedParams {
    /// Embodied emissions of manufacturing one server, kg·CO2eq.
    pub embodied_kg: f64,
    /// Deployed lifetime over which the embodied carbon is amortized,
    /// hours.
    pub lifetime_hours: f64,
    /// Server power draw, kW (converts server-hours to the job model's
    /// kWh).
    pub power_kw: f64,
}

impl Default for EmbodiedParams {
    fn default() -> Self {
        Self {
            embodied_kg: 1500.0,
            lifetime_hours: 5.0 * 365.0 * 24.0,
            power_kw: 1.0,
        }
    }
}

impl EmbodiedParams {
    /// Amortized embodied emissions per server-hour, g·CO2eq.
    pub fn per_server_hour_g(&self) -> f64 {
        self.embodied_kg * 1000.0 / self.lifetime_hours
    }

    /// Amortized embodied emissions per *useful* kWh when the fleet runs
    /// at `1 − idle` utilization, g·CO2eq.
    ///
    /// # Panics
    ///
    /// Panics unless `idle` lies in `[0, 1)`.
    pub fn per_useful_kwh_g(&self, idle: f64) -> f64 {
        assert!((0.0..1.0).contains(&idle), "idle fraction must be in [0,1)");
        self.per_server_hour_g() / (self.power_kw * (1.0 - idle))
    }
}

/// One point of the idle-capacity sweep with embodied carbon priced in.
#[derive(Debug, Clone, Copy)]
pub struct NetPoint {
    /// Global idle fraction.
    pub idle: f64,
    /// Operational emissions per useful kWh after spatial shifting,
    /// g·CO2eq (from the Fig. 5(c) machinery).
    pub operational_g: f64,
    /// Amortized embodied emissions per useful kWh, g·CO2eq.
    pub embodied_g: f64,
}

impl NetPoint {
    /// Total footprint per useful kWh, g·CO2eq.
    pub fn net_g(&self) -> f64 {
        self.operational_g + self.embodied_g
    }
}

/// Combines an operational idle-capacity sweep with embodied amortization.
///
/// `operational` holds `(idle_fraction, operational_g_per_kwh)` pairs, the
/// output shape of `capacity::idle_sweep` reduced to global means.
pub fn net_footprint_sweep(operational: &[(f64, f64)], params: &EmbodiedParams) -> Vec<NetPoint> {
    operational
        .iter()
        .map(|&(idle, op)| NetPoint {
            idle,
            operational_g: op,
            embodied_g: params.per_useful_kwh_g(idle),
        })
        .collect()
}

/// Returns the sweep point minimizing the net footprint.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn optimal_idle(points: &[NetPoint]) -> NetPoint {
    *points
        .iter()
        .min_by(|a, b| a.net_g().total_cmp(&b.net_g()))
        // decarb-analyze: allow(no-panic) -- callers pass the non-empty idle-fraction sweep grid
        .expect("sweep must be non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_arithmetic() {
        let p = EmbodiedParams {
            embodied_kg: 876.0,
            lifetime_hours: 8760.0,
            power_kw: 1.0,
        };
        // 876 kg over 8760 h = 100 g per server-hour.
        assert!((p.per_server_hour_g() - 100.0).abs() < 1e-9);
        // At 50 % idle each useful kWh carries two server-hours of
        // embodied burden.
        assert!((p.per_useful_kwh_g(0.5) - 200.0).abs() < 1e-9);
        assert!((p.per_useful_kwh_g(0.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn default_params_are_modest_relative_to_grid_ci() {
        let p = EmbodiedParams::default();
        // ≈ 34 g per server-hour: a tenth of the global average CI, as
        // expected for operational-dominated footprints.
        let g = p.per_server_hour_g();
        assert!((30.0..40.0).contains(&g), "{g}");
    }

    #[test]
    fn embodied_burden_diverges_with_idleness() {
        let p = EmbodiedParams::default();
        assert!(p.per_useful_kwh_g(0.9) > 5.0 * p.per_useful_kwh_g(0.0));
        assert!(p.per_useful_kwh_g(0.99) > 50.0 * p.per_useful_kwh_g(0.0));
    }

    #[test]
    fn net_sweep_finds_interior_optimum() {
        // Operational emissions fall linearly with idle (the Fig. 5(c)
        // shape: ≈ 368 g at 0 % idle to ≈ 16 g at 99 %).
        let operational: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let idle = i as f64 / 100.0;
                (idle, 368.39 - (368.39 - 16.0) * idle / 0.99)
            })
            .collect();
        let points = net_footprint_sweep(&operational, &EmbodiedParams::default());
        let best = optimal_idle(&points);
        // The optimum is interior: not at zero idle (operational savings
        // dominate early) and not at maximal idle (embodied divergence).
        assert!(best.idle > 0.05, "optimum at idle {}", best.idle);
        assert!(best.idle < 0.99, "optimum at idle {}", best.idle);
        let at_zero = points.first().unwrap().net_g();
        let at_max = points.last().unwrap().net_g();
        assert!(best.net_g() < at_zero);
        assert!(best.net_g() < at_max);
    }

    #[test]
    fn heavier_servers_pull_the_optimum_down() {
        let operational: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let idle = i as f64 / 100.0;
                (idle, 368.39 - (368.39 - 16.0) * idle / 0.99)
            })
            .collect();
        let light = optimal_idle(&net_footprint_sweep(
            &operational,
            &EmbodiedParams::default(),
        ));
        let heavy = optimal_idle(&net_footprint_sweep(
            &operational,
            &EmbodiedParams {
                embodied_kg: 6000.0,
                ..EmbodiedParams::default()
            },
        ));
        assert!(
            heavy.idle <= light.idle,
            "heavy {} vs light {}",
            heavy.idle,
            light.idle
        );
    }

    #[test]
    fn net_point_sums_components() {
        let p = NetPoint {
            idle: 0.5,
            operational_g: 100.0,
            embodied_g: 60.0,
        };
        assert!((p.net_g() - 160.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle fraction")]
    fn full_idle_panics() {
        EmbodiedParams::default().per_useful_kwh_g(1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sweep_panics() {
        optimal_idle(&[]);
    }
}
