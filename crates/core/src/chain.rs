//! Workflow-chain scheduling (extension of §5.3.2).
//!
//! The paper's system-design implications suggest breaking long jobs into
//! "a workflow of several smaller jobs" so each component can chase a
//! low-carbon valley. This module provides the optimal schedule for such
//! a chain: `k` stages that must run in order, each contiguously, with
//! idle gaps allowed, all inside `[arrival, arrival + total + slack]`.
//!
//! The dynamic program runs in O(k × window): `f_i(t)` is the cheapest way
//! to finish the first `i` stages by hour `t`, computed with prefix-sum
//! window costs and a running minimum.

use decarb_traces::Hour;

use crate::temporal::TemporalPlanner;

/// An optimal chain schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPlacement {
    /// Start hour of every stage, in order.
    pub starts: Vec<Hour>,
    /// Total carbon cost (g·CO2eq).
    pub cost_g: f64,
}

/// Schedules an ordered chain of contiguous stages with a shared slack.
///
/// `stage_slots` lists each stage's length in hours; the chain must finish
/// within `arrival + total_slots + slack` (clamped at the trace horizon).
///
/// # Panics
///
/// Panics if `stage_slots` is empty, any stage is zero-length, or the
/// chain cannot fit before the trace end.
pub fn best_chain(
    planner: &TemporalPlanner,
    arrival: Hour,
    stage_slots: &[usize],
    slack: usize,
) -> ChainPlacement {
    assert!(
        !stage_slots.is_empty(),
        "chain must have at least one stage"
    );
    assert!(
        stage_slots.iter().all(|&s| s > 0),
        "stages must be non-empty"
    );
    let total: usize = stage_slots.iter().sum();
    let trace_len = (planner.trace_end().0 - planner.trace_start().0) as usize;
    let first = (arrival.0 - planner.trace_start().0) as usize;
    assert!(
        first + total <= trace_len,
        "chain cannot fit before trace end"
    );
    let window = (total + slack).min(trace_len - first);

    let stage_cost = |start_off: usize, len: usize| -> f64 {
        planner.baseline_cost(arrival.plus(start_off), len)
    };

    // g[i][t] = cheapest cost of stages 0..=i with stage i ending exactly
    // at offset t; f[t] = min over ends ≤ t of the previous stage's g.
    let k = stage_slots.len();
    let inf = f64::INFINITY;
    let mut g_all: Vec<Vec<f64>> = Vec::with_capacity(k);
    // No predecessor constraint before the first stage.
    let mut f = vec![0.0f64; window + 1];
    let mut consumed = 0usize;
    for &len in stage_slots {
        consumed += len;
        let mut g = vec![inf; window + 1];
        for (t, slot) in g.iter_mut().enumerate().take(window + 1).skip(consumed) {
            let start = t - len;
            let prev = f[start];
            if prev < inf {
                *slot = prev + stage_cost(start, len);
            }
        }
        // f_next[t] = min over ends ≤ t of g.
        let mut best = inf;
        let mut f_next = vec![inf; window + 1];
        for (t, &v) in g.iter().enumerate() {
            if v < best {
                best = v;
            }
            f_next[t] = best;
        }
        f = f_next;
        g_all.push(g);
    }

    // The optimum is the smallest exact end of the last stage; backtrack
    // stage by stage, each time taking the cheapest end no later than the
    // next stage's start.
    let last = &g_all[k - 1];
    let (mut end, mut cost) = (window, inf);
    for (t, &v) in last.iter().enumerate() {
        if v < cost {
            cost = v;
            end = t;
        }
    }
    let mut starts = vec![Hour(0); k];
    let mut cur_end = end;
    for i in (0..k).rev() {
        let start = cur_end - stage_slots[i];
        starts[i] = arrival.plus(start);
        if i > 0 {
            let (mut best_end, mut best_cost) = (start, inf);
            for (t, &v) in g_all[i - 1].iter().enumerate().take(start + 1) {
                if v < best_cost {
                    best_cost = v;
                    best_end = t;
                }
            }
            cur_end = best_end;
        }
    }
    debug_assert!(starts
        .windows(2)
        .zip(stage_slots.windows(2))
        .all(|(s, l)| s[1].0 >= s[0].0 + l[0] as u32));
    ChainPlacement {
        starts,
        cost_g: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::TimeSeries;

    fn planner(values: &[f64]) -> TemporalPlanner {
        TemporalPlanner::new(&TimeSeries::new(Hour(0), values.to_vec()))
    }

    fn two_valley() -> TemporalPlanner {
        planner(&[9.0, 1.0, 1.0, 9.0, 9.0, 9.0, 1.5, 1.5, 9.0, 9.0, 9.0, 9.0])
    }

    #[test]
    fn single_stage_equals_deferral() {
        let p = two_valley();
        for slack in [0usize, 3, 8] {
            let chain = best_chain(&p, Hour(0), &[2], slack);
            let deferred = p.best_deferred(Hour(0), 2, slack);
            assert!(
                (chain.cost_g - deferred.cost_g).abs() < 1e-12,
                "slack {slack}"
            );
            assert_eq!(chain.starts[0], deferred.start);
        }
    }

    #[test]
    fn chain_splits_across_valleys() {
        let p = two_valley();
        // A monolithic 4-hour job must bridge the plateau; a 2+2 chain
        // lands both stages in the valleys.
        let mono = p.best_deferred(Hour(0), 4, 6).cost_g;
        let chain = best_chain(&p, Hour(0), &[2, 2], 6);
        assert!(
            chain.cost_g < mono - 1.0,
            "chain {} mono {mono}",
            chain.cost_g
        );
        assert_eq!(chain.starts, vec![Hour(1), Hour(6)]);
        assert!((chain.cost_g - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn chain_bounded_by_interruptible_and_deferral() {
        let p = two_valley();
        for (stages, slack) in [
            (vec![2usize, 2], 5usize),
            (vec![1, 2, 1], 6),
            (vec![3, 1], 4),
        ] {
            let total: usize = stages.iter().sum();
            let chain = best_chain(&p, Hour(0), &stages, slack);
            let mono = p.best_deferred(Hour(0), total, slack).cost_g;
            let (_, lower) = p.best_interruptible(Hour(0), total, slack);
            assert!(chain.cost_g <= mono + 1e-12, "{stages:?}");
            assert!(chain.cost_g >= lower - 1e-12, "{stages:?}");
        }
    }

    #[test]
    fn stage_order_and_spacing_respected() {
        let p = two_valley();
        let stages = [1usize, 2, 1];
        let chain = best_chain(&p, Hour(0), &stages, 8);
        for i in 1..stages.len() {
            assert!(
                chain.starts[i].0 >= chain.starts[i - 1].0 + stages[i - 1] as u32,
                "stage {i} overlaps"
            );
        }
    }

    #[test]
    fn zero_slack_runs_back_to_back() {
        let p = two_valley();
        let chain = best_chain(&p, Hour(0), &[2, 2], 0);
        assert_eq!(chain.starts, vec![Hour(0), Hour(2)]);
        let expected: f64 = p.baseline_cost(Hour(0), 4);
        assert!((chain.cost_g - expected).abs() < 1e-12);
    }

    #[test]
    fn cost_monotone_in_slack() {
        let p = two_valley();
        let mut last = f64::INFINITY;
        for slack in 0..8 {
            let chain = best_chain(&p, Hour(0), &[2, 2], slack);
            assert!(chain.cost_g <= last + 1e-12);
            last = chain.cost_g;
        }
    }

    #[test]
    fn fine_splits_approach_interruptible_bound() {
        let p = two_valley();
        let slack = 8;
        let mono = best_chain(&p, Hour(0), &[4], slack).cost_g;
        let halves = best_chain(&p, Hour(0), &[2, 2], slack).cost_g;
        let hourly = best_chain(&p, Hour(0), &[1, 1, 1, 1], slack).cost_g;
        let (_, lower) = p.best_interruptible(Hour(0), 4, slack);
        assert!(halves <= mono + 1e-12);
        assert!(hourly <= halves + 1e-12);
        assert!((hourly - lower).abs() < 1e-12, "1-hour stages = k-smallest");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_panics() {
        best_chain(&two_valley(), Hour(0), &[], 4);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_chain_panics() {
        best_chain(&two_valley(), Hour(0), &[20], 4);
    }
}
