//! Combined spatial + temporal shifting (§6.4, Fig. 12).
//!
//! A job migrates once to a destination region, then defers within its
//! slack inside that region. The paper decomposes the net reduction into a
//! *spatial* component (global average CI minus the destination's mean)
//! and a *temporal* component (the destination's average deferral saving),
//! and observes that the spatial term dominates the sign of the net gain.

use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::{Region, TraceSet, GLOBAL_AVG_CI};

use crate::temporal::TemporalPlanner;

/// Decomposed reductions for one destination region (all in g·CO2eq,
/// normalized per job hour).
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedBreakdown {
    /// Destination zone code.
    pub destination: String,
    /// Spatial component: global average CI − destination annual mean.
    /// Negative when the destination is dirtier than the global average.
    pub spatial_g: f64,
    /// Temporal component: the destination's mean deferral saving per job
    /// hour at the given slack.
    pub temporal_g: f64,
}

impl CombinedBreakdown {
    /// Net reduction: spatial + temporal.
    pub fn net_g(&self) -> f64 {
        self.spatial_g + self.temporal_g
    }
}

/// Computes the Fig. 12 decomposition for `destination`.
///
/// The temporal component averages deferral savings per job hour over
/// every arrival of `year` for a job of `slots` hours with `slack` hours
/// of slack, evaluated inside the destination's trace.
pub fn combined_shift(
    set: &TraceSet,
    destination: &Region,
    year: i32,
    slots: usize,
    slack: usize,
) -> CombinedBreakdown {
    // decarb-analyze: allow(no-panic) -- figure harness: destinations are drawn from the same dataset
    let series = set.series(&destination.code).expect("destination trace");
    let planner = TemporalPlanner::new(series);
    let start = year_start(year);
    let count = hours_in_year(year);
    let baseline = planner.baseline_sweep(start, count, slots);
    let deferred = planner.deferral_sweep(start, count, slots, slack);
    let temporal_g = baseline
        .iter()
        .zip(&deferred)
        .map(|(b, d)| (b - d) / slots as f64)
        .sum::<f64>()
        / count as f64;
    let dest_mean = series
        .window(start, count)
        // decarb-analyze: allow(no-panic) -- figure harness: whole-year windows over full-year builtin traces
        .expect("year within horizon")
        .iter()
        .sum::<f64>()
        / count as f64;
    CombinedBreakdown {
        destination: destination.code.clone(),
        spatial_g: GLOBAL_AVG_CI - dest_mean,
        temporal_g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;
    use decarb_traces::catalog::region;

    #[test]
    fn sweden_dominated_by_spatial() {
        let set = builtin_dataset();
        let breakdown = combined_shift(&set, region("SE").unwrap(), 2022, 24, 24);
        assert!(
            breakdown.spatial_g > 300.0,
            "spatial {}",
            breakdown.spatial_g
        );
        assert!(breakdown.temporal_g >= 0.0);
        assert!(breakdown.net_g() > 300.0);
        assert_eq!(breakdown.destination, "SE");
    }

    #[test]
    fn dirty_destination_has_negative_net() {
        // Fig. 12: migrating to Utah (US-UT, coal) costs more carbon than
        // it saves, despite any temporal savings there.
        let set = builtin_dataset();
        let breakdown = combined_shift(&set, region("US-UT").unwrap(), 2022, 24, 24);
        assert!(breakdown.spatial_g < 0.0);
        assert!(breakdown.net_g() < 0.0, "net {}", breakdown.net_g());
    }

    #[test]
    fn temporal_component_nonnegative_and_bounded() {
        let set = builtin_dataset();
        for code in ["US-CA", "DE", "IN-WE"] {
            let b = combined_shift(&set, region(code).unwrap(), 2022, 24, 24);
            assert!(b.temporal_g >= 0.0, "{code}");
            assert!(
                b.temporal_g < 200.0,
                "{code} temporal {} implausibly large",
                b.temporal_g
            );
        }
    }

    #[test]
    fn longer_slack_does_not_reduce_temporal() {
        let set = builtin_dataset();
        let short = combined_shift(&set, region("US-CA").unwrap(), 2022, 24, 24);
        let long = combined_shift(&set, region("US-CA").unwrap(), 2022, 24, 24 * 14);
        assert!(long.temporal_g >= short.temporal_g - 1e-9);
        // Spatial component is slack-independent.
        assert!((long.spatial_g - short.spatial_g).abs() < 1e-9);
    }
}
