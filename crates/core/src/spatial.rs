//! Spatial workload shifting: 1-migration and ∞-migration (§3.2.2, §5.1).
//!
//! * **1-migration** moves a job once, to the candidate region with the
//!   lowest annual mean carbon-intensity, and runs it there to completion.
//!   This is the paper's default policy — historical annual averages are
//!   stable, so the destination can be chosen offline.
//! * **∞-migration** is the clairvoyant upper bound: every hour the job
//!   hops (at zero cost) to the instantaneously greenest candidate. Its
//!   cost is the window sum of the candidates' *lower envelope*.
//!
//! §5.1.4's key result is that the two differ by < 10 g·CO2eq: region
//! rank order rarely changes, so a single migration captures nearly all of
//! the benefit.

use decarb_traces::{Hour, Region, TimeSeries, TraceSet};

use crate::temporal::TemporalPlanner;

/// Outcome of a spatial placement.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialOutcome {
    /// Zone code of the chosen destination (for 1-migration) or the
    /// region where the job starts (for ∞-migration).
    pub destination: String,
    /// Carbon cost of the job in g·CO2eq.
    pub cost_g: f64,
}

/// Chooses the 1-migration destination: the candidate with the lowest
/// annual mean CI in `year`.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn one_migration_destination<'a>(
    set: &TraceSet,
    candidates: &[&'a Region],
    year: i32,
) -> &'a Region {
    assert!(!candidates.is_empty(), "candidate set must be non-empty");
    let means = set.annual_means(year);
    candidates
        .iter()
        .min_by(|a, b| {
            let ma = means
                .iter()
                .find(|(r, _)| r.code == a.code)
                .map(|(_, m)| *m);
            let mb = means
                .iter()
                .find(|(r, _)| r.code == b.code)
                .map(|(_, m)| *m);
            ma.unwrap_or(f64::INFINITY)
                .total_cmp(&mb.unwrap_or(f64::INFINITY))
        })
        .copied()
        // decarb-analyze: allow(no-panic) -- asserted non-empty candidate set at fn entry
        .expect("non-empty candidates")
}

/// Runs a job under the 1-migration policy.
pub fn one_migration(
    set: &TraceSet,
    candidates: &[&Region],
    year: i32,
    arrival: Hour,
    slots: usize,
) -> SpatialOutcome {
    let dest = one_migration_destination(set, candidates, year);
    // decarb-analyze: allow(no-panic) -- destination was selected from the same dataset two lines up
    let series = set.series(&dest.code).expect("destination trace exists");
    let cost = series.prefix_sum().sum(arrival, slots);
    SpatialOutcome {
        destination: dest.code.clone(),
        cost_g: cost,
    }
}

/// Builds the per-hour lower envelope of the candidates' traces over
/// `[from, from + len)` — the trace seen by a clairvoyant ∞-migration job.
///
/// # Panics
///
/// Panics if `candidates` is empty or a window is out of range.
// decarb-analyze: hot-path
pub fn lower_envelope(
    set: &TraceSet,
    candidates: &[&Region],
    from: Hour,
    len: usize,
) -> TimeSeries {
    assert!(!candidates.is_empty(), "candidate set must be non-empty");
    let mut env = vec![f64::INFINITY; len];
    for region in candidates {
        // decarb-analyze: allow(no-panic) -- figure harness: candidates are drawn from the dataset
        let series = set.series(&region.code).expect("candidate trace exists");
        let window = series
            .window(from, len)
            // decarb-analyze: allow(no-panic) -- figure harness: envelope windows stay inside the trace year
            .expect("candidate trace covers window");
        for (e, &v) in env.iter_mut().zip(window) {
            *e = e.min(v);
        }
    }
    TimeSeries::new(from, env)
}

/// Runs a job under the clairvoyant ∞-migration policy, returning its
/// cost and the number of migrations performed (changes of argmin region
/// between consecutive hours).
// decarb-analyze: hot-path
pub fn inf_migration(
    set: &TraceSet,
    candidates: &[&Region],
    arrival: Hour,
    slots: usize,
) -> (SpatialOutcome, usize) {
    assert!(!candidates.is_empty(), "candidate set must be non-empty");
    let mut cost = 0.0;
    let mut migrations = 0usize;
    let mut current: Option<&str> = None;
    let mut first: &str = &candidates[0].code;
    for i in 0..slots {
        let hour = arrival.plus(i);
        let (code, value) = candidates
            .iter()
            .map(|r| {
                let v = set
                    .series(&r.code)
                    // decarb-analyze: allow(no-panic) -- figure harness: candidates are drawn from the dataset
                    .expect("candidate trace exists")
                    .get(hour);
                (r.code.as_str(), v)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // decarb-analyze: allow(no-panic) -- asserted non-empty candidate set at fn entry
            .expect("non-empty candidates");
        cost += value;
        match current {
            None => {
                first = code;
                current = Some(code);
            }
            Some(prev) if prev != code => {
                migrations += 1;
                current = Some(code);
            }
            _ => {}
        }
    }
    (
        SpatialOutcome {
            // decarb-analyze: allow(hot-path) -- one allocation building the return value, after the hourly loop
            destination: first.to_string(),
            cost_g: cost,
        },
        migrations,
    )
}

/// Builds a [`TemporalPlanner`] over the candidates' lower envelope,
/// enabling combined spatial+temporal sweeps (∞-migration plus deferral).
pub fn envelope_planner(
    set: &TraceSet,
    candidates: &[&Region],
    from: Hour,
    len: usize,
) -> TemporalPlanner {
    TemporalPlanner::new(&lower_envelope(set, candidates, from, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::time::year_start;
    use decarb_traces::{builtin_dataset, GeoGroup};

    #[test]
    fn one_migration_picks_sweden_globally() {
        let set = builtin_dataset();
        let all: Vec<&Region> = set.regions().iter().collect();
        let dest = one_migration_destination(&set, &all, 2022);
        assert_eq!(dest.code, "SE");
        let outcome = one_migration(&set, &all, 2022, year_start(2022), 24);
        assert_eq!(outcome.destination, "SE");
        // A day in Sweden costs ≈ 24 × 16 g.
        assert!(outcome.cost_g < 24.0 * 40.0, "cost {}", outcome.cost_g);
    }

    #[test]
    fn one_migration_respects_candidate_set() {
        let set = builtin_dataset();
        let asia = set.regions_in_group(GeoGroup::Asia);
        let dest = one_migration_destination(&set, &asia, 2022);
        assert_eq!(dest.group, GeoGroup::Asia);
        // China Southwest (hydro-heavy) is Asia's greenest zone.
        assert_eq!(dest.code, "CN-SW");
    }

    #[test]
    fn envelope_is_pointwise_minimum() {
        let set = builtin_dataset();
        let candidates: Vec<&Region> = set
            .regions()
            .iter()
            .filter(|r| ["SE", "PL", "DE"].contains(&r.code.as_str()))
            .collect();
        let from = year_start(2022);
        let env = lower_envelope(&set, &candidates, from, 100);
        for i in 0..100 {
            let hour = from.plus(i);
            let min = candidates
                .iter()
                .map(|r| set.series(&r.code).unwrap().get(hour))
                .fold(f64::INFINITY, f64::min);
            assert!((env.get(hour) - min).abs() < 1e-12);
        }
    }

    #[test]
    fn inf_migration_cost_equals_envelope_sum() {
        let set = builtin_dataset();
        let candidates: Vec<&Region> = set
            .regions()
            .iter()
            .filter(|r| ["US-CA", "US-WA", "CA-ON"].contains(&r.code.as_str()))
            .collect();
        let from = year_start(2022);
        let slots = 168;
        let (outcome, migrations) = inf_migration(&set, &candidates, from, slots);
        let env = lower_envelope(&set, &candidates, from, slots);
        let env_sum: f64 = env.values().iter().sum();
        assert!((outcome.cost_g - env_sum).abs() < 1e-9);
        // Hopping more often than once an hour is impossible.
        assert!(migrations < slots);
    }

    #[test]
    fn inf_never_worse_than_one_migration() {
        let set = builtin_dataset();
        let europe = set.regions_in_group(GeoGroup::Europe);
        let from = year_start(2022);
        for offset in [0usize, 1000, 5000] {
            let arrival = from.plus(offset);
            let one = one_migration(&set, &europe, 2022, arrival, 48);
            let (inf, _) = inf_migration(&set, &europe, arrival, 48);
            assert!(inf.cost_g <= one.cost_g + 1e-9);
        }
    }

    #[test]
    fn envelope_planner_supports_deferral() {
        let set = builtin_dataset();
        let all: Vec<&Region> = set.regions().iter().collect();
        let from = year_start(2022);
        let planner = envelope_planner(&set, &all, from, 2000);
        let baseline = planner.baseline_cost(from, 24);
        let deferred = planner.best_deferred(from, 24, 1000).cost_g;
        assert!(deferred <= baseline);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_candidates_panic() {
        let set = builtin_dataset();
        let _ = lower_envelope(&set, &[], year_start(2022), 10);
    }
}
