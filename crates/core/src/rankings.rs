//! Rank-order stability of regional carbon-intensity (§5.1.4's premise).
//!
//! The paper's case against sophisticated migration policies is that
//! "regions' carbon-intensity maintains the same rank order most of the
//! time": if the instantaneous ranking rarely deviates from the annual
//! ranking, migrating once to the annually-greenest region already
//! captures (almost) everything, which Fig. 6(b) then confirms in carbon
//! terms. This module quantifies the premise itself: Kendall's τ between
//! each hour's ranking and the annual-mean ranking, how often the
//! instantaneous greenest region is the annual greenest, and how much of
//! the instantaneous top-k set the annual top-k covers.

use decarb_stats::rank::kendall_tau;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::TraceSet;

/// Rank-stability statistics over one year.
#[derive(Debug, Clone)]
pub struct RankStability {
    /// Mean Kendall's τ between hourly rankings and the annual ranking.
    pub mean_tau: f64,
    /// Worst sampled hour's τ.
    pub min_tau: f64,
    /// Fraction of sampled hours whose instantaneous greenest region is
    /// the annual greenest.
    pub greenest_match: f64,
    /// Mean overlap between the instantaneous and annual top-`k` sets,
    /// as a fraction of `k`.
    pub topk_overlap: f64,
    /// The `k` used for the overlap statistic.
    pub k: usize,
    /// Number of hours sampled.
    pub samples: usize,
}

/// Indices of the `k` smallest entries of `values`.
fn smallest_k(values: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

/// Measures rank stability for `year`, sampling every `stride`-th hour.
///
/// # Examples
///
/// ```
/// use decarb_core::rankings::rank_stability;
/// use decarb_traces::builtin_dataset;
///
/// let data = builtin_dataset();
/// let s = rank_stability(&data, 2022, 500, 5);
/// assert!(s.mean_tau > 0.8); // §5.1.4: rankings barely move.
/// ```
///
/// # Panics
///
/// Panics if the dataset holds fewer than two regions, `stride` is zero,
/// or `k` exceeds the region count.
pub fn rank_stability(set: &TraceSet, year: i32, stride: usize, k: usize) -> RankStability {
    assert!(set.len() >= 2, "need at least two regions to rank");
    assert!(stride > 0, "stride must be positive");
    assert!(k <= set.len(), "top-k cannot exceed the region count");
    let annual: Vec<f64> = set.annual_means(year).iter().map(|&(_, m)| m).collect();
    let annual_topk = smallest_k(&annual, k);
    let annual_greenest = annual_topk[0];

    let start = year_start(year);
    let hours = hours_in_year(year);
    let mut tau_sum = 0.0;
    let mut min_tau = f64::INFINITY;
    let mut greenest_hits = 0usize;
    let mut overlap_sum = 0usize;
    let mut samples = 0usize;
    let mut offset = 0usize;
    while offset < hours {
        let hour = start.plus(offset);
        let now: Vec<f64> = set.iter().map(|(_, series)| series.get(hour)).collect();
        // `kendall_tau` is None only for fewer than two regions, which
        // the candidate sets never are; stop sampling if it happens.
        let Some(tau) = kendall_tau(&annual, &now) else {
            break;
        };
        tau_sum += tau;
        min_tau = min_tau.min(tau);
        let now_topk = smallest_k(&now, k);
        if now_topk[0] == annual_greenest {
            greenest_hits += 1;
        }
        overlap_sum += now_topk.iter().filter(|i| annual_topk.contains(i)).count();
        samples += 1;
        offset += stride;
    }

    RankStability {
        mean_tau: tau_sum / samples as f64,
        min_tau,
        greenest_match: greenest_hits as f64 / samples as f64,
        topk_overlap: overlap_sum as f64 / (samples * k) as f64,
        k,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;

    #[test]
    fn builtin_dataset_has_highly_stable_ranks() {
        let data = builtin_dataset();
        let s = rank_stability(&data, 2022, 97, 5);
        // The paper's premise: rankings barely move hour to hour.
        assert!(s.mean_tau > 0.8, "mean tau {}", s.mean_tau);
        assert!(s.min_tau > 0.5, "min tau {}", s.min_tau);
        assert!(
            s.greenest_match > 0.9,
            "greenest match {}",
            s.greenest_match
        );
        assert!(s.topk_overlap > 0.7, "top-5 overlap {}", s.topk_overlap);
        assert!(s.samples > 80);
    }

    #[test]
    fn smallest_k_orders_ascending() {
        let idx = smallest_k(&[5.0, 1.0, 3.0, 0.5], 3);
        assert_eq!(idx, vec![3, 1, 2]);
    }

    #[test]
    fn stride_controls_sample_count() {
        let data = builtin_dataset();
        let coarse = rank_stability(&data, 2022, 2000, 3);
        let fine = rank_stability(&data, 2022, 500, 3);
        assert!(fine.samples > coarse.samples);
        // Both agree on the headline story within a tolerance.
        assert!((fine.mean_tau - coarse.mean_tau).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let data = builtin_dataset();
        rank_stability(&data, 2022, 0, 3);
    }

    #[test]
    #[should_panic(expected = "top-k cannot exceed")]
    fn oversized_k_panics() {
        let data = builtin_dataset();
        rank_stability(&data, 2022, 1000, 500);
    }
}
