//! Suspend/resume overhead sensitivity (extension).
//!
//! The paper's interruptibility bound assumes zero overhead (§3.1.2); real
//! suspend/resume costs time and energy proportional to the job's memory
//! footprint. This module quantifies how a per-resume overhead erodes the
//! interruptibility benefit: the k-cheapest-hours schedule is costed with
//! an extra `overhead_g` for every contiguous segment beyond the first,
//! and falls back to plain deferral when fragmentation stops paying.

use decarb_traces::Hour;

use crate::temporal::TemporalPlanner;

/// An interruptible placement costed under a per-resume overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadPlacement {
    /// Total cost including overheads (g·CO2eq).
    pub cost_g: f64,
    /// Number of contiguous execution segments.
    pub segments: usize,
    /// `true` if the contiguous (deferral) schedule won.
    pub fell_back_to_contiguous: bool,
}

/// Counts the contiguous segments of an ascending hour list.
fn count_segments(hours: &[Hour]) -> usize {
    if hours.is_empty() {
        return 0;
    }
    1 + hours
        .windows(2)
        .filter(|pair| pair[1].0 != pair[0].0 + 1)
        .count()
}

/// Schedules an interruptible job under a per-resume overhead of
/// `overhead_g` grams (charged for every segment after the first).
///
/// Returns the cheaper of: the zero-overhead k-smallest schedule costed
/// with its fragmentation overheads, and the best contiguous window.
/// This is an upper bound on the true overhead-aware optimum (which could
/// trade a little carbon for less fragmentation), which is exactly the
/// direction the paper's bound analysis needs: if even this schedule loses
/// its advantage, so does the optimum. The returned cost is monotone in
/// `overhead_g` and capped at the deferral cost.
pub fn interruptible_with_overhead(
    planner: &TemporalPlanner,
    arrival: Hour,
    slots: usize,
    slack: usize,
    overhead_g: f64,
) -> OverheadPlacement {
    assert!(overhead_g >= 0.0, "overhead must be non-negative");
    let (hours, base_cost) = planner.best_interruptible(arrival, slots, slack);
    let segments = count_segments(&hours);
    let fragmented = base_cost + overhead_g * segments.saturating_sub(1) as f64;
    let contiguous = planner.best_deferred(arrival, slots, slack).cost_g;
    if contiguous <= fragmented {
        OverheadPlacement {
            cost_g: contiguous,
            segments: 1,
            fell_back_to_contiguous: true,
        }
    } else {
        OverheadPlacement {
            cost_g: fragmented,
            segments,
            fell_back_to_contiguous: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::TimeSeries;

    fn planner() -> TemporalPlanner {
        // Two deep valleys separated by a plateau.
        TemporalPlanner::new(&TimeSeries::new(
            Hour(0),
            vec![9.0, 1.0, 1.0, 9.0, 9.0, 9.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0],
        ))
    }

    #[test]
    fn zero_overhead_matches_plain_interruptible() {
        let p = planner();
        let placement = interruptible_with_overhead(&p, Hour(0), 4, 8, 0.0);
        let (_, expected) = p.best_interruptible(Hour(0), 4, 8);
        assert!((placement.cost_g - expected).abs() < 1e-12);
        assert_eq!(placement.segments, 2);
        assert!(!placement.fell_back_to_contiguous);
    }

    #[test]
    fn overhead_charged_per_resume() {
        let p = planner();
        // 4 slots across two 2-hour valleys: 1 resume → one overhead.
        let placement = interruptible_with_overhead(&p, Hour(0), 4, 8, 3.0);
        assert!((placement.cost_g - (4.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn large_overhead_falls_back_to_contiguous() {
        let p = planner();
        let placement = interruptible_with_overhead(&p, Hour(0), 4, 8, 100.0);
        assert!(placement.fell_back_to_contiguous);
        assert_eq!(placement.segments, 1);
        let contiguous = p.best_deferred(Hour(0), 4, 8).cost_g;
        assert!((placement.cost_g - contiguous).abs() < 1e-12);
    }

    #[test]
    fn cost_monotone_in_overhead() {
        let p = planner();
        let mut last = -1.0;
        for overhead in [0.0, 1.0, 2.0, 5.0, 20.0, 200.0] {
            let cost = interruptible_with_overhead(&p, Hour(0), 4, 8, overhead).cost_g;
            assert!(cost >= last - 1e-12);
            last = cost;
        }
        // Never exceeds the deferral cost.
        assert!(last <= p.best_deferred(Hour(0), 4, 8).cost_g + 1e-12);
    }

    #[test]
    fn segment_counting() {
        assert_eq!(count_segments(&[]), 0);
        assert_eq!(count_segments(&[Hour(3)]), 1);
        assert_eq!(count_segments(&[Hour(3), Hour(4), Hour(5)]), 1);
        assert_eq!(count_segments(&[Hour(3), Hour(5), Hour(6), Hour(9)]), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_overhead_panics() {
        interruptible_with_overhead(&planner(), Hour(0), 2, 4, -1.0);
    }
}
