//! A sliding multiset that tracks the sum of the k smallest elements.
//!
//! This is the kernel behind the interruptibility analysis (§3.2.1): an
//! interruptible job of length `k` scheduled within a window runs in the
//! `k` cheapest hours of that window, so sweeping all 8760 arrival times
//! requires the k-smallest sum of a sliding window. Maintaining two
//! ordered multisets (the k smallest in `low`, the rest in `high`) gives
//! O(log n) insert/remove instead of re-sorting every window.

use std::collections::BTreeMap;

/// Total-order wrapper for `f64` keys (uses IEEE total ordering).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A multiset of `f64` values supporting O(log n) insertion/removal and
/// O(1) queries of the sum of its `k` smallest elements.
#[derive(Debug, Clone)]
pub struct SlidingKSmallest {
    k: usize,
    /// The (up to) k smallest elements.
    low: BTreeMap<OrdF64, usize>,
    low_len: usize,
    low_sum: f64,
    /// Everything else.
    high: BTreeMap<OrdF64, usize>,
    high_len: usize,
}

impl SlidingKSmallest {
    /// Creates an empty structure tracking the `k` smallest elements.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            low: BTreeMap::new(),
            low_len: 0,
            low_sum: 0.0,
            high: BTreeMap::new(),
            high_len: 0,
        }
    }

    /// Returns the number of stored elements.
    pub fn len(&self) -> usize {
        self.low_len + self.high_len
    }

    /// Returns `true` if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the tracked `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the sum of the `min(k, len)` smallest elements.
    ///
    /// The sum is maintained incrementally; for very long sweeps the
    /// accumulated floating-point error stays negligible because elements
    /// are added and subtracted at the same magnitude.
    pub fn k_sum(&self) -> f64 {
        self.low_sum
    }

    /// Inserts `value` into the multiset.
    pub fn insert(&mut self, value: f64) {
        let key = OrdF64(value);
        if self.low_len < self.k {
            *self.low.entry(key).or_insert(0) += 1;
            self.low_len += 1;
            self.low_sum += value;
        } else {
            // Compare against the current k-th smallest (max of `low`).
            // decarb-analyze: allow(no-panic) -- two-heap invariant: low_len == k > 0 on this branch
            let max_low = *self.low.keys().next_back().expect("low is non-empty");
            if key < max_low {
                // Evict the largest of `low` into `high`.
                remove_one(&mut self.low, max_low);
                self.low_len -= 1;
                self.low_sum -= max_low.0;
                *self.high.entry(max_low).or_insert(0) += 1;
                self.high_len += 1;
                *self.low.entry(key).or_insert(0) += 1;
                self.low_len += 1;
                self.low_sum += value;
            } else {
                *self.high.entry(key).or_insert(0) += 1;
                self.high_len += 1;
            }
        }
    }

    /// Removes one occurrence of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not present (callers control the window and
    /// only remove elements they previously inserted).
    pub fn remove(&mut self, value: f64) {
        let key = OrdF64(value);
        if self.low.contains_key(&key) {
            remove_one(&mut self.low, key);
            self.low_len -= 1;
            self.low_sum -= value;
            // Refill `low` from the smallest of `high`.
            if self.low_len < self.k && self.high_len > 0 {
                // decarb-analyze: allow(no-panic) -- two-heap invariant: high_len > 0 checked in the enclosing condition
                let min_high = *self.high.keys().next().expect("high is non-empty");
                remove_one(&mut self.high, min_high);
                self.high_len -= 1;
                *self.low.entry(min_high).or_insert(0) += 1;
                self.low_len += 1;
                self.low_sum += min_high.0;
            }
        } else if self.high.contains_key(&key) {
            remove_one(&mut self.high, key);
            self.high_len -= 1;
        } else {
            // decarb-analyze: allow(no-panic) -- documented contract: removing a value that was never inserted is a caller bug
            panic!("remove of absent value {value}");
        }
    }
}

fn remove_one(map: &mut BTreeMap<OrdF64, usize>, key: OrdF64) {
    match map.get_mut(&key) {
        Some(count) if *count > 1 => *count -= 1,
        Some(_) => {
            map.remove(&key);
        }
        None => unreachable!("caller checked presence"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: sort and sum the first k.
    fn naive_k_sum(values: &[f64], k: usize) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted.iter().take(k).sum()
    }

    #[test]
    fn tracks_k_smallest_sum() {
        let mut s = SlidingKSmallest::new(3);
        for v in [5.0, 1.0, 4.0, 2.0, 8.0] {
            s.insert(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.k_sum() - 7.0).abs() < 1e-12); // 1 + 2 + 4
    }

    #[test]
    fn fewer_than_k_sums_all() {
        let mut s = SlidingKSmallest::new(10);
        s.insert(3.0);
        s.insert(4.0);
        assert!((s.k_sum() - 7.0).abs() < 1e-12);
        assert!(!s.is_empty());
        assert_eq!(s.k(), 10);
    }

    #[test]
    fn removal_refills_from_high() {
        let mut s = SlidingKSmallest::new(2);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.insert(v);
        }
        assert!((s.k_sum() - 3.0).abs() < 1e-12); // 1 + 2
        s.remove(1.0);
        assert!((s.k_sum() - 5.0).abs() < 1e-12); // 2 + 3
        s.remove(3.0);
        assert!((s.k_sum() - 6.0).abs() < 1e-12); // 2 + 4
        s.remove(2.0);
        assert!((s.k_sum() - 4.0).abs() < 1e-12); // 4
        s.remove(4.0);
        assert_eq!(s.k_sum(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn duplicates_handled() {
        let mut s = SlidingKSmallest::new(2);
        for v in [2.0, 2.0, 2.0] {
            s.insert(v);
        }
        assert!((s.k_sum() - 4.0).abs() < 1e-12);
        s.remove(2.0);
        assert!((s.k_sum() - 4.0).abs() < 1e-12);
        s.remove(2.0);
        assert!((s.k_sum() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_matches_naive() {
        // Deterministic pseudo-random walk.
        let mut x = 42u64;
        let values: Vec<f64> = (0..500)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 1000) as f64 / 10.0
            })
            .collect();
        let k = 6;
        let window = 48;
        let mut s = SlidingKSmallest::new(k);
        for i in 0..values.len() {
            s.insert(values[i]);
            if i >= window {
                s.remove(values[i - window]);
            }
            if i + 1 >= window {
                let lo = i + 1 - window;
                let expected = naive_k_sum(&values[lo..=i], k);
                assert!(
                    (s.k_sum() - expected).abs() < 1e-9,
                    "window at {i}: {} vs {expected}",
                    s.k_sum()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "absent value")]
    fn removing_absent_panics() {
        let mut s = SlidingKSmallest::new(2);
        s.insert(1.0);
        s.remove(2.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        SlidingKSmallest::new(0);
    }
}
