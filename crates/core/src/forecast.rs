//! Scheduling under carbon-forecast error (§6.2).
//!
//! The paper's upper bounds assume perfect future knowledge; this module
//! quantifies how much a uniform multiplicative forecast error erodes
//! them. A schedule is chosen against the *erroneous* trace, its emissions
//! are accounted against the *true* trace, and the increase is reported
//! relative to error-free scheduling.

use decarb_traces::rng::Xoshiro256;
use decarb_traces::{Hour, TimeSeries};

use crate::temporal::TemporalPlanner;

/// Applies a uniform multiplicative error to a trace: each hourly sample
/// is scaled by `1 + u` with `u ~ U(−error, +error)`.
///
/// # Panics
///
/// Panics if `error` is negative or ≥ 1 (a 100 % error can make
/// carbon-intensity non-positive).
pub fn with_uniform_error(series: &TimeSeries, error: f64, seed: u64) -> TimeSeries {
    assert!(
        (0.0..1.0).contains(&error),
        "forecast error must be in [0, 1)"
    );
    let mut rng = Xoshiro256::seeded(seed);
    let values = series
        .values()
        .iter()
        .map(|&v| v * (1.0 + rng.uniform_in(-error, error)))
        .collect();
    TimeSeries::new(series.start(), values)
}

/// Impact of one forecast-error level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorImpact {
    /// The injected uniform error magnitude (e.g. 0.5 for ±50 %).
    pub error: f64,
    /// Emission increase of temporal scheduling vs error-free, in percent.
    pub temporal_increase_pct: f64,
    /// Emission increase of spatial (∞-migration) scheduling vs
    /// error-free, in percent.
    pub spatial_increase_pct: f64,
}

/// Quantifies the temporal-scheduling emission increase for one region.
///
/// For every arrival in the sweep, a deferred placement is chosen on the
/// erroneous trace and paid for on the true trace; the total is compared
/// with placements chosen on the true trace.
pub fn temporal_increase_pct(
    truth: &TimeSeries,
    erroneous: &TimeSeries,
    sweep_start: Hour,
    count: usize,
    slots: usize,
    slack: usize,
    stride: usize,
) -> f64 {
    let truth_planner = TemporalPlanner::new(truth);
    let err_planner = TemporalPlanner::new(erroneous);
    let truth_prefix = truth.prefix_sum();
    let mut with_error = 0.0;
    let mut without_error = 0.0;
    let mut a = 0usize;
    while a < count {
        let arrival = sweep_start.plus(a);
        let chosen = err_planner.best_deferred(arrival, slots, slack).start;
        with_error += truth_prefix.sum(chosen, slots);
        without_error += truth_planner.best_deferred(arrival, slots, slack).cost_g;
        a += stride.max(1);
    }
    if without_error <= 0.0 {
        0.0
    } else {
        (with_error - without_error) / without_error * 100.0
    }
}

/// Quantifies the spatial (∞-migration) emission increase across a set of
/// candidate traces: at each hour the region picked as greenest on the
/// erroneous traces is paid at its true CI, compared with the true
/// per-hour minimum.
pub fn spatial_increase_pct(
    truths: &[&TimeSeries],
    erroneous: &[&TimeSeries],
    from: Hour,
    len: usize,
) -> f64 {
    assert_eq!(
        truths.len(),
        erroneous.len(),
        "trace sets must align one-to-one"
    );
    assert!(!truths.is_empty(), "candidate set must be non-empty");
    let mut with_error = 0.0;
    let mut without_error = 0.0;
    for i in 0..len {
        let hour = from.plus(i);
        let Some(chosen) = (0..erroneous.len())
            .min_by(|&a, &b| erroneous[a].get(hour).total_cmp(&erroneous[b].get(hour)))
        else {
            break;
        };
        with_error += truths[chosen].get(hour);
        without_error += truths
            .iter()
            .map(|t| t.get(hour))
            .fold(f64::INFINITY, f64::min);
    }
    if without_error <= 0.0 {
        0.0
    } else {
        (with_error - without_error) / without_error * 100.0
    }
}

/// Convenience bundle: computes [`ErrorImpact`] for one region's temporal
/// scheduling and a candidate set's spatial scheduling at one error level.
#[allow(clippy::too_many_arguments)]
pub fn forecast_error_impact(
    truth: &TimeSeries,
    candidates: &[&TimeSeries],
    error: f64,
    seed: u64,
    sweep_start: Hour,
    count: usize,
    slots: usize,
    slack: usize,
    stride: usize,
) -> ErrorImpact {
    let err_trace = with_uniform_error(truth, error, seed);
    let temporal =
        temporal_increase_pct(truth, &err_trace, sweep_start, count, slots, slack, stride);
    let err_candidates: Vec<TimeSeries> = candidates
        .iter()
        .enumerate()
        .map(|(i, t)| with_uniform_error(t, error, seed.wrapping_add(i as u64 + 1)))
        .collect();
    let err_refs: Vec<&TimeSeries> = err_candidates.iter().collect();
    let spatial = spatial_increase_pct(candidates, &err_refs, sweep_start, count);
    ErrorImpact {
        error,
        temporal_increase_pct: temporal,
        spatial_increase_pct: spatial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize, phase: f64) -> TimeSeries {
        let values = (0..n)
            .map(|t| 300.0 + 120.0 * (std::f64::consts::TAU * t as f64 / 24.0 + phase).sin())
            .collect();
        TimeSeries::new(Hour(0), values)
    }

    #[test]
    fn error_bounds_respected() {
        let truth = wave(500, 0.0);
        let noisy = with_uniform_error(&truth, 0.3, 42);
        for ((_, t), (_, e)) in truth.iter().zip(noisy.iter()) {
            assert!(e >= t * 0.7 - 1e-9 && e <= t * 1.3 + 1e-9);
        }
        assert_eq!(noisy.start(), truth.start());
    }

    #[test]
    fn zero_error_changes_nothing() {
        let truth = wave(200, 0.0);
        let same = with_uniform_error(&truth, 0.0, 1);
        for ((_, a), (_, b)) in truth.iter().zip(same.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        let pct = temporal_increase_pct(&truth, &same, Hour(0), 100, 2, 48, 1);
        assert!(pct.abs() < 1e-9);
    }

    #[test]
    fn temporal_increase_nonnegative_and_grows() {
        let truth = wave(24 * 40, 0.0);
        let small = with_uniform_error(&truth, 0.1, 7);
        let large = with_uniform_error(&truth, 0.6, 7);
        let p_small = temporal_increase_pct(&truth, &small, Hour(0), 500, 4, 72, 3);
        let p_large = temporal_increase_pct(&truth, &large, Hour(0), 500, 4, 72, 3);
        assert!(p_small >= -1e-9, "small {p_small}");
        assert!(
            p_large >= p_small - 0.5,
            "large {p_large} vs small {p_small}"
        );
        assert!(p_large > 0.0);
    }

    #[test]
    fn spatial_increase_zero_without_error() {
        let a = wave(300, 0.0);
        let b = wave(300, 1.5);
        let truths = vec![&a, &b];
        let pct = spatial_increase_pct(&truths, &truths, Hour(0), 300);
        assert!(pct.abs() < 1e-12);
    }

    #[test]
    fn spatial_increase_positive_with_error() {
        let a = wave(600, 0.0);
        let b = wave(600, 1.5);
        let ea = with_uniform_error(&a, 0.5, 3);
        let eb = with_uniform_error(&b, 0.5, 4);
        let pct = spatial_increase_pct(&[&a, &b], &[&ea, &eb], Hour(0), 600);
        assert!(pct > 0.0, "pct {pct}");
        // Picking the wrong region occasionally cannot more than double
        // emissions for these bounded waves.
        assert!(pct < 60.0, "pct {pct}");
    }

    #[test]
    fn bundle_produces_consistent_impact() {
        let truth = wave(24 * 30, 0.0);
        let other = wave(24 * 30, 2.0);
        let impact =
            forecast_error_impact(&truth, &[&truth, &other], 0.4, 11, Hour(0), 200, 2, 48, 5);
        assert_eq!(impact.error, 0.4);
        assert!(impact.temporal_increase_pct >= 0.0);
        assert!(impact.spatial_increase_pct >= 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn error_of_one_panics() {
        with_uniform_error(&wave(10, 0.0), 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "one-to-one")]
    fn mismatched_sets_panic() {
        let a = wave(10, 0.0);
        spatial_increase_pct(&[&a], &[], Hour(0), 5);
    }
}
