//! Flexible datacenter load as a grid resource (the paper's future work).
//!
//! The paper's conclusion argues that, rather than chasing the grid's
//! carbon-intensity signal, cloud platforms may be more effective as
//! *flexible load* that helps the grid absorb intermittent renewables.
//! This module quantifies that claim on the merit-order dispatch model of
//! [`decarb_traces::grid`]:
//!
//! * [`allocate_flexible`] — places a datacenter's flexible energy across
//!   a window to minimize true *system* emissions (greedy on consequential
//!   deltas, optimal for convex merit-order stacks up to step granularity);
//! * [`flat_allocation`] / [`allocate_by_average_ci`] — the carbon-agnostic
//!   and average-CI-guided baselines;
//! * [`consequential_emissions_kg`] — what a load *actually* adds to grid
//!   emissions, which the average-CI signal systematically misestimates
//!   whenever the marginal generator differs from the average mix (§2.1's
//!   average-vs-marginal discussion made quantitative).
//!
//! The canonical failure mode of average-CI scheduling falls out directly:
//! an hour with must-run coal plus curtailed wind has a *high* average CI
//! but a *zero-ish* marginal CI (new load soaks up curtailment), while a
//! clean-looking solar noon can sit on a gas margin. Scheduling by average
//! CI then moves load exactly the wrong way.

use decarb_traces::grid::Fleet;
use decarb_traces::Hour;

/// The outcome of allocating a flexible load across a window.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexAllocation {
    /// First hour of the window.
    pub start: Hour,
    /// Datacenter load placed in each hour, MW.
    pub per_hour_mw: Vec<f64>,
    /// Total system emissions over the window with the load placed, kg.
    pub system_kg: f64,
    /// System emissions the load itself is responsible for (system with
    /// load minus system without), kg.
    pub added_kg: f64,
    /// Curtailed renewable energy absorbed by the load, MWh (how much the
    /// placement reduced the grid's curtailment).
    pub absorbed_curtailment_mwh: f64,
}

impl FlexAllocation {
    /// Total energy placed, MWh.
    pub fn total_mwh(&self) -> f64 {
        self.per_hour_mw.iter().sum()
    }
}

/// Returns the grid's total emissions in kg over `[start, start+hours)`
/// with `extra_mw[i]` of additional load in hour `i`.
pub fn system_emissions_kg(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    extra_mw: &[f64],
) -> f64 {
    extra_mw
        .iter()
        .enumerate()
        .map(|(i, &extra)| {
            let hour = start.plus(i);
            fleet.dispatch(hour, demand_mw(hour) + extra).emissions_kg()
        })
        .sum()
}

/// Returns the emissions a load *adds* to the system, in kg: dispatch with
/// the load minus dispatch without it (consequential accounting).
pub fn consequential_emissions_kg(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    extra_mw: &[f64],
) -> f64 {
    let with = system_emissions_kg(fleet, &demand_mw, start, extra_mw);
    let without = system_emissions_kg(fleet, &demand_mw, start, &vec![0.0; extra_mw.len()]);
    with - without
}

/// Curtailed renewable energy over the window, MWh, with `extra_mw`
/// placed.
fn curtailment_mwh(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    extra_mw: &[f64],
) -> f64 {
    extra_mw
        .iter()
        .enumerate()
        .map(|(i, &extra)| {
            let hour = start.plus(i);
            fleet.dispatch(hour, demand_mw(hour) + extra).curtailed_mw
        })
        .sum()
}

fn finish(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    per_hour_mw: Vec<f64>,
) -> FlexAllocation {
    let hours = per_hour_mw.len();
    let system_kg = system_emissions_kg(fleet, &demand_mw, start, &per_hour_mw);
    let base_kg = system_emissions_kg(fleet, &demand_mw, start, &vec![0.0; hours]);
    let curtailed_before = curtailment_mwh(fleet, &demand_mw, start, &vec![0.0; hours]);
    let curtailed_after = curtailment_mwh(fleet, &demand_mw, start, &per_hour_mw);
    FlexAllocation {
        start,
        per_hour_mw,
        system_kg,
        added_kg: system_kg - base_kg,
        absorbed_curtailment_mwh: curtailed_before - curtailed_after,
    }
}

/// Spreads `total_mwh` evenly over the window (the carbon-agnostic
/// baseline a constantly-drawing datacenter represents).
///
/// # Panics
///
/// Panics if `hours` is zero.
pub fn flat_allocation(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    hours: usize,
    total_mwh: f64,
) -> FlexAllocation {
    assert!(hours > 0, "window must be non-empty");
    let per_hour = vec![total_mwh / hours as f64; hours];
    finish(fleet, demand_mw, start, per_hour)
}

/// Allocates `total_mwh` greedily to the hours with the lowest *average*
/// CI (the signal carbon-information services publish), respecting the
/// per-hour power cap.
///
/// This is what an average-CI-driven scheduler does; on grids where the
/// margin diverges from the average it misplaces load (see module docs).
///
/// # Panics
///
/// Panics if `hours` is zero, or `cap_mw × hours` cannot fit `total_mwh`.
pub fn allocate_by_average_ci(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    hours: usize,
    total_mwh: f64,
    cap_mw: f64,
) -> FlexAllocation {
    assert!(hours > 0, "window must be non-empty");
    assert!(
        cap_mw * hours as f64 >= total_mwh - 1e-9,
        "cap too small to place the energy"
    );
    // Rank hours by the average CI of the grid *before* our load. Hours
    // whose fleet cannot serve extra load (shortfall) are infeasible: a
    // datacenter cannot draw power the grid does not have.
    let mut ranked: Vec<(usize, f64, f64)> = (0..hours)
        .map(|i| {
            let hour = start.plus(i);
            let headroom = fleet.available_capacity_mw(hour) - demand_mw(hour);
            (
                i,
                fleet.dispatch(hour, demand_mw(hour)).average_ci,
                headroom,
            )
        })
        .filter(|&(_, _, headroom)| headroom > 0.0)
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut per_hour = vec![0.0; hours];
    let mut remaining = total_mwh;
    for (i, _, headroom) in ranked {
        if remaining <= 0.0 {
            break;
        }
        let take = cap_mw.min(remaining).min(headroom);
        per_hour[i] = take;
        remaining -= take;
    }
    assert!(
        remaining <= 1e-9,
        "insufficient grid headroom to place the energy"
    );
    finish(fleet, demand_mw, start, per_hour)
}

/// Allocates `total_mwh` to minimize true system emissions: repeatedly
/// place `step_mw` in the hour where it adds the least emissions
/// (consequential greedy).
///
/// Because each hour's emissions are convex and increasing in load under
/// merit-order dispatch, the greedy is optimal *among allocations in
/// multiples of `step_mw`* (standard exchange argument). Finer steps
/// approach the continuous optimum; when comparing against another
/// allocation, pick a step that divides its per-hour quantities, or the
/// coarse greedy can lose on piecewise-linear segment boundaries.
/// Hours whose fleet has no headroom (shortfall) receive no load — a
/// datacenter cannot draw power the grid does not have.
///
/// # Panics
///
/// Panics if `hours` is zero, `step_mw` is not positive, or
/// `cap_mw × hours` cannot fit `total_mwh`.
pub fn allocate_flexible(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    start: Hour,
    hours: usize,
    total_mwh: f64,
    cap_mw: f64,
    step_mw: f64,
) -> FlexAllocation {
    assert!(hours > 0, "window must be non-empty");
    assert!(step_mw > 0.0, "step must be positive");
    assert!(
        cap_mw * hours as f64 >= total_mwh - 1e-9,
        "cap too small to place the energy"
    );
    let base: Vec<f64> = (0..hours).map(|i| demand_mw(start.plus(i))).collect();
    // Grid headroom per hour: load beyond it would go unserved, which the
    // dispatch model would mis-account as free energy.
    let headroom: Vec<f64> = (0..hours)
        .map(|i| (fleet.available_capacity_mw(start.plus(i)) - base[i]).max(0.0))
        .collect();
    let mut per_hour = vec![0.0; hours];
    // Current emissions per hour, updated incrementally.
    let mut current_kg: Vec<f64> = (0..hours)
        .map(|i| fleet.dispatch(start.plus(i), base[i]).emissions_kg())
        .collect();
    let mut remaining = total_mwh;
    while remaining > 1e-9 {
        let step = step_mw.min(remaining);
        // Find the hour where adding `step` costs least.
        let mut best: Option<(usize, f64, f64)> = None; // (hour, delta, new_kg)
        for i in 0..hours {
            if per_hour[i] + step > cap_mw.min(headroom[i]) + 1e-9 {
                continue;
            }
            let new_kg = fleet
                .dispatch(start.plus(i), base[i] + per_hour[i] + step)
                .emissions_kg();
            let delta = new_kg - current_kg[i];
            if best.is_none_or(|(_, d, _)| delta < d) {
                best = Some((i, delta, new_kg));
            }
        }
        // decarb-analyze: allow(no-panic) -- documented precondition; silently misplacing energy would corrupt the figure
        let (i, _, new_kg) = best.expect("insufficient grid headroom to place the energy");
        per_hour[i] += step;
        current_kg[i] = new_kg;
        remaining -= step;
    }
    finish(fleet, demand_mw, start, per_hour)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::grid::{solar_availability, Generator};
    use decarb_traces::mix::Source;

    /// Night wind (often curtailed against must-run coal), solar noon on a
    /// gas margin: the canonical grid where average and marginal CI
    /// disagree.
    fn disagreement_fleet() -> Fleet {
        fn night_wind(hour: Hour) -> f64 {
            let h = hour.hour_of_day();
            if !(6..20).contains(&h) {
                1.0
            } else {
                0.1
            }
        }
        Fleet::new(vec![
            Generator {
                name: "must-run coal",
                source: Source::Coal,
                capacity_mw: 500.0,
                marginal_cost: -5.0,
                availability: None,
            },
            Generator {
                name: "wind",
                source: Source::Wind,
                capacity_mw: 400.0,
                marginal_cost: 0.0,
                availability: Some(night_wind),
            },
            Generator {
                name: "solar",
                source: Source::Solar,
                capacity_mw: 800.0,
                marginal_cost: 1.0,
                availability: Some(solar_availability),
            },
            Generator {
                name: "gas",
                source: Source::Gas,
                capacity_mw: 1200.0,
                marginal_cost: 40.0,
                availability: None,
            },
        ])
    }

    /// Demand: 800 MW at night (wind surplus → curtailment), 1400 MW by
    /// day (past the renewables → gas margin).
    fn disagreement_demand(hour: Hour) -> f64 {
        let h = hour.hour_of_day();
        if (8..20).contains(&h) {
            1400.0
        } else {
            800.0
        }
    }

    #[test]
    fn signals_disagree_on_the_crafted_grid() {
        let fleet = disagreement_fleet();
        let night = fleet.dispatch(Hour(2), disagreement_demand(Hour(2)));
        let noon = fleet.dispatch(Hour(12), disagreement_demand(Hour(12)));
        // Average CI prefers noon; marginal CI prefers night.
        assert!(noon.average_ci < night.average_ci, "avg prefers noon");
        assert!(night.marginal_ci < noon.marginal_ci, "margin prefers night");
        assert!(night.curtailed_mw > 0.0, "night wind is curtailed");
    }

    #[test]
    fn flexible_allocation_beats_flat_and_average_guided() {
        let fleet = disagreement_fleet();
        let demand = disagreement_demand;
        let (start, hours, energy, cap) = (Hour(0), 24, 1200.0, 100.0);
        let flexible = allocate_flexible(&fleet, demand, start, hours, energy, cap, 25.0);
        let flat = flat_allocation(&fleet, demand, start, hours, energy);
        let by_avg = allocate_by_average_ci(&fleet, demand, start, hours, energy, cap);
        assert!(flexible.added_kg <= flat.added_kg + 1e-6);
        assert!(flexible.added_kg <= by_avg.added_kg + 1e-6);
        // The average-CI signal sends load to gas-margin noon hours: it
        // must be strictly, substantially worse here.
        assert!(
            by_avg.added_kg > flexible.added_kg * 2.0,
            "avg-guided {} vs flexible {}",
            by_avg.added_kg,
            flexible.added_kg
        );
    }

    #[test]
    fn flexible_allocation_absorbs_curtailment() {
        let fleet = disagreement_fleet();
        let flexible =
            allocate_flexible(&fleet, disagreement_demand, Hour(0), 24, 800.0, 100.0, 25.0);
        assert!(
            flexible.absorbed_curtailment_mwh > 0.0,
            "absorbed {}",
            flexible.absorbed_curtailment_mwh
        );
        // Night hours (wind surplus) receive the load.
        let night_load: f64 = flexible.per_hour_mw[0..6].iter().sum::<f64>()
            + flexible.per_hour_mw[20..24].iter().sum::<f64>();
        assert!(
            night_load > flexible.total_mwh() * 0.9,
            "night load {night_load} of {}",
            flexible.total_mwh()
        );
    }

    #[test]
    fn allocations_conserve_energy() {
        let fleet = disagreement_fleet();
        for alloc in [
            flat_allocation(&fleet, disagreement_demand, Hour(0), 24, 600.0),
            allocate_by_average_ci(&fleet, disagreement_demand, Hour(0), 24, 600.0, 50.0),
            allocate_flexible(&fleet, disagreement_demand, Hour(0), 24, 600.0, 50.0, 10.0),
        ] {
            assert!((alloc.total_mwh() - 600.0).abs() < 1e-6);
            assert!(alloc.per_hour_mw.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn caps_are_respected() {
        let fleet = disagreement_fleet();
        let alloc = allocate_flexible(&fleet, disagreement_demand, Hour(0), 24, 1000.0, 60.0, 15.0);
        assert!(alloc.per_hour_mw.iter().all(|&v| v <= 60.0 + 1e-9));
        let by_avg = allocate_by_average_ci(&fleet, disagreement_demand, Hour(0), 24, 1000.0, 60.0);
        assert!(by_avg.per_hour_mw.iter().all(|&v| v <= 60.0 + 1e-9));
    }

    #[test]
    fn consequential_matches_added() {
        let fleet = disagreement_fleet();
        let alloc = flat_allocation(&fleet, disagreement_demand, Hour(0), 12, 300.0);
        let direct =
            consequential_emissions_kg(&fleet, disagreement_demand, Hour(0), &alloc.per_hour_mw);
        assert!((direct - alloc.added_kg).abs() < 1e-9);
    }

    #[test]
    fn zero_energy_allocation_is_free() {
        let fleet = disagreement_fleet();
        let alloc = allocate_flexible(&fleet, disagreement_demand, Hour(0), 24, 0.0, 10.0, 5.0);
        assert_eq!(alloc.added_kg, 0.0);
        assert_eq!(alloc.total_mwh(), 0.0);
        assert_eq!(alloc.absorbed_curtailment_mwh, 0.0);
    }

    #[test]
    fn shortfall_hours_receive_no_load() {
        // Shrink the gas fleet so day hours 18–19 (no solar, 1400 MW
        // demand) are short: a naive greedy would see "free" energy there.
        let fleet = Fleet::new(vec![
            Generator {
                name: "must-run coal",
                source: Source::Coal,
                capacity_mw: 500.0,
                marginal_cost: -5.0,
                availability: None,
            },
            Generator {
                name: "wind",
                source: Source::Wind,
                capacity_mw: 400.0,
                marginal_cost: 0.0,
                availability: Some(|hour: Hour| {
                    if !(6..20).contains(&hour.hour_of_day()) {
                        1.0
                    } else {
                        0.1
                    }
                }),
            },
            Generator {
                name: "gas",
                source: Source::Gas,
                capacity_mw: 800.0,
                marginal_cost: 40.0,
                availability: None,
            },
        ]);
        let alloc = allocate_flexible(&fleet, disagreement_demand, Hour(0), 24, 500.0, 100.0, 25.0);
        for (i, &mw) in alloc.per_hour_mw.iter().enumerate() {
            let hour = Hour(i as u32);
            let headroom = fleet.available_capacity_mw(hour) - disagreement_demand(hour);
            assert!(
                mw <= headroom.max(0.0) + 1e-9,
                "hour {i}: {mw} MW over headroom {headroom}"
            );
        }
        let by_avg = allocate_by_average_ci(&fleet, disagreement_demand, Hour(0), 24, 500.0, 100.0);
        assert!((by_avg.total_mwh() - 500.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cap too small")]
    fn infeasible_cap_panics() {
        let fleet = disagreement_fleet();
        allocate_flexible(&fleet, disagreement_demand, Hour(0), 4, 1000.0, 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_panics() {
        let fleet = disagreement_fleet();
        flat_allocation(&fleet, disagreement_demand, Hour(0), 0, 10.0);
    }
}
