//! The paper's carbon-reduction metrics (§3.1.3).

use decarb_traces::GLOBAL_AVG_CI;

/// Absolute carbon reduction in g·CO2eq: baseline emissions minus
/// emissions after shifting. Higher is better; negative means the shift
/// *increased* emissions.
#[inline]
pub fn absolute_reduction(baseline_g: f64, shifted_g: f64) -> f64 {
    baseline_g - shifted_g
}

/// Global average reduction: an absolute reduction expressed as a
/// percentage of the paper's global average carbon-intensity
/// (368.39 g·CO2eq/kWh).
#[inline]
pub fn relative_reduction(absolute_g: f64) -> f64 {
    absolute_g / GLOBAL_AVG_CI * 100.0
}

/// Normalizes a job's absolute reduction by its length, yielding
/// g·CO2eq per unit job hour (the y-axis of Figs. 7 and 8).
#[inline]
pub fn per_unit_job(absolute_g: f64, job_hours: f64) -> f64 {
    if job_hours <= 0.0 {
        0.0
    } else {
        absolute_g / job_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_is_difference() {
        assert_eq!(absolute_reduction(68.0, 55.0), 13.0);
        assert_eq!(absolute_reduction(50.0, 60.0), -10.0);
    }

    #[test]
    fn relative_uses_global_average() {
        // 368.39 g of absolute reduction is 100 % of the global average.
        assert!((relative_reduction(368.39) - 100.0).abs() < 1e-9);
        assert!((relative_reduction(184.195) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_fig2a() {
        // Fig. 2(a)'s toy example: deferring saves 13 of 68 units ≈ 19 %.
        let saved = absolute_reduction(68.0, 55.0);
        assert!((saved / 68.0 * 100.0 - 19.1).abs() < 0.5);
    }

    #[test]
    fn per_unit_job_normalization() {
        assert_eq!(per_unit_job(280.0, 2.0), 140.0);
        assert_eq!(per_unit_job(100.0, 0.0), 0.0);
    }
}
