//! Capacity-constrained spatial assignment (§5.1.2).
//!
//! The paper's constrained setting gives every region identical capacity
//! (normalized to 1) operating at a given idle fraction `f`: each region
//! carries local load `1 − f` and can absorb at most `f` of migrated load.
//! Migration is greedy rank-matching — the dirtiest region's load moves to
//! the greenest region with spare idle capacity, the second-dirtiest to
//! the next, and so on while the move still lowers emissions — which is
//! exactly the water-filling that maximizes total reduction under uniform
//! capacities.

use decarb_traces::Region;

/// Capacity regime for spatial assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdleCapacity {
    /// Unbounded recipients (§5.1.1's ideal case).
    Infinite,
    /// Every region has idle fraction `f ∈ [0, 1)` of its capacity free.
    Fraction(f64),
}

/// One migration decision: `amount` units of load move `from` → `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Donor zone code.
    pub from: String,
    /// Recipient zone code.
    pub to: String,
    /// Amount of load moved (capacity units).
    pub amount: f64,
}

/// Result of a capacity-constrained assignment.
#[derive(Debug, Clone)]
pub struct CapacityOutcome {
    /// Load-weighted average CI before migration (g·CO2eq/kWh).
    pub before_g: f64,
    /// Load-weighted average CI after migration.
    pub after_g: f64,
    /// Fraction of total load that migrated.
    pub moved_fraction: f64,
    /// Individual migration decisions.
    pub assignments: Vec<Assignment>,
    /// Per-region reduction in g·CO2eq per unit of the region's own load.
    pub per_region_reduction: Vec<(Region, f64)>,
}

impl CapacityOutcome {
    /// Returns the absolute global reduction in g·CO2eq per unit load.
    pub fn reduction_g(&self) -> f64 {
        self.before_g - self.after_g
    }
}

/// Runs the water-filling assignment over `(region, annual mean CI)`
/// pairs under the given capacity regime. `feasible(from, to)` restricts
/// destinations (geography, latency, regulation); a move is only made when
/// the recipient is strictly greener than the donor.
///
/// # Panics
///
/// Panics if `regions` is empty or a fractional idle capacity is outside
/// `[0, 1)`.
pub fn water_filling(
    regions: &[(&Region, f64)],
    idle: IdleCapacity,
    feasible: &dyn Fn(&Region, &Region) -> bool,
) -> CapacityOutcome {
    assert!(!regions.is_empty(), "region set must be non-empty");
    let (load_per_region, idle_per_region) = match idle {
        IdleCapacity::Infinite => (1.0, f64::INFINITY),
        IdleCapacity::Fraction(f) => {
            assert!((0.0..1.0).contains(&f), "idle fraction must be in [0, 1)");
            (1.0 - f, f)
        }
    };

    let n = regions.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Donors processed dirtiest-first.
    order.sort_by(|&a, &b| regions[b].1.total_cmp(&regions[a].1));
    // Recipients considered greenest-first.
    let mut recipients = order.clone();
    recipients.reverse();

    let mut idle_left = vec![idle_per_region; n];
    let mut assignments = Vec::new();
    let mut moved_total = 0.0;
    // Emissions of each donor's own load after assignment.
    let mut donor_emissions = vec![0.0f64; n];

    for &d in &order {
        let (donor, donor_mean) = regions[d];
        let mut remaining = load_per_region;
        for &r in &recipients {
            if remaining <= 0.0 {
                break;
            }
            if r == d {
                continue;
            }
            let (recipient, recipient_mean) = regions[r];
            if recipient_mean >= donor_mean {
                // Recipients are sorted ascending; nothing greener remains.
                break;
            }
            if idle_left[r] <= 0.0 || !feasible(donor, recipient) {
                continue;
            }
            let amount = remaining.min(idle_left[r]);
            idle_left[r] -= amount;
            remaining -= amount;
            moved_total += amount;
            donor_emissions[d] += amount * recipient_mean;
            assignments.push(Assignment {
                from: donor.code.clone(),
                to: recipient.code.clone(),
                amount,
            });
        }
        donor_emissions[d] += remaining * donor_mean;
    }

    let total_load = load_per_region * n as f64;
    let before_g = regions
        .iter()
        .map(|(_, m)| m * load_per_region)
        .sum::<f64>()
        / total_load;
    let after_g = donor_emissions.iter().sum::<f64>() / total_load;
    let per_region_reduction = (0..n)
        .map(|i| {
            let (region, mean) = regions[i];
            let own = if load_per_region > 0.0 {
                donor_emissions[i] / load_per_region
            } else {
                mean
            };
            (region.clone(), mean - own)
        })
        .collect();

    CapacityOutcome {
        before_g,
        after_g,
        moved_fraction: moved_total / total_load,
        assignments,
        per_region_reduction,
    }
}

/// Sweeps idle-capacity fractions and returns `(fraction, outcome)` pairs
/// (Fig. 5(c)).
pub fn idle_sweep(
    regions: &[(&Region, f64)],
    fractions: &[f64],
    feasible: &dyn Fn(&Region, &Region) -> bool,
) -> Vec<(f64, CapacityOutcome)> {
    fractions
        .iter()
        .map(|&f| {
            (
                f,
                water_filling(regions, IdleCapacity::Fraction(f), feasible),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::catalog::region;

    fn four_regions() -> Vec<(&'static Region, f64)> {
        // Arbitrary catalog regions carrying synthetic means.
        vec![
            (region("SE").unwrap(), 100.0),
            (region("DE").unwrap(), 200.0),
            (region("PL").unwrap(), 300.0),
            (region("IN-WE").unwrap(), 400.0),
        ]
    }

    fn all_feasible(_: &Region, _: &Region) -> bool {
        true
    }

    #[test]
    fn infinite_capacity_moves_everything_to_greenest() {
        let outcome = water_filling(&four_regions(), IdleCapacity::Infinite, &all_feasible);
        assert!((outcome.before_g - 250.0).abs() < 1e-9);
        assert!((outcome.after_g - 100.0).abs() < 1e-9);
        assert!((outcome.reduction_g() - 150.0).abs() < 1e-9);
        // Three of four regions migrate (the greenest stays).
        assert!((outcome.moved_fraction - 0.75).abs() < 1e-9);
        assert!(outcome.assignments.iter().all(|a| a.to == "SE"));
    }

    #[test]
    fn half_idle_rank_pairing() {
        let outcome = water_filling(&four_regions(), IdleCapacity::Fraction(0.5), &all_feasible);
        // Dirtiest (400) fills the greenest (100); 300 fills 200.
        assert!((outcome.before_g - 250.0).abs() < 1e-9);
        assert!((outcome.after_g - 150.0).abs() < 1e-9);
        assert!((outcome.moved_fraction - 0.5).abs() < 1e-9);
        assert_eq!(outcome.assignments.len(), 2);
        assert_eq!(outcome.assignments[0].from, "IN-WE");
        assert_eq!(outcome.assignments[0].to, "SE");
        assert_eq!(outcome.assignments[1].from, "PL");
        assert_eq!(outcome.assignments[1].to, "DE");
    }

    #[test]
    fn zero_idle_moves_nothing() {
        let outcome = water_filling(&four_regions(), IdleCapacity::Fraction(0.0), &all_feasible);
        assert_eq!(outcome.assignments.len(), 0);
        assert!((outcome.reduction_g()).abs() < 1e-9);
        assert_eq!(outcome.moved_fraction, 0.0);
    }

    #[test]
    fn reduction_monotone_in_idle_capacity() {
        let regions = four_regions();
        let sweep = idle_sweep(&regions, &[0.0, 0.25, 0.5, 0.75, 0.99], &all_feasible);
        let mut last = -1.0;
        for (f, outcome) in &sweep {
            assert!(
                outcome.reduction_g() >= last - 1e-9,
                "reduction not monotone at f={f}"
            );
            last = outcome.reduction_g();
        }
        // Near-complete idleness approaches the infinite-capacity bound.
        let inf = water_filling(&regions, IdleCapacity::Infinite, &all_feasible);
        let near = &sweep.last().unwrap().1;
        assert!(inf.reduction_g() - near.reduction_g() < 20.0);
    }

    #[test]
    fn load_is_conserved() {
        let outcome = water_filling(&four_regions(), IdleCapacity::Fraction(0.3), &all_feasible);
        let moved: f64 = outcome.assignments.iter().map(|a| a.amount).sum();
        assert!((moved / (0.7 * 4.0) - outcome.moved_fraction).abs() < 1e-9);
        // No recipient may exceed its idle capacity.
        for code in ["SE", "DE", "PL", "IN-WE"] {
            let received: f64 = outcome
                .assignments
                .iter()
                .filter(|a| a.to == code)
                .map(|a| a.amount)
                .sum();
            assert!(received <= 0.3 + 1e-9, "{code} over capacity");
        }
    }

    #[test]
    fn never_migrates_to_dirtier_region() {
        let outcome = water_filling(&four_regions(), IdleCapacity::Fraction(0.8), &all_feasible);
        let mean_of = |code: &str| {
            four_regions()
                .iter()
                .find(|(r, _)| r.code == code)
                .unwrap()
                .1
        };
        for a in &outcome.assignments {
            assert!(mean_of(&a.to) < mean_of(&a.from));
        }
    }

    #[test]
    fn feasibility_restricts_moves() {
        // Forbid any move into Sweden.
        let not_sweden = |_: &Region, to: &Region| to.code != "SE";
        let outcome = water_filling(&four_regions(), IdleCapacity::Fraction(0.5), &not_sweden);
        assert!(outcome.assignments.iter().all(|a| a.to != "SE"));
        let unrestricted =
            water_filling(&four_regions(), IdleCapacity::Fraction(0.5), &all_feasible);
        assert!(outcome.reduction_g() <= unrestricted.reduction_g() + 1e-9);
    }

    #[test]
    fn per_region_reduction_zero_for_greenest() {
        let outcome = water_filling(&four_regions(), IdleCapacity::Fraction(0.5), &all_feasible);
        let se = outcome
            .per_region_reduction
            .iter()
            .find(|(r, _)| r.code == "SE")
            .unwrap();
        assert!(se.1.abs() < 1e-9, "greenest region cannot improve");
        let inwe = outcome
            .per_region_reduction
            .iter()
            .find(|(r, _)| r.code == "IN-WE")
            .unwrap();
        assert!((inwe.1 - 300.0).abs() < 1e-9, "400 → 100 per unit load");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_regions_panics() {
        water_filling(&[], IdleCapacity::Infinite, &all_feasible);
    }

    #[test]
    #[should_panic(expected = "idle fraction")]
    fn bad_fraction_panics() {
        water_filling(&four_regions(), IdleCapacity::Fraction(1.0), &all_feasible);
    }
}
