//! Average- vs marginal-CI scheduling signals, evaluated consequentially.
//!
//! §2.1 of the paper explains that it analyzes *average* carbon-intensity
//! because the GHG protocol reports it, while acknowledging that marginal
//! carbon-intensity is the consequential signal. This module quantifies
//! the gap: a deferrable job is scheduled once against each signal
//! (derived from the same merit-order fleet), and each choice is charged
//! with the emissions its load *actually adds* to the system.
//!
//! On grids where the merit-order margin tracks the average mix, the two
//! signals pick the same hours. They diverge exactly where the paper's
//! future-work discussion points: high-renewable grids with curtailment,
//! where average-CI scheduling leaves free wind on the table.

use decarb_traces::grid::Fleet;
use decarb_traces::{Hour, TimeSeries};

use crate::flexload::consequential_emissions_kg;
use crate::temporal::TemporalPlanner;

/// Outcome of scheduling one deferrable block job against both signals.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalComparison {
    /// Start hour picked by the average-CI signal.
    pub average_start: Hour,
    /// Start hour picked by the marginal-CI signal.
    pub marginal_start: Hour,
    /// True added system emissions of the average-guided choice, kg.
    pub average_added_kg: f64,
    /// True added system emissions of the marginal-guided choice, kg.
    pub marginal_added_kg: f64,
    /// True added system emissions of the consequentially optimal
    /// contiguous window, kg.
    pub optimal_added_kg: f64,
}

impl SignalComparison {
    /// Excess emissions of average-guided over marginal-guided
    /// scheduling, kg (positive when the average signal misleads).
    pub fn average_penalty_kg(&self) -> f64 {
        self.average_added_kg - self.marginal_added_kg
    }

    /// How close the marginal signal gets to the consequential optimum,
    /// as a ratio in `(0, 1]` (1 means it found the optimum).
    pub fn marginal_efficiency(&self) -> f64 {
        if self.marginal_added_kg <= 0.0 {
            1.0
        } else {
            self.optimal_added_kg / self.marginal_added_kg
        }
    }
}

/// Consequential cost, in kg, of running a `job_mw` block in
/// `[chosen, chosen+slots)` on this grid.
fn added_kg(
    fleet: &Fleet,
    demand_mw: &impl Fn(Hour) -> f64,
    window_start: Hour,
    horizon: usize,
    chosen: Hour,
    slots: usize,
    job_mw: f64,
) -> f64 {
    let mut extra = vec![0.0; horizon];
    let offset = (chosen.0 - window_start.0) as usize;
    for slot in extra.iter_mut().skip(offset).take(slots) {
        *slot = job_mw;
    }
    consequential_emissions_kg(fleet, demand_mw, window_start, &extra)
}

/// Schedules a contiguous `slots`-hour, `job_mw` job arriving at
/// `window_start` with `slack` hours of slack, once per signal, and
/// evaluates every choice consequentially.
///
/// # Panics
///
/// Panics if the scheduling window `slots + slack` does not fit in
/// `horizon` hours from `window_start`.
pub fn compare_signals(
    fleet: &Fleet,
    demand_mw: impl Fn(Hour) -> f64,
    window_start: Hour,
    horizon: usize,
    slots: usize,
    slack: usize,
    job_mw: f64,
) -> SignalComparison {
    assert!(
        slots + slack <= horizon,
        "scheduling window exceeds the horizon"
    );
    let average: TimeSeries = fleet.dispatch_series(window_start, &demand_mw, horizon);
    let marginal: TimeSeries = fleet.marginal_series(window_start, &demand_mw, horizon);

    let average_start = TemporalPlanner::new(&average)
        .best_deferred(window_start, slots, slack)
        .start;
    let marginal_start = TemporalPlanner::new(&marginal)
        .best_deferred(window_start, slots, slack)
        .start;

    let average_added_kg = added_kg(
        fleet,
        &demand_mw,
        window_start,
        horizon,
        average_start,
        slots,
        job_mw,
    );
    let marginal_added_kg = added_kg(
        fleet,
        &demand_mw,
        window_start,
        horizon,
        marginal_start,
        slots,
        job_mw,
    );

    // Brute-force consequential optimum over every feasible start.
    let optimal_added_kg = (0..=slack)
        .map(|d| {
            added_kg(
                fleet,
                &demand_mw,
                window_start,
                horizon,
                window_start.plus(d),
                slots,
                job_mw,
            )
        })
        .fold(f64::INFINITY, f64::min);

    SignalComparison {
        average_start,
        marginal_start,
        average_added_kg,
        marginal_added_kg,
        optimal_added_kg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::grid::{solar_availability, Generator};
    use decarb_traces::mix::Source;

    fn curtailment_grid() -> Fleet {
        fn night_wind(hour: Hour) -> f64 {
            let h = hour.hour_of_day();
            if !(6..20).contains(&h) {
                1.0
            } else {
                0.1
            }
        }
        Fleet::new(vec![
            Generator {
                name: "must-run coal",
                source: Source::Coal,
                capacity_mw: 500.0,
                marginal_cost: -5.0,
                availability: None,
            },
            Generator {
                name: "wind",
                source: Source::Wind,
                capacity_mw: 400.0,
                marginal_cost: 0.0,
                availability: Some(night_wind),
            },
            Generator {
                name: "solar",
                source: Source::Solar,
                capacity_mw: 800.0,
                marginal_cost: 1.0,
                availability: Some(solar_availability),
            },
            Generator {
                name: "gas",
                source: Source::Gas,
                capacity_mw: 1200.0,
                marginal_cost: 40.0,
                availability: None,
            },
        ])
    }

    fn demand(hour: Hour) -> f64 {
        if (8..20).contains(&hour.hour_of_day()) {
            1400.0
        } else {
            800.0
        }
    }

    /// A grid with no curtailment and a margin that tracks the average:
    /// clean baseload, gas on the margin at all hours.
    fn aligned_grid() -> Fleet {
        Fleet::new(vec![
            Generator {
                name: "nuclear",
                source: Source::Nuclear,
                capacity_mw: 400.0,
                marginal_cost: 5.0,
                availability: None,
            },
            Generator {
                name: "gas",
                source: Source::Gas,
                capacity_mw: 1000.0,
                marginal_cost: 40.0,
                availability: None,
            },
        ])
    }

    #[test]
    fn signals_agree_on_aligned_grid() {
        let fleet = aligned_grid();
        // Diurnal demand: both signals prefer the overnight demand trough.
        let diurnal = |hour: Hour| {
            600.0
                + 300.0
                    * (std::f64::consts::TAU * (hour.hour_of_day() as f64 - 9.0) / 24.0)
                        .sin()
                        .max(-0.6)
        };
        let cmp = compare_signals(&fleet, diurnal, Hour(0), 48, 4, 20, 50.0);
        // Both place the job in the same trough (average CI falls when gas
        // share falls, which is exactly when total demand falls).
        assert_eq!(cmp.average_start, cmp.marginal_start);
        assert!((cmp.average_penalty_kg()).abs() < 1e-9);
        assert!(cmp.marginal_efficiency() > 0.999);
    }

    #[test]
    fn average_signal_pays_a_penalty_under_curtailment() {
        let fleet = curtailment_grid();
        let cmp = compare_signals(&fleet, demand, Hour(0), 48, 4, 30, 100.0);
        // The marginal signal finds the curtailed night wind; the average
        // signal is lured to solar noon where gas is on the margin.
        assert!(
            cmp.average_penalty_kg() > 0.0,
            "penalty {}",
            cmp.average_penalty_kg()
        );
        // Marginal-guided is within 1 % of the consequential optimum.
        assert!(
            cmp.marginal_efficiency() > 0.99,
            "{}",
            cmp.marginal_efficiency()
        );
        // And the penalty is large: gas (490) vs wind (11) margins.
        assert!(
            cmp.average_added_kg > cmp.marginal_added_kg * 5.0,
            "avg {} vs marg {}",
            cmp.average_added_kg,
            cmp.marginal_added_kg
        );
    }

    #[test]
    fn marginal_choice_lands_at_night() {
        let fleet = curtailment_grid();
        let cmp = compare_signals(&fleet, demand, Hour(0), 48, 4, 30, 100.0);
        let h = cmp.marginal_start.hour_of_day();
        assert!(!(6..20).contains(&h), "marginal start at hour {h}");
    }

    #[test]
    fn optimal_never_exceeds_either_signal() {
        let fleet = curtailment_grid();
        for slack in [0usize, 6, 12, 30] {
            let cmp = compare_signals(&fleet, demand, Hour(0), 48, 3, slack, 80.0);
            assert!(cmp.optimal_added_kg <= cmp.average_added_kg + 1e-9);
            assert!(cmp.optimal_added_kg <= cmp.marginal_added_kg + 1e-9);
        }
    }

    #[test]
    fn zero_slack_forces_identical_choices() {
        let fleet = curtailment_grid();
        let cmp = compare_signals(&fleet, demand, Hour(0), 24, 4, 0, 50.0);
        assert_eq!(cmp.average_start, Hour(0));
        assert_eq!(cmp.marginal_start, Hour(0));
        assert!((cmp.average_added_kg - cmp.marginal_added_kg).abs() < 1e-9);
        assert!((cmp.optimal_added_kg - cmp.average_added_kg).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds the horizon")]
    fn oversized_window_panics() {
        let fleet = curtailment_grid();
        compare_signals(&fleet, demand, Hour(0), 10, 8, 8, 10.0);
    }
}
