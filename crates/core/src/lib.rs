//! `decarb-core` — the paper's contribution: carbon-aware temporal and
//! spatial workload-shifting policies and their ideal/constrained bounds.
//!
//! The EuroSys '24 paper quantifies upper bounds on carbon reduction from
//! shifting cloud workloads across time and space. This crate implements
//! every policy the paper analyzes:
//!
//! * [`temporal`] — deferral (minimum-cost contiguous window within the
//!   slack) and interruptibility (k cheapest hours within the window),
//!   §3.2.1 / §5.2, with O(n) all-start-times sweeps;
//! * [`spatial`] — 1-migration (to the lowest-annual-mean region) and
//!   clairvoyant ∞-migration (hourly hop to the instantaneous greenest),
//!   §5.1.4;
//! * [`capacity`] — finite idle-capacity water-filling assignment, §5.1.2;
//! * [`latency`] — geodesic RTT model and latency-constrained candidate
//!   sets, §5.1.3;
//! * [`forecast`] — scheduling under carbon-forecast error, §6.2;
//! * [`greener`] — rising renewable penetration what-ifs, §6.3;
//! * [`mixed`] — migratable/pinned workload mixes, §6.1;
//! * [`combined`] — joint spatial + temporal shifting, §6.4;
//! * [`metrics`] — the paper's absolute and global-average reduction
//!   metrics, §3.1.3.
//!
//! All policies operate on the 1 kW *energy-optimized* job model: the
//! carbon cost of running `L` hours starting at hour `t` is the sum of the
//! region's hourly carbon-intensity over those hours (g·CO2eq).

pub mod budget;
pub mod capacity;
pub mod chain;
pub mod combined;
pub mod elastic;
pub mod embodied;
pub mod flexload;
pub mod forecast;
pub mod greener;
pub mod ksmallest;
pub mod latency;
pub mod metrics;
pub mod mixed;
pub mod overhead;
pub mod pareto;
pub mod rankings;
pub mod signals;
pub mod spatial;
pub mod temporal;

pub use budget::{budgeted_migration, BudgetedOutcome};
pub use capacity::{water_filling, CapacityOutcome};
pub use chain::{best_chain, ChainPlacement};
pub use combined::{combined_shift, CombinedBreakdown};
pub use elastic::{elastic_plan, elasticity_curve, ElasticPlan};
pub use embodied::{net_footprint_sweep, optimal_idle, EmbodiedParams, NetPoint};
pub use flexload::{allocate_flexible, flat_allocation, FlexAllocation};
pub use forecast::{forecast_error_impact, ErrorImpact};
pub use greener::greener_trace;
pub use ksmallest::SlidingKSmallest;
pub use latency::{rtt_ms, LatencyMatrix};
pub use metrics::{absolute_reduction, relative_reduction};
pub use pareto::{carbon_delay_frontier, pareto_filter, FrontierPoint};
pub use rankings::{rank_stability, RankStability};
pub use signals::{compare_signals, SignalComparison};
pub use spatial::{inf_migration, one_migration, SpatialOutcome};
pub use temporal::{TemporalPlanner, TemporalPolicy};
