//! Migration-budget analysis (extension of §5.1.4).
//!
//! The paper compares 1-migration against clairvoyant ∞-migration; this
//! module fills in the curve between them with a dynamic program over
//! (hour, region, migrations-used): what does a job gain from a budget of
//! exactly `m` migrations? The answer — essentially nothing beyond the
//! first — is the quantitative form of the paper's "one migration
//! suffices" takeaway.

use decarb_traces::{Hour, Region, TraceSet};

/// Result of the budgeted-migration DP.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedOutcome {
    /// Carbon cost of the job (g·CO2eq).
    pub cost_g: f64,
    /// Number of migrations actually used (≤ budget).
    pub migrations_used: usize,
}

/// Schedules a `slots`-hour job starting at `arrival` in `origin`, allowed
/// at most `budget` zero-cost migrations among `candidates` (the origin is
/// always a candidate). Migration is instantaneous at hour boundaries.
///
/// Runs an O(slots × |candidates| × budget) dynamic program; the budget is
/// internally capped at `slots − 1` (more migrations than hour boundaries
/// cannot help).
///
/// # Panics
///
/// Panics if `candidates` is empty or `slots` is zero.
// The time loop indexes several parallel per-region arrays; an iterator
// form would obscure the recurrence.
#[allow(clippy::needless_range_loop)]
pub fn budgeted_migration(
    set: &TraceSet,
    origin: &Region,
    candidates: &[&Region],
    arrival: Hour,
    slots: usize,
    budget: usize,
) -> BudgetedOutcome {
    assert!(!candidates.is_empty(), "candidate set must be non-empty");
    assert!(slots > 0, "job must have at least one slot");
    let budget = budget.min(slots - 1);

    // Candidate traces as slices over the job window.
    let mut regions: Vec<&Region> = Vec::with_capacity(candidates.len() + 1);
    if !candidates.iter().any(|r| r.code == origin.code) {
        regions.push(origin);
    }
    regions.extend_from_slice(candidates);
    let windows: Vec<&[f64]> = regions
        .iter()
        .map(|r| {
            set.series(&r.code)
                // decarb-analyze: allow(no-panic) -- figure harness: candidate regions come from the dataset itself
                .expect("candidate trace exists")
                .window(arrival, slots)
                // decarb-analyze: allow(no-panic) -- figure harness: arrival grids are built inside the trace year
                .expect("job window inside horizon")
        })
        .collect();
    let origin_idx = regions
        .iter()
        .position(|r| r.code == origin.code)
        // decarb-analyze: allow(no-panic) -- the caller-built candidate list always contains the origin
        .expect("origin inserted above");

    let n = regions.len();
    // dp[m][r]: min cost of the first t slots, ending hour t−1 in region r
    // having used m migrations.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n]; budget + 1];
    dp[0][origin_idx] = windows[origin_idx][0];
    for (r, w) in windows.iter().enumerate() {
        if budget >= 1 && r != origin_idx {
            dp[1][r] = w[0];
        }
    }
    for t in 1..slots {
        let mut next = vec![vec![inf; n]; budget + 1];
        for m in 0..=budget {
            // Cheapest predecessor with m−1 migrations (for a switch).
            let (best_prev_idx, best_prev) = if m > 0 {
                dp[m - 1]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, &v)| (i, v))
                    .unwrap_or((0, inf))
            } else {
                (0, inf)
            };
            for r in 0..n {
                let stay = dp[m][r];
                let switch = if m > 0 && best_prev_idx != r {
                    best_prev
                } else if m > 0 {
                    // Best predecessor is r itself; switching from another
                    // region needs the runner-up.
                    dp[m - 1]
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != r)
                        .map(|(_, &v)| v)
                        .fold(inf, f64::min)
                } else {
                    inf
                };
                let base = stay.min(switch);
                if base < inf {
                    next[m][r] = base + windows[r][t];
                }
            }
        }
        dp = next;
    }

    let mut best = (inf, 0usize);
    for (m, row) in dp.iter().enumerate() {
        for &v in row {
            if v < best.0 {
                best = (v, m);
            }
        }
    }
    BudgetedOutcome {
        cost_g: best.0,
        migrations_used: best.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::inf_migration;
    use decarb_traces::builtin_dataset;
    use decarb_traces::time::year_start;

    fn setup() -> (
        std::sync::Arc<decarb_traces::TraceSet>,
        Vec<&'static Region>,
        &'static Region,
    ) {
        let set = builtin_dataset();
        let candidates: Vec<&'static Region> = ["SE", "US-CA", "DE", "IN-WE", "AU-SA"]
            .iter()
            .map(|c| decarb_traces::catalog::region(c).unwrap())
            .collect();
        let origin = decarb_traces::catalog::region("IN-WE").unwrap();
        (set, candidates, origin)
    }

    #[test]
    fn zero_budget_stays_home() {
        let (set, candidates, origin) = setup();
        let arrival = year_start(2022).plus(100);
        let outcome = budgeted_migration(&set, origin, &candidates, arrival, 24, 0);
        let home: f64 = set
            .series("IN-WE")
            .unwrap()
            .window(arrival, 24)
            .unwrap()
            .iter()
            .sum();
        assert!((outcome.cost_g - home).abs() < 1e-9);
        assert_eq!(outcome.migrations_used, 0);
    }

    #[test]
    fn cost_monotone_in_budget() {
        let (set, candidates, origin) = setup();
        let arrival = year_start(2022).plus(5000);
        let mut last = f64::INFINITY;
        for budget in [0usize, 1, 2, 4, 8, 23] {
            let outcome = budgeted_migration(&set, origin, &candidates, arrival, 24, budget);
            assert!(outcome.cost_g <= last + 1e-9, "budget {budget}");
            assert!(outcome.migrations_used <= budget);
            last = outcome.cost_g;
        }
    }

    #[test]
    fn unbounded_budget_matches_inf_migration() {
        let (set, candidates, origin) = setup();
        let arrival = year_start(2022).plus(777);
        let slots = 48;
        let outcome = budgeted_migration(&set, origin, &candidates, arrival, slots, slots - 1);
        // ∞-migration over candidates ∪ {origin} (origin is a candidate).
        let (inf_outcome, _) = inf_migration(&set, &candidates, arrival, slots);
        assert!(
            (outcome.cost_g - inf_outcome.cost_g).abs() < 1e-9,
            "dp {} vs envelope {}",
            outcome.cost_g,
            inf_outcome.cost_g
        );
    }

    #[test]
    fn one_migration_captures_nearly_everything() {
        // The paper's §5.1.4 claim, quantified: budget 1 is within a few
        // grams per hour of budget ∞.
        let (set, candidates, origin) = setup();
        let arrival = year_start(2022).plus(3000);
        let slots = 168;
        let one = budgeted_migration(&set, origin, &candidates, arrival, slots, 1);
        let unbounded = budgeted_migration(&set, origin, &candidates, arrival, slots, slots - 1);
        let advantage_per_hour = (one.cost_g - unbounded.cost_g) / slots as f64;
        assert!(
            advantage_per_hour < 10.0,
            "unbounded advantage {advantage_per_hour} g/h"
        );
    }

    #[test]
    fn origin_always_candidate() {
        let (set, _, _) = setup();
        // Candidate set without the origin: DP must still allow staying.
        let origin = decarb_traces::catalog::region("PL").unwrap();
        let others: Vec<&Region> = vec![decarb_traces::catalog::region("XK").unwrap()];
        let arrival = year_start(2022).plus(10);
        let outcome = budgeted_migration(&set, origin, &others, arrival, 12, 0);
        let home: f64 = set
            .series("PL")
            .unwrap()
            .window(arrival, 12)
            .unwrap()
            .iter()
            .sum();
        assert!((outcome.cost_g - home).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let (set, candidates, origin) = setup();
        budgeted_migration(&set, origin, &candidates, year_start(2022), 0, 1);
    }
}
