//! Inter-region latency modelling (§5.1.3).
//!
//! The paper uses measured GCP inter-region latencies; those measurements
//! are not redistributable, so we model round-trip time from geodesic
//! distance: light in fiber covers ≈ 200 km per millisecond one-way
//! (≈ 100 km per RTT millisecond), real paths are ≈ 30 % longer than the
//! great circle, and endpoint processing adds a constant. The result
//! matches the magnitudes that matter for Fig. 6(a): single-digit RTTs
//! within a metro, ≈ 70–150 ms across an ocean, ≈ 250–300 ms antipodal.

use decarb_traces::Region;

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;
/// RTT kilometres per millisecond for light in fiber.
const FIBER_KM_PER_RTT_MS: f64 = 100.0;
/// Path-stretch factor over the great-circle distance.
const PATH_STRETCH: f64 = 1.3;
/// Fixed endpoint overhead in milliseconds.
const FIXED_OVERHEAD_MS: f64 = 5.0;

/// Returns the great-circle distance between two coordinates in km.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let d_phi = (lat2 - lat1).to_radians();
    let d_lambda = (lon2 - lon1).to_radians();
    let a = (d_phi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (d_lambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// Returns the modelled round-trip time between two regions in ms.
///
/// A region to itself costs only the fixed overhead.
pub fn rtt_ms(a: &Region, b: &Region) -> f64 {
    if a.code == b.code {
        return FIXED_OVERHEAD_MS;
    }
    let dist = haversine_km(a.lat, a.lon, b.lat, b.lon);
    FIXED_OVERHEAD_MS + PATH_STRETCH * dist / FIBER_KM_PER_RTT_MS
}

/// A precomputed symmetric RTT matrix over a region set.
#[derive(Debug, Clone)]
pub struct LatencyMatrix {
    codes: Vec<String>,
    rtt: Vec<f64>,
}

impl LatencyMatrix {
    /// Builds the matrix for `regions`.
    pub fn build(regions: &[&Region]) -> Self {
        let n = regions.len();
        let mut rtt = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = rtt_ms(regions[i], regions[j]);
                rtt[i * n + j] = v;
                rtt[j * n + i] = v;
            }
        }
        Self {
            codes: regions.iter().map(|r| r.code.clone()).collect(),
            rtt,
        }
    }

    /// Returns the number of regions covered.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` if the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Returns the RTT between two zone codes, if both are covered.
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.codes.iter().position(|c| c == a)?;
        let j = self.codes.iter().position(|c| c == b)?;
        Some(self.rtt[i * self.codes.len() + j])
    }

    /// Returns the zone codes whose RTT from `origin` is within `slo_ms`.
    pub fn feasible_from(&self, origin: &str, slo_ms: f64) -> Vec<&str> {
        let Some(i) = self.codes.iter().position(|c| c == origin) else {
            return Vec::new();
        };
        let n = self.codes.len();
        (0..n)
            .filter(|&j| self.rtt[i * n + j] <= slo_ms)
            .map(|j| self.codes[j].as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::catalog::region;

    #[test]
    fn haversine_known_distances() {
        // London ↔ New York ≈ 5570 km.
        let d = haversine_km(51.5, -0.1, 40.7, -74.0);
        assert!((5400.0..5750.0).contains(&d), "{d}");
        // Same point → 0.
        assert_eq!(haversine_km(10.0, 20.0, 10.0, 20.0), 0.0);
    }

    #[test]
    fn rtt_magnitudes_are_realistic() {
        let gb = region("GB").unwrap();
        let us_va = region("US-VA").unwrap();
        let au = region("AU-NSW").unwrap();
        let trans_atlantic = rtt_ms(gb, us_va);
        assert!(
            (60.0..120.0).contains(&trans_atlantic),
            "GB↔US-VA {trans_atlantic}"
        );
        let antipodal = rtt_ms(gb, au);
        assert!((200.0..300.0).contains(&antipodal), "GB↔AU {antipodal}");
        assert_eq!(rtt_ms(gb, gb), FIXED_OVERHEAD_MS);
    }

    #[test]
    fn rtt_symmetric_and_triangle_ish() {
        let a = region("US-CA").unwrap();
        let b = region("JP-TK").unwrap();
        assert!((rtt_ms(a, b) - rtt_ms(b, a)).abs() < 1e-9);
    }

    #[test]
    fn matrix_matches_pairwise() {
        let regions: Vec<&Region> = ["SE", "US-CA", "SG"]
            .iter()
            .map(|c| region(c).unwrap())
            .collect();
        let matrix = LatencyMatrix::build(&regions);
        assert_eq!(matrix.len(), 3);
        assert!(!matrix.is_empty());
        for a in &regions {
            for b in &regions {
                let m = matrix.get(&a.code, &b.code).unwrap();
                assert!((m - rtt_ms(a, b)).abs() < 1e-9);
            }
        }
        assert!(matrix.get("SE", "NOPE").is_none());
    }

    #[test]
    fn feasible_set_grows_with_slo() {
        let all: Vec<&Region> = decarb_traces::builtin_catalog().iter().collect();
        let matrix = LatencyMatrix::build(&all);
        let near = matrix.feasible_from("DE", 30.0);
        let far = matrix.feasible_from("DE", 150.0);
        let global = matrix.feasible_from("DE", 400.0);
        assert!(near.contains(&"DE"));
        assert!(near.len() < far.len());
        assert!(far.len() < global.len());
        assert_eq!(global.len(), 123, "400 ms reaches everywhere");
        assert!(matrix.feasible_from("NOPE", 100.0).is_empty());
    }

    #[test]
    fn intra_european_latencies_small() {
        let de = region("DE").unwrap();
        let nl = region("NL").unwrap();
        let v = rtt_ms(de, nl);
        assert!(v < 15.0, "DE↔NL {v}");
    }
}
