//! Elastic (CarbonScaler-style) workload scaling.
//!
//! The paper's related work (its reference [22], CarbonScaler) exploits a
//! third flexibility dimension beyond deferral and interruption: *scaling*.
//! An elastic job with `work` replica-hours of total computation can run
//! more replicas when energy is clean and fewer (or none) when it is
//! dirty, subject to a parallelism ceiling. Interruptibility is the
//! special case `max_replicas = 1`; larger ceilings concentrate the same
//! energy into deeper carbon-intensity valleys, so the clairvoyant cost is
//! non-increasing in the ceiling.
//!
//! The model keeps the paper's assumptions: 1 kW per replica, hourly
//! granularity, perfect scaling efficiency (no parallel overhead), zero
//! scale-up/down cost — an upper bound, like Figs. 7–9.

use decarb_traces::{Hour, TimeSeries};

/// A clairvoyant elastic execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticPlan {
    /// Replica count per executed hour, ascending by hour; hours with
    /// zero replicas are omitted.
    pub schedule: Vec<(Hour, usize)>,
    /// Total emissions, g·CO2eq (1 kWh per replica-hour).
    pub cost_g: f64,
}

impl ElasticPlan {
    /// Total replica-hours executed.
    pub fn work_hours(&self) -> usize {
        self.schedule.iter().map(|&(_, r)| r).sum()
    }

    /// Highest concurrent replica count.
    pub fn peak_replicas(&self) -> usize {
        self.schedule.iter().map(|&(_, r)| r).max().unwrap_or(0)
    }

    /// Hours between the first and last executed slot, inclusive (0 for an
    /// empty plan).
    pub fn makespan_hours(&self) -> usize {
        match (self.schedule.first(), self.schedule.last()) {
            (Some(&(first, _)), Some(&(last, _))) => (last.0 - first.0 + 1) as usize,
            _ => 0,
        }
    }
}

/// Computes the clairvoyant minimum-carbon elastic plan: allocate `work`
/// replica-hours within `[arrival, arrival + window)`, at most
/// `max_replicas` per hour, minimizing total emissions.
///
/// Greedily fills the cheapest hours to the ceiling, which is optimal
/// because hours are independent and each replica-hour in hour `t` costs
/// exactly `CI(t)`. The window is clamped at the trace end.
///
/// # Examples
///
/// ```
/// use decarb_core::elastic::elastic_plan;
/// use decarb_traces::{Hour, TimeSeries};
///
/// let series = TimeSeries::new(Hour(0), vec![500.0, 100.0, 400.0, 100.0]);
/// let plan = elastic_plan(&series, Hour(0), 4, 2, 4);
/// // Two replicas in each of the two 100 g hours.
/// assert_eq!(plan.cost_g, 400.0);
/// assert_eq!(plan.peak_replicas(), 2);
/// ```
///
/// # Panics
///
/// Panics if `max_replicas` is zero or the (clamped) window cannot fit the
/// work (`work > max_replicas × window`).
pub fn elastic_plan(
    series: &TimeSeries,
    arrival: Hour,
    work: usize,
    max_replicas: usize,
    window: usize,
) -> ElasticPlan {
    assert!(max_replicas > 0, "need at least one replica");
    let first = (arrival.0 - series.start().0) as usize;
    let end = (first + window).min(series.len());
    let hours = end.saturating_sub(first);
    assert!(
        work <= max_replicas * hours,
        "window of {hours} h × {max_replicas} replicas cannot fit {work} replica-hours"
    );
    let values = series.values();
    let mut order: Vec<usize> = (first..end).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    let mut remaining = work;
    let mut schedule: Vec<(usize, usize)> = Vec::new();
    for idx in order {
        if remaining == 0 {
            break;
        }
        let take = max_replicas.min(remaining);
        schedule.push((idx, take));
        remaining -= take;
    }
    schedule.sort_unstable();
    let cost_g = schedule.iter().map(|&(i, r)| values[i] * r as f64).sum();
    ElasticPlan {
        schedule: schedule
            .into_iter()
            .map(|(i, r)| (series.start().plus(i), r))
            .collect(),
        cost_g,
    }
}

/// Sweeps the parallelism ceiling and returns `(max_replicas, cost_g)`
/// pairs — the marginal value of elasticity for this job and window.
pub fn elasticity_curve(
    series: &TimeSeries,
    arrival: Hour,
    work: usize,
    ceilings: &[usize],
    window: usize,
) -> Vec<(usize, f64)> {
    ceilings
        .iter()
        .map(|&m| (m, elastic_plan(series, arrival, work, m, window).cost_g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::TemporalPlanner;

    fn wave(n: usize) -> TimeSeries {
        let values = (0..n)
            .map(|t| 300.0 + 150.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin())
            .collect();
        TimeSeries::new(Hour(0), values)
    }

    #[test]
    fn single_replica_equals_interruptible_bound() {
        let series = wave(24 * 20);
        let planner = TemporalPlanner::new(&series);
        for (work, slack) in [(4usize, 48usize), (12, 24), (24, 168)] {
            let plan = elastic_plan(&series, Hour(10), work, 1, work + slack);
            let (_, interruptible) = planner.best_interruptible(Hour(10), work, slack);
            assert!(
                (plan.cost_g - interruptible).abs() < 1e-9,
                "work {work} slack {slack}: {} vs {interruptible}",
                plan.cost_g
            );
        }
    }

    #[test]
    fn cost_is_non_increasing_in_ceiling() {
        let series = wave(24 * 10);
        let curve = elasticity_curve(&series, Hour(0), 48, &[1, 2, 4, 8, 16], 24 * 8);
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "m={} cost {} vs m={} cost {}",
                pair[1].0,
                pair[1].1,
                pair[0].0,
                pair[0].1
            );
        }
        // More parallelism concentrates work into the deepest valleys:
        // with m=16 the job fits in the 3 cheapest hours of each night.
        assert!(curve.last().unwrap().1 < curve[0].1);
    }

    #[test]
    fn plan_conserves_work_and_respects_ceiling() {
        let series = wave(24 * 5);
        let plan = elastic_plan(&series, Hour(7), 30, 4, 24 * 4);
        assert_eq!(plan.work_hours(), 30);
        assert!(plan.peak_replicas() <= 4);
        assert!(plan.schedule.windows(2).all(|w| w[0].0 < w[1].0));
        for &(hour, _) in &plan.schedule {
            assert!(hour >= Hour(7));
            assert!(hour < Hour(7 + 24 * 4));
        }
    }

    #[test]
    fn full_parallelism_runs_everything_in_the_single_cheapest_hour() {
        let series = wave(48);
        let plan = elastic_plan(&series, Hour(0), 5, 5, 48);
        assert_eq!(plan.schedule.len(), 1);
        assert_eq!(plan.peak_replicas(), 5);
        assert_eq!(plan.makespan_hours(), 1);
        assert!((plan.cost_g - 5.0 * series.min()).abs() < 1e-9);
    }

    #[test]
    fn makespan_shrinks_with_elasticity() {
        let series = wave(24 * 10);
        let narrow = elastic_plan(&series, Hour(0), 48, 1, 24 * 8);
        let wide = elastic_plan(&series, Hour(0), 48, 8, 24 * 8);
        assert!(wide.schedule.len() < narrow.schedule.len());
        assert!(wide.cost_g <= narrow.cost_g + 1e-9);
    }

    #[test]
    fn window_clamped_at_trace_end() {
        let series = wave(30);
        // Window of 100 clamps to the 20 hours left after Hour(10).
        let plan = elastic_plan(&series, Hour(10), 10, 1, 100);
        assert_eq!(plan.work_hours(), 10);
        assert!(plan.schedule.iter().all(|&(h, _)| h < Hour(30)));
    }

    #[test]
    fn empty_plan_metrics() {
        let series = wave(24);
        let plan = elastic_plan(&series, Hour(0), 0, 3, 24);
        assert_eq!(plan.work_hours(), 0);
        assert_eq!(plan.peak_replicas(), 0);
        assert_eq!(plan.makespan_hours(), 0);
        assert_eq!(plan.cost_g, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn infeasible_work_panics() {
        let series = wave(24);
        elastic_plan(&series, Hour(0), 100, 2, 10);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let series = wave(24);
        elastic_plan(&series, Hour(0), 4, 0, 24);
    }
}
