//! Temporal workload shifting: deferral and interruptibility (§3.2.1, §5.2).
//!
//! All costs are carbon emissions in g·CO2eq for a 1 kW job: running
//! `slots` hours starting at hour `s` costs the sum of the region's hourly
//! carbon-intensity over `[s, s + slots)`.
//!
//! * **Deferral** maps to the minimum-sum contiguous k-window problem: a
//!   job of length `k` with slack `S` picks the cheapest contiguous window
//!   starting within `[arrival, arrival + S]`.
//! * **Interruptibility** maps to the k smallest elements of the window
//!   `[arrival, arrival + k + S)`: the job runs in the `k` cheapest hours,
//!   pausing elsewhere (suspend/resume overheads are ignored to obtain an
//!   upper bound, as in the paper).
//!
//! Single-job queries run in O(window). The all-start-times sweeps the
//! paper averages over (8760 arrivals per year) use a monotonic deque
//! (deferral) and a two-multiset sliding structure (interruptibility) for
//! O(n) / O(n log n) totals instead of O(n · window).

use decarb_traces::{ChunkedPrefix, Hour, PrefixSum, Resolution, TimeSeries};

use crate::ksmallest::SlidingKSmallest;

/// The temporal flexibility a job is granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalPolicy {
    /// Run at arrival (the carbon-agnostic baseline).
    Immediate,
    /// Defer the start within the slack, then run contiguously.
    Deferred,
    /// Defer and interrupt: run in the cheapest hours of the window.
    DeferredInterruptible,
}

/// The result of placing a single job.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Chosen start hour (for interruptible placements, the first hour
    /// actually executed).
    pub start: Hour,
    /// Carbon cost in g·CO2eq.
    pub cost_g: f64,
}

/// Window-sum backend: hourly planners keep the flat [`PrefixSum`]
/// (bit-identical to the pre-sub-hourly code paths); sub-hourly
/// planners use the two-level [`ChunkedPrefix`], whose blocked layout
/// keeps window queries cache-friendly on 105 k-sample year traces.
#[derive(Debug, Clone)]
enum Prefix {
    Flat(PrefixSum),
    Chunked(ChunkedPrefix),
}

impl Prefix {
    #[inline]
    fn sum(&self, from: Hour, len: usize) -> f64 {
        match self {
            Prefix::Flat(p) => p.sum(from, len),
            Prefix::Chunked(p) => p.sum(from, len),
        }
    }
}

/// A temporal scheduling planner over one region's carbon trace.
///
/// The planner is resolution-agnostic: `Hour` values are *slot*
/// indices on whatever axis the series uses, and `slots`/`slack`
/// arguments are slot counts. Callers with wall-clock inputs convert
/// once at the edge (see `Job::length_slots_at` and friends) before
/// querying. [`TemporalPlanner::with_resolution`] records the axis and
/// picks the window-sum backend accordingly.
#[derive(Debug, Clone)]
pub struct TemporalPlanner {
    start: Hour,
    values: Vec<f64>,
    prefix: Prefix,
    resolution: Resolution,
}

impl TemporalPlanner {
    /// Builds a planner over an hourly `series`.
    pub fn new(series: &TimeSeries) -> Self {
        Self::with_resolution(series, Resolution::HOURLY)
    }

    /// Builds a planner over `series` sampled at `resolution`.
    ///
    /// Hourly planners keep the flat prefix sum so existing results are
    /// bit-for-bit stable; sub-hourly planners switch to the chunked
    /// backend.
    pub fn with_resolution(series: &TimeSeries, resolution: Resolution) -> Self {
        let prefix = if resolution.is_hourly() {
            Prefix::Flat(series.prefix_sum())
        } else {
            Prefix::Chunked(series.chunked_prefix())
        };
        Self {
            start: series.start(),
            values: series.values().to_vec(),
            prefix,
            resolution,
        }
    }

    /// Returns the sample resolution of the planner's trace axis.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Returns the first hour covered by the trace.
    pub fn trace_start(&self) -> Hour {
        self.start
    }

    /// Returns the hour just past the end of the trace.
    pub fn trace_end(&self) -> Hour {
        self.start.plus(self.values.len())
    }

    fn idx(&self, hour: Hour) -> usize {
        assert!(
            hour >= self.start,
            "hour {hour} before trace start {}",
            self.start
        );
        (hour.0 - self.start.0) as usize
    }

    /// Returns the carbon cost of running `slots` hours at `arrival`
    /// (the carbon-agnostic baseline).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the trace horizon.
    pub fn baseline_cost(&self, arrival: Hour, slots: usize) -> f64 {
        let i = self.idx(arrival);
        assert!(
            i + slots <= self.values.len(),
            "job at {arrival} (+{slots}h) runs past trace end"
        );
        self.prefix.sum(arrival, slots)
    }

    /// Returns the latest start the trace can accommodate for `slots`.
    fn last_start(&self, slots: usize) -> usize {
        self.values.len().saturating_sub(slots)
    }

    /// Finds the cheapest contiguous `slots`-window starting within
    /// `[arrival, arrival + slack]` (§3.2.1's minimum k-element sub-array).
    ///
    /// The slack is clamped at the trace horizon; ties resolve to the
    /// earliest start.
    // decarb-analyze: hot-path
    pub fn best_deferred(&self, arrival: Hour, slots: usize, slack: usize) -> Placement {
        let first = self.idx(arrival);
        let last = (first + slack).min(self.last_start(slots));
        assert!(
            first <= last,
            "job at {arrival} (+{slots}h) cannot fit before trace end"
        );
        let mut best_start = first;
        let mut best_cost = f64::INFINITY;
        for s in first..=last {
            let cost = self.prefix.sum(self.start.plus(s), slots);
            if cost < best_cost {
                best_cost = cost;
                best_start = s;
            }
        }
        Placement {
            start: self.start.plus(best_start),
            cost_g: best_cost,
        }
    }

    /// Finds the `slots` cheapest hours within
    /// `[arrival, arrival + slots + slack)` — the deferrable *and*
    /// interruptible upper bound. Returns the executed hours (ascending)
    /// and their total cost.
    pub fn best_interruptible(
        &self,
        arrival: Hour,
        slots: usize,
        slack: usize,
    ) -> (Vec<Hour>, f64) {
        let first = self.idx(arrival);
        let end = (first + slots + slack).min(self.values.len());
        assert!(
            first + slots <= self.values.len(),
            "job at {arrival} (+{slots}h) cannot fit before trace end"
        );
        let mut indexed: Vec<(f64, usize)> = self.values[first..end]
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, first + i))
            .collect();
        indexed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut chosen: Vec<usize> = indexed.iter().take(slots).map(|&(_, i)| i).collect();
        chosen.sort_unstable();
        let cost = chosen.iter().map(|&i| self.values[i]).sum();
        (
            chosen.into_iter().map(|i| self.start.plus(i)).collect(),
            cost,
        )
    }

    /// Returns the cost of running under `policy` for a single job.
    pub fn policy_cost(
        &self,
        policy: TemporalPolicy,
        arrival: Hour,
        slots: usize,
        slack: usize,
    ) -> f64 {
        match policy {
            TemporalPolicy::Immediate => self.baseline_cost(arrival, slots),
            TemporalPolicy::Deferred => self.best_deferred(arrival, slots, slack).cost_g,
            TemporalPolicy::DeferredInterruptible => {
                self.best_interruptible(arrival, slots, slack).1
            }
        }
    }

    /// Sweeps every arrival in `[sweep_start, sweep_start + count)` and
    /// returns the deferred cost per arrival, in O(n) total via a
    /// monotonic deque over window costs.
    ///
    /// # Panics
    ///
    /// Panics if any arrival cannot fit `slots` hours before trace end.
    // decarb-analyze: hot-path
    pub fn deferral_sweep(
        &self,
        sweep_start: Hour,
        count: usize,
        slots: usize,
        slack: usize,
    ) -> Vec<f64> {
        let first = self.idx(sweep_start);
        let last_start = self.last_start(slots);
        assert!(first + count - 1 <= last_start, "sweep runs past trace end");
        // Deque of start indices with increasing window cost.
        let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut next_push = first;
        let mut out = Vec::with_capacity(count);
        let window_cost = |s: usize| -> f64 { self.prefix.sum(self.start.plus(s), slots) };
        for a in first..first + count {
            let right = (a + slack).min(last_start);
            while next_push <= right {
                let cost = window_cost(next_push);
                while let Some(&back) = deque.back() {
                    if window_cost(back) >= cost {
                        deque.pop_back();
                    } else {
                        break;
                    }
                }
                deque.push_back(next_push);
                next_push += 1;
            }
            while let Some(&front) = deque.front() {
                if front < a {
                    deque.pop_front();
                } else {
                    break;
                }
            }
            // `next_push <= right` always admits start `a` itself, so
            // the deque cannot be empty here; bail out cleanly anyway.
            let Some(&best) = deque.front() else { break };
            out.push(window_cost(best));
        }
        out
    }

    /// Sweeps every arrival in `[sweep_start, sweep_start + count)` and
    /// returns the deferrable+interruptible cost per arrival, in
    /// O(n log n) total via [`SlidingKSmallest`].
    ///
    /// # Panics
    ///
    /// Panics if any arrival cannot fit `slots` hours before trace end.
    pub fn interruptible_sweep(
        &self,
        sweep_start: Hour,
        count: usize,
        slots: usize,
        slack: usize,
    ) -> Vec<f64> {
        let first = self.idx(sweep_start);
        assert!(
            first + count - 1 + slots <= self.values.len(),
            "sweep runs past trace end"
        );
        let mut set = SlidingKSmallest::new(slots);
        let mut right = first;
        let mut out = Vec::with_capacity(count);
        for a in first..first + count {
            let target_right = (a + slots + slack).min(self.values.len());
            while right < target_right {
                set.insert(self.values[right]);
                right += 1;
            }
            if a > first {
                set.remove(self.values[a - 1]);
            }
            out.push(set.k_sum());
        }
        out
    }

    /// Convenience: per-arrival baseline costs for a sweep.
    // decarb-analyze: hot-path
    pub fn baseline_sweep(&self, sweep_start: Hour, count: usize, slots: usize) -> Vec<f64> {
        (0..count)
            .map(|i| self.baseline_cost(sweep_start.plus(i), slots))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner(values: &[f64]) -> TemporalPlanner {
        TemporalPlanner::new(&TimeSeries::new(Hour(0), values.to_vec()))
    }

    /// The sawtooth trace used across the tests: cheap valleys at indices
    /// 3–4 and 10–11.
    fn sawtooth() -> TemporalPlanner {
        planner(&[
            9.0, 8.0, 7.0, 1.0, 2.0, 7.0, 9.0, 9.0, 8.0, 6.0, 1.5, 2.5, 8.0, 9.0,
        ])
    }

    #[test]
    fn baseline_is_window_sum() {
        let p = sawtooth();
        assert!((p.baseline_cost(Hour(0), 3) - 24.0).abs() < 1e-12);
        assert!((p.baseline_cost(Hour(3), 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deferred_finds_cheapest_window() {
        let p = sawtooth();
        // Arrival 0, 2-slot job, slack 6: the best window is [3, 4].
        let placement = p.best_deferred(Hour(0), 2, 6);
        assert_eq!(placement.start, Hour(3));
        assert!((placement.cost_g - 3.0).abs() < 1e-12);
        // No slack: must start at arrival.
        let fixed = p.best_deferred(Hour(0), 2, 0);
        assert_eq!(fixed.start, Hour(0));
        assert!((fixed.cost_g - 17.0).abs() < 1e-12);
    }

    #[test]
    fn deferred_ties_resolve_earliest() {
        let p = planner(&[5.0, 2.0, 3.0, 2.0, 3.0, 9.0]);
        // Windows [1,2] and [3,4] both cost 5; earliest wins.
        let placement = p.best_deferred(Hour(0), 2, 4);
        assert_eq!(placement.start, Hour(1));
    }

    #[test]
    fn deferred_clamps_at_horizon() {
        let p = sawtooth();
        // Arrival 12 with huge slack: starts limited to index 12 (len 2).
        let placement = p.best_deferred(Hour(12), 2, 10_000);
        assert_eq!(placement.start, Hour(12));
        assert!((placement.cost_g - 17.0).abs() < 1e-12);
    }

    #[test]
    fn interruptible_picks_k_cheapest() {
        let p = sawtooth();
        let (hours, cost) = p.best_interruptible(Hour(0), 4, 8);
        // Cheapest 4 hours in [0, 12): indices 3 (1.0), 4 (2.0), 10 (1.5),
        // 11 (2.5).
        assert_eq!(hours, vec![Hour(3), Hour(4), Hour(10), Hour(11)]);
        assert!((cost - 7.0).abs() < 1e-12);
    }

    #[test]
    fn interruptible_never_worse_than_deferred() {
        let p = sawtooth();
        for arrival in 0..8u32 {
            for slots in 1..4usize {
                for slack in 0..6usize {
                    let d = p.best_deferred(Hour(arrival), slots, slack).cost_g;
                    let i = p.best_interruptible(Hour(arrival), slots, slack).1;
                    let b = p.baseline_cost(Hour(arrival), slots);
                    assert!(i <= d + 1e-12, "interrupt {i} > deferred {d}");
                    assert!(d <= b + 1e-12, "deferred {d} > baseline {b}");
                }
            }
        }
    }

    #[test]
    fn policy_cost_dispatch() {
        let p = sawtooth();
        let b = p.policy_cost(TemporalPolicy::Immediate, Hour(0), 2, 6);
        let d = p.policy_cost(TemporalPolicy::Deferred, Hour(0), 2, 6);
        let i = p.policy_cost(TemporalPolicy::DeferredInterruptible, Hour(0), 2, 6);
        assert!(i <= d && d <= b);
        assert!((b - 17.0).abs() < 1e-12);
    }

    #[test]
    fn sweeps_match_single_queries() {
        let p = sawtooth();
        let slots = 2;
        let slack = 4;
        let count = 8;
        let deferred = p.deferral_sweep(Hour(0), count, slots, slack);
        let interrupt = p.interruptible_sweep(Hour(0), count, slots, slack);
        let baseline = p.baseline_sweep(Hour(0), count, slots);
        for a in 0..count {
            let d = p.best_deferred(Hour(a as u32), slots, slack).cost_g;
            let i = p.best_interruptible(Hour(a as u32), slots, slack).1;
            let b = p.baseline_cost(Hour(a as u32), slots);
            assert!((deferred[a] - d).abs() < 1e-9, "deferred at {a}");
            assert!((interrupt[a] - i).abs() < 1e-9, "interrupt at {a}");
            assert!((baseline[a] - b).abs() < 1e-9, "baseline at {a}");
        }
    }

    #[test]
    fn sweep_on_longer_pseudorandom_trace_matches_naive() {
        let mut x = 7u64;
        let values: Vec<f64> = (0..400)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 900) as f64 / 3.0 + 10.0
            })
            .collect();
        let p = planner(&values);
        let slots = 5;
        let slack = 30;
        let count = 300;
        let deferred = p.deferral_sweep(Hour(0), count, slots, slack);
        let interrupt = p.interruptible_sweep(Hour(0), count, slots, slack);
        for a in (0..count).step_by(17) {
            let d = p.best_deferred(Hour(a as u32), slots, slack).cost_g;
            let i = p.best_interruptible(Hour(a as u32), slots, slack).1;
            assert!((deferred[a] - d).abs() < 1e-9);
            assert!((interrupt[a] - i).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_bounds_accessors() {
        let p = sawtooth();
        assert_eq!(p.trace_start(), Hour(0));
        assert_eq!(p.trace_end(), Hour(14));
    }

    #[test]
    #[should_panic(expected = "runs past trace end")]
    fn baseline_past_end_panics() {
        sawtooth().baseline_cost(Hour(13), 2);
    }

    #[test]
    fn sub_hourly_planner_matches_hourly_backend() {
        // Integer-valued pseudorandom trace long enough to cross a
        // ChunkedPrefix block boundary, so both backends sum exactly.
        let mut x = 3u64;
        let values: Vec<f64> = (0..9000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 900) as f64
            })
            .collect();
        let series = TimeSeries::new(Hour(0), values);
        let five = Resolution::from_minutes(5).unwrap();
        let fine = TemporalPlanner::with_resolution(&series, five);
        assert_eq!(fine.resolution(), five);
        let flat = TemporalPlanner::new(&series);
        assert_eq!(flat.resolution(), Resolution::HOURLY);
        for arrival in [0u32, 100, 4095, 4096, 8000] {
            let d = flat.best_deferred(Hour(arrival), 24, 288);
            let f = fine.best_deferred(Hour(arrival), 24, 288);
            assert_eq!(d.start, f.start, "arrival {arrival}");
            assert_eq!(d.cost_g, f.cost_g, "arrival {arrival}");
            assert_eq!(
                flat.baseline_cost(Hour(arrival), 24),
                fine.baseline_cost(Hour(arrival), 24)
            );
            assert_eq!(
                flat.best_interruptible(Hour(arrival), 24, 288),
                fine.best_interruptible(Hour(arrival), 24, 288)
            );
        }
        let a = flat.deferral_sweep(Hour(0), 512, 24, 288);
        let b = fine.deferral_sweep(Hour(0), 512, 24, 288);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "before trace start")]
    fn arrival_before_start_panics() {
        let p = TemporalPlanner::new(&TimeSeries::new(Hour(5), vec![1.0, 2.0]));
        p.baseline_cost(Hour(4), 1);
    }
}
