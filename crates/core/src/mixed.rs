//! Mixed migratable/pinned workloads (§6.1).
//!
//! Real clouds serve a mix of migratable batch work and pinned interactive
//! work (≈ 30 % of VMs are interactive with strict SLOs). The migratable
//! fraction runs in the region with the lowest carbon-intensity *at its
//! arrival hour*; the pinned fraction runs at its origin.

use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::TraceSet;

/// Emissions per unit workload when a fraction `migratable` of every
/// region's load can chase the instantaneous global minimum.
///
/// Returns `(baseline_g, mixed_g)`: the all-local average CI and the
/// mixed-workload average CI over `year` (g·CO2eq per kWh of load).
///
/// # Panics
///
/// Panics unless `migratable` is in `[0, 1]`.
pub fn mixed_workload_emissions(set: &TraceSet, migratable: f64, year: i32) -> (f64, f64) {
    assert!(
        (0.0..=1.0).contains(&migratable),
        "migratable fraction must be in [0, 1]"
    );
    let start = year_start(year);
    let len = hours_in_year(year);
    // Per-hour global minimum CI (the destination of migratable work).
    let candidates: Vec<&decarb_traces::Region> = set.regions().iter().collect();
    let envelope = crate::spatial::lower_envelope(set, &candidates, start, len);
    let envelope_mean = envelope.mean();
    let baseline = set.global_mean(year);
    let mixed = (1.0 - migratable) * baseline + migratable * envelope_mean;
    (baseline, mixed)
}

/// Sweeps migratable fractions, returning `(fraction, reduction_g)` rows
/// for Fig. 11(a).
pub fn migratable_sweep(set: &TraceSet, fractions: &[f64], year: i32) -> Vec<(f64, f64)> {
    fractions
        .iter()
        .map(|&p| {
            let (baseline, mixed) = mixed_workload_emissions(set, p, year);
            (p, baseline - mixed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decarb_traces::builtin_dataset;

    #[test]
    fn zero_migratable_is_baseline() {
        let set = builtin_dataset();
        let (baseline, mixed) = mixed_workload_emissions(&set, 0.0, 2022);
        assert!((baseline - mixed).abs() < 1e-9);
    }

    #[test]
    fn reduction_linear_in_fraction() {
        let set = builtin_dataset();
        let rows = migratable_sweep(&set, &[0.0, 0.25, 0.5, 0.75, 1.0], 2022);
        let full = rows.last().unwrap().1;
        for (p, reduction) in &rows {
            assert!(
                (reduction - p * full).abs() < 1e-6,
                "reduction at p={p} not linear"
            );
        }
        // Full migratability reaches (slightly below) the Sweden bound
        // because the envelope dips under Sweden's mean at some hours.
        assert!(full > 300.0, "full reduction {full}");
    }

    #[test]
    fn envelope_beats_greenest_region_mean() {
        let set = builtin_dataset();
        let (baseline, mixed) = mixed_workload_emissions(&set, 1.0, 2022);
        let (_, sweden_mean) = set.greenest_region(2022);
        assert!(baseline - mixed >= baseline - sweden_mean - 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_panics() {
        let set = builtin_dataset();
        mixed_workload_emissions(&set, 1.5, 2022);
    }
}
