//! Rising renewable penetration what-ifs (§6.3).
//!
//! The paper's `add_renewables` experiment injects additional renewable
//! generation into a region's raw trace and recomputes carbon-intensity.
//! We model the same blend: if a fraction `p` of the (constant) demand is
//! newly served by renewables, the new carbon-intensity is the
//! generation-weighted mix of the old grid and the added renewables:
//!
//! ```text
//! CI'(t) = (1 − w(t)) · CI(t) + w(t) · CI_renewable
//! w(t)   = p · profile(t) / (1 − p + p · profile(t))
//! ```
//!
//! where `profile(t)` is the renewables' diurnal output shape (mean 1
//! across a day; solar-dominated, so near zero at night and > 1 at noon).
//! Adding renewables therefore *lowers the mean* and *raises the daily
//! variability* of carbon-intensity — the two effects behind the paper's
//! conclusion that a greener grid shrinks the advantage of carbon-aware
//! over carbon-agnostic scheduling.

use decarb_traces::{Hour, TimeSeries};

/// Life-cycle CI of the added renewable blend (g·CO2eq/kWh): an even
/// wind/solar split of IPCC medians (11 and 45).
pub const ADDED_RENEWABLE_CI: f64 = 28.0;

/// Share of the added renewables that follows the solar diurnal shape;
/// the remainder is flat (wind average).
const SOLAR_SHARE: f64 = 0.6;

/// The added renewables' output profile at a UTC hour, mean ≈ 1 over a
/// day. Solar output follows a half-sine between 06:00 and 18:00 local
/// time (the `lon_offset_hours` shifts UTC to local solar time).
pub fn renewable_profile(hour: Hour, lon_offset_hours: i64) -> f64 {
    let local = (hour.hour_of_day() as i64 + lon_offset_hours).rem_euclid(24) as usize;
    let solar = if (6..18).contains(&local) {
        ((local - 6) as f64 * std::f64::consts::PI / 12.0).sin()
    } else {
        0.0
    };
    // The half-sine's daily mean is (2/π)·(12/24) ≈ 0.318.
    let solar_normalized = solar / (2.0 / std::f64::consts::PI / 2.0);
    (1.0 - SOLAR_SHARE) + SOLAR_SHARE * solar_normalized
}

/// Returns `series` with an extra fraction `p` of demand served by
/// renewables, per the blend model above.
///
/// # Panics
///
/// Panics unless `0 ≤ p < 1`.
pub fn greener_trace(series: &TimeSeries, p: f64, lon_offset_hours: i64) -> TimeSeries {
    assert!(
        (0.0..1.0).contains(&p),
        "renewable fraction must be in [0, 1)"
    );
    let mut out = series.clone();
    out.map_in_place(|hour, ci| {
        let profile = renewable_profile(hour, lon_offset_hours);
        let renewable_supply = p * profile;
        let w = renewable_supply / ((1.0 - p) + renewable_supply);
        (1.0 - w) * ci + w * ADDED_RENEWABLE_CI
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize, level: f64) -> TimeSeries {
        TimeSeries::new(Hour(0), vec![level; n])
    }

    #[test]
    fn profile_mean_is_one() {
        let mean: f64 = (0..24).map(|h| renewable_profile(Hour(h), 0)).sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn profile_peaks_at_local_noon() {
        let noon = renewable_profile(Hour(12), 0);
        let midnight = renewable_profile(Hour(0), 0);
        assert!(noon > 2.0, "noon {noon}");
        assert!((midnight - (1.0 - SOLAR_SHARE)).abs() < 1e-12);
        // Longitude offset shifts the peak.
        let shifted = renewable_profile(Hour(0), 12);
        assert!((shifted - noon).abs() < 1e-9);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let base = flat(48, 400.0);
        let same = greener_trace(&base, 0.0, 0);
        assert_eq!(base, same);
    }

    #[test]
    fn mean_falls_as_renewables_grow() {
        let base = flat(24 * 30, 500.0);
        let mut last = base.mean();
        for p in [0.2, 0.4, 0.6, 0.8] {
            let greener = greener_trace(&base, p, 0);
            assert!(greener.mean() < last, "p={p}");
            last = greener.mean();
        }
        // At very high penetration the mean approaches the renewable CI.
        let nearly_green = greener_trace(&base, 0.95, 0);
        let _ = nearly_green; // p = 0.95 is valid input
        assert!(greener_trace(&base, 0.9, 0).mean() < 150.0);
    }

    #[test]
    fn variability_rises_with_renewables() {
        use decarb_stats::average_daily_cv;
        let base = flat(24 * 30, 500.0);
        let greener = greener_trace(&base, 0.5, 0);
        assert!(average_daily_cv(greener.values()) > average_daily_cv(base.values()));
    }

    #[test]
    fn blend_bounded_by_endpoints() {
        let base = flat(24 * 7, 600.0);
        let greener = greener_trace(&base, 0.5, 0);
        for (_, v) in greener.iter() {
            assert!(v <= 600.0 + 1e-9);
            assert!(v >= ADDED_RENEWABLE_CI - 1e-9);
        }
    }

    #[test]
    fn noon_greener_than_midnight() {
        let base = flat(24 * 7, 600.0);
        let greener = greener_trace(&base, 0.4, 0);
        assert!(greener.get(Hour(12)) < greener.get(Hour(0)));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn full_fraction_panics() {
        greener_trace(&flat(24, 100.0), 1.0, 0);
    }
}
