//! The carbon–performance frontier of temporal shifting.
//!
//! Every gram a deferring scheduler saves is bought with waiting: §5.2's
//! bounds trade slack for carbon, and the paper's related work ([21],
//! "the war of the efficiencies") studies exactly this tension. This
//! module sweeps the slack budget and reports, per point, the mean
//! carbon cost *and* the mean delay the optimal deferring schedule
//! actually incurs — the frontier a cluster operator picks an SLO from.

use decarb_traces::{Hour, TimeSeries};

use crate::temporal::TemporalPlanner;

/// One point of the carbon–delay frontier.
#[derive(Debug, Clone, Copy)]
pub struct FrontierPoint {
    /// Slack budget, hours.
    pub slack: usize,
    /// Mean job cost, g·CO2eq.
    pub mean_cost_g: f64,
    /// Mean start delay actually used by the optimal schedule, hours.
    pub mean_delay_h: f64,
    /// Mean slowdown ((delay + length) / length).
    pub mean_slowdown: f64,
}

/// Sweeps slack budgets for a `slots`-hour deferrable job, averaging the
/// optimal deferred cost and its realized delay over arrivals
/// `sweep_start, sweep_start + stride, …` (`count` hours of arrivals).
///
/// Delay is what the *optimal* schedule chooses, not the budget: a large
/// slack is only consumed when a deeper valley exists, so the frontier
/// shows both the price of carbon savings and how much of the budget
/// schedules actually spend.
///
/// # Panics
///
/// Panics if `slots` is zero, `stride` is zero, or any job window falls
/// outside the series.
pub fn carbon_delay_frontier(
    series: &TimeSeries,
    sweep_start: Hour,
    count: usize,
    slots: usize,
    slacks: &[usize],
    stride: usize,
) -> Vec<FrontierPoint> {
    assert!(slots > 0, "job length must be positive");
    assert!(stride > 0, "stride must be positive");
    let planner = TemporalPlanner::new(series);
    slacks
        .iter()
        .map(|&slack| {
            let mut cost = 0.0;
            let mut delay = 0.0;
            let mut n = 0usize;
            let mut a = 0usize;
            while a < count {
                let arrival = sweep_start.plus(a);
                let placement = planner.best_deferred(arrival, slots, slack);
                cost += placement.cost_g;
                delay += (placement.start.0 - arrival.0) as f64;
                n += 1;
                a += stride;
            }
            let mean_delay_h = delay / n as f64;
            FrontierPoint {
                slack,
                mean_cost_g: cost / n as f64,
                mean_delay_h,
                mean_slowdown: (mean_delay_h + slots as f64) / slots as f64,
            }
        })
        .collect()
}

/// Returns the Pareto-efficient subset of frontier points: those not
/// dominated (≤ cost *and* ≤ delay, with one strict) by any other point.
pub fn pareto_filter(points: &[FrontierPoint]) -> Vec<FrontierPoint> {
    points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                q.mean_cost_g <= p.mean_cost_g
                    && q.mean_delay_h <= p.mean_delay_h
                    && (q.mean_cost_g < p.mean_cost_g || q.mean_delay_h < p.mean_delay_h)
            })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> TimeSeries {
        let values = (0..n)
            .map(|t| 300.0 + 150.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin())
            .collect();
        TimeSeries::new(Hour(0), values)
    }

    #[test]
    fn cost_is_non_increasing_in_slack() {
        let series = wave(24 * 30);
        let frontier =
            carbon_delay_frontier(&series, Hour(0), 24 * 20, 4, &[0, 6, 12, 24, 48, 96], 7);
        for pair in frontier.windows(2) {
            assert!(pair[1].mean_cost_g <= pair[0].mean_cost_g + 1e-9);
        }
        // Zero slack means zero delay and slowdown 1.
        assert_eq!(frontier[0].mean_delay_h, 0.0);
        assert!((frontier[0].mean_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_is_bounded_by_the_budget() {
        let series = wave(24 * 30);
        let frontier = carbon_delay_frontier(&series, Hour(0), 24 * 20, 4, &[0, 12, 24], 5);
        for p in &frontier {
            assert!(p.mean_delay_h <= p.slack as f64 + 1e-9);
            assert!(p.mean_slowdown >= 1.0);
        }
    }

    #[test]
    fn savings_saturate_once_the_valley_is_reachable() {
        // On a pure 24-hour wave, slack past one full period buys nothing.
        let series = wave(24 * 40);
        let frontier = carbon_delay_frontier(&series, Hour(0), 24 * 20, 2, &[24, 48, 96], 3);
        let day = frontier[0].mean_cost_g;
        let four_days = frontier[2].mean_cost_g;
        assert!(
            (day - four_days).abs() < 1.0,
            "a 24h wave is fully exploited with 24h slack ({day} vs {four_days})"
        );
    }

    #[test]
    fn pareto_filter_removes_dominated_points() {
        let points = vec![
            FrontierPoint {
                slack: 0,
                mean_cost_g: 100.0,
                mean_delay_h: 0.0,
                mean_slowdown: 1.0,
            },
            FrontierPoint {
                slack: 12,
                mean_cost_g: 80.0,
                mean_delay_h: 4.0,
                mean_slowdown: 2.0,
            },
            // Dominated: same delay as the previous, higher cost.
            FrontierPoint {
                slack: 24,
                mean_cost_g: 90.0,
                mean_delay_h: 4.0,
                mean_slowdown: 2.0,
            },
        ];
        let efficient = pareto_filter(&points);
        assert_eq!(efficient.len(), 2);
        assert!(efficient.iter().all(|p| p.slack != 24));
    }

    #[test]
    fn real_frontier_is_already_efficient() {
        // The optimal planner's sweep cannot produce a dominated point
        // with *strictly* more cost at equal-or-more delay… unless two
        // slacks tie; the filter keeps at least the extremes.
        let series = wave(24 * 30);
        let frontier = carbon_delay_frontier(&series, Hour(0), 24 * 15, 4, &[0, 12, 24, 48], 7);
        let efficient = pareto_filter(&frontier);
        assert!(efficient.iter().any(|p| p.slack == 0));
        assert!(!efficient.is_empty());
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let series = wave(48);
        carbon_delay_frontier(&series, Hour(0), 10, 2, &[0], 0);
    }
}
