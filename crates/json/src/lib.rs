//! A minimal JSON value model, serializer, and parser.
//!
//! The workspace builds in environments with no route to a crates
//! registry, so `serde`/`serde_json` are not available. Experiment
//! results are *written* as JSON (for `repro --json` and `decarb-cli
//! run --json`) through a [`Value`] tree with escaping, compact and
//! pretty rendering, and a [`ToJson`] conversion trait; the CI
//! emissions-regression gate also reads reports back through
//! [`parse`].
//!
//! # Examples
//!
//! ```
//! use decarb_json::Value;
//!
//! let v = Value::object([
//!     ("id", Value::from("fig5")),
//!     ("rows", Value::array([Value::from(1.5), Value::from(2)])),
//! ]);
//! assert_eq!(v.to_string(), r#"{"id":"fig5","rows":[1.5,2]}"#);
//! ```

use std::fmt;

pub mod envelope;
pub mod merge;
pub mod parse;

pub use envelope::diagnostic_object;
pub use merge::merge_keyed;
pub use parse::{parse, JsonParseError};

/// A JSON value: the full JSON data model.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so
/// rendered output is deterministic and mirrors struct field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats render as `null` (matching
    /// `serde_json`'s behavior for `f64::NAN`/infinities).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an array from anything iterable over values.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Array(items.into_iter().collect())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out
    }

    /// Renders with two-space indentation into a caller-owned buffer,
    /// appending to whatever `out` already holds. The placement
    /// service's connection loop serializes every response through
    /// this so its steady state reuses one `String` instead of
    /// allocating per request.
    pub fn pretty_into(&self, out: &mut String) {
        self.render(out, Some(0));
    }

    /// Compact (single-line) rendering into a caller-owned buffer,
    /// appending to whatever `out` already holds.
    pub fn compact_into(&self, out: &mut String) {
        self.render(out, None);
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => render_number(*n, out),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                render_seq(out, indent, '[', ']', items.len(), |out, i, inner| {
                    items[i].render(out, inner);
                })
            }
            Value::Object(pairs) => {
                render_seq(out, indent, '{', '}', pairs.len(), |out, i, inner| {
                    let (key, value) = &pairs[i];
                    render_string(key, out);
                    out.push(':');
                    if inner.is_some() {
                        out.push(' ');
                    }
                    value.render(out, inner);
                })
            }
        }
    }
}

/// Shared array/object rendering: compact when `indent` is `None`,
/// otherwise one element per line at `indent + 1` levels.
fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn render_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(Value::Null, Into::into)
    }
}

/// Conversion into a JSON [`Value`] — the workspace's analogue of
/// `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(3.5).to_string(), "3.5");
        assert_eq!(Value::from(42i64).to_string(), "42");
        assert_eq!(Value::from(f64::NAN).to_string(), "null");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn integers_do_not_grow_decimal_points() {
        assert_eq!(Value::from(8760usize).to_string(), "8760");
        assert_eq!(Value::from(-3.0).to_string(), "-3");
        assert_eq!(Value::from(1e20).to_string(), "100000000000000000000");
    }

    #[test]
    fn nested_compact_rendering() {
        let v = Value::object([
            ("id", Value::from("fig1")),
            ("empty", Value::array([])),
            (
                "rows",
                Value::array([Value::from(vec![1.0, 2.5]), Value::Null]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"id":"fig1","empty":[],"rows":[[1,2.5],null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::object([("a", Value::array([Value::from(1i64)]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn render_into_appends_to_a_reused_buffer() {
        let v = Value::object([("a", Value::from(1i64))]);
        let mut buf = String::with_capacity(64);
        v.pretty_into(&mut buf);
        assert_eq!(buf, v.pretty());
        buf.clear();
        v.compact_into(&mut buf);
        assert_eq!(buf, v.to_string());
        // Appending semantics: the caller owns clearing.
        v.compact_into(&mut buf);
        assert_eq!(buf, format!("{v}{v}"));
    }

    #[test]
    fn object_get_finds_keys() {
        let v = Value::object([("x", Value::from(1i64))]);
        assert_eq!(v.get("x"), Some(&Value::Number(1.0)));
        assert_eq!(v.get("y"), None);
        assert_eq!(Value::Null.get("x"), None);
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Value::from(None::<f64>), Value::Null);
        assert_eq!(Value::from(Some("s")), Value::from("s"));
        let v: Value = vec![1i64, 2].into();
        assert_eq!(v.to_string(), "[1,2]");
    }
}
