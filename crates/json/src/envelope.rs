//! The canonical diagnostics envelope shared by every JSON emitter.
//!
//! `decarb-cli analyze --json`, `decarb-cli scenario check --json`, and
//! the serve daemon's error bodies all publish diagnostics as JSON
//! objects. Consumers (CI gates, dashboards) diff these payloads
//! byte-for-byte, so the field order is part of the contract: **`file`,
//! `line`, `rule`, `message`** — documented in `docs/API.md` and pinned
//! by tests here and in `decarb-analyze`. Producing the object in one
//! place keeps the emitters from drifting apart.

use crate::Value;

/// Builds one diagnostic object in the canonical field order
/// (`file`, `line`, `rule`, `message`).
pub fn diagnostic_object(file: &str, line: usize, rule: &str, message: &str) -> Value {
    Value::object([
        ("file", Value::from(file)),
        ("line", Value::from(line as f64)),
        ("rule", Value::from(rule)),
        ("message", Value::from(message)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_is_pinned() {
        // The serialized order is the documented envelope contract;
        // this test fails if anyone reorders the fields.
        let obj = diagnostic_object("crates/sim/src/engine.rs", 42, "no-panic", "`.unwrap()`");
        assert_eq!(
            obj.to_string(),
            r#"{"file":"crates/sim/src/engine.rs","line":42,"rule":"no-panic","message":"`.unwrap()`"}"#
        );
    }

    #[test]
    fn message_is_escaped() {
        let obj = diagnostic_object("a.rs", 1, "hot-path", "says \"hi\"");
        assert_eq!(
            obj.to_string(),
            r#"{"file":"a.rs","line":1,"rule":"hot-path","message":"says \"hi\""}"#
        );
    }
}
