//! Merging keyed report documents.
//!
//! The sharded sweep pipeline in `decarb-sim` recombines per-shard
//! `scenario run --json` outputs; the generic half of that — flattening
//! report documents into `(key, object)` pairs with shape validation —
//! lives here so any JSON consumer can reuse it.

use crate::Value;

/// Flattens report documents into `(key, object)` pairs, in document
/// order.
///
/// Each document must be a single object or an array of objects, and
/// every object must carry a string-valued `key` field. Duplicate keys
/// *within one document* are an error (the caller decides what
/// duplicates across documents mean). Returns a human-readable message
/// on shape violations.
pub fn merge_keyed(docs: &[Value], key: &str) -> Result<Vec<(String, Value)>, String> {
    let mut items: Vec<(String, Value)> = Vec::new();
    for doc in docs {
        let objects: Vec<&Value> = match doc {
            Value::Array(entries) => entries.iter().collect(),
            object @ Value::Object(_) => vec![object],
            other => {
                return Err(format!(
                    "expected an object or array of objects, got {}",
                    kind_of(other)
                ))
            }
        };
        let mut seen_in_doc: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for object in objects {
            let Value::Object(_) = object else {
                return Err(format!("array entry is {}, not an object", kind_of(object)));
            };
            let Some(Value::String(value)) = object.get(key) else {
                return Err(format!("entry without a string `{key}` field"));
            };
            if !seen_in_doc.insert(value.as_str()) {
                return Err(format!("duplicate `{key}` `{value}` within one document"));
            }
            items.push((value.clone(), object.clone()));
        }
    }
    Ok(items)
}

/// Short type label for error messages.
fn kind_of(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> Value {
        Value::object([("name", Value::from(name)), ("x", Value::from(1.0))])
    }

    #[test]
    fn flattens_objects_and_arrays_in_order() {
        let docs = [
            Value::Array(vec![entry("a"), entry("b")]),
            entry("c"),
            Value::Array(vec![]),
        ];
        let items = merge_keyed(&docs, "name").unwrap();
        let keys: Vec<&str> = items.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
        assert_eq!(items[0].1.get("x"), Some(&Value::from(1.0)));
    }

    #[test]
    fn rejects_malformed_shapes() {
        for (doc, needle) in [
            (Value::from(1.0), "expected an object or array"),
            (Value::Array(vec![Value::from("x")]), "not an object"),
            (
                Value::Array(vec![Value::object([("id", Value::from(1.0))])]),
                "without a string `name`",
            ),
            (
                Value::Array(vec![entry("a"), entry("a")]),
                "duplicate `name` `a` within",
            ),
        ] {
            let err = merge_keyed(&[doc], "name").unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn duplicates_across_documents_are_allowed_here() {
        // Cross-document duplicate semantics belong to the caller.
        let items = merge_keyed(&[entry("a"), entry("a")], "name").unwrap();
        assert_eq!(items.len(), 2);
    }
}
