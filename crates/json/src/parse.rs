//! A recursive-descent JSON parser for [`Value`].
//!
//! The crate started write-only (experiments only ever *emitted* JSON),
//! but the CI emissions-regression gate needs to read reports back:
//! `decarb-cli scenario diff` parses both the freshly produced report
//! and the committed golden snapshot. The parser accepts exactly the
//! JSON data model [`Value`] renders — no comments, no trailing commas
//! — and reports errors with a byte offset.

use crate::Value;

/// Maximum array/object nesting accepted before the parser bails (keeps
/// hostile inputs from overflowing the stack).
const MAX_DEPTH: usize = 256;

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses `text` into a [`Value`]. The whole input must be one JSON
/// document (trailing whitespace is allowed, trailing content is not).
pub fn parse(text: &str) -> Result<Value, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    /// Consumes `word` if it is next (used for `true`/`false`/`null`).
    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 256 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Copy one full UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the four hex digits of a `\uXXXX` escape (the `\u` is
    /// already consumed), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.error("bad surrogate pair"));
                }
            }
            return Err(self.error("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&high) {
            return Err(self.error("unpaired low surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.error("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("bad \\u escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("non-hex \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits after `.`"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected exponent digits"));
            }
            self.digits();
        }
        // The scanner only advanced over ASCII digit/sign/exponent
        // bytes, but surface a parse error rather than trusting that.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("non-ASCII bytes in number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.error(format!("unparseable number `{text}`")))?;
        Ok(Value::Number(n))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

/// Returns the byte length of the UTF-8 sequence starting with `lead`.
fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.25e2").unwrap(), Value::Number(-325.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn containers_parse() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::from("d")));
        let Some(Value::Array(items)) = v.get("a") else {
            panic!("a is an array");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("b"), Some(&Value::Null));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn escapes_parse() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap(),
            Value::from("a\n\t\"\\Aé")
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::from("😀"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"grön el\"").unwrap(), Value::from("grön el"));
    }

    #[test]
    fn round_trips_rendered_values() {
        let original = Value::object([
            ("name", Value::from("batch-deferral-europe")),
            ("emissions_g", Value::from(123456.789)),
            ("jobs", Value::from(96)),
            ("flags", Value::array([Value::Bool(true), Value::Null])),
            ("nested", Value::object([("k", Value::from("v\n\"q\""))])),
        ]);
        assert_eq!(parse(&original.to_string()).unwrap(), original);
        assert_eq!(parse(&original.pretty()).unwrap(), original);
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "expected `\""),
            ("[1,]", "unexpected byte"),
            ("{\"a\" 1}", "expected `:`"),
            ("[1 2]", "expected `,` or `]`"),
            ("\"abc", "unterminated"),
            ("01", "trailing content"),
            ("1.e3", "digits after `.`"),
            ("\"\\q\"", "bad escape"),
            ("\"\\ud800x\"", "unpaired high surrogate"),
            ("nulll", "trailing content"),
            ("tru", "expected `true`"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?}: got `{}`, wanted `{needle}`",
                err.message
            );
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
        // 200 levels are fine.
        let ok = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn error_display_includes_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(format!("{err}").contains("byte 4"));
    }
}
