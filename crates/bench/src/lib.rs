//! `decarb-bench` — benchmark harness.
//!
//! Three bench targets live under `benches/` (all `harness = false`;
//! the container this workspace builds in has no route to a crates
//! registry, so the timing loop below stands in for criterion):
//!
//! * `figures` — one benchmark group per paper table/figure, timing the
//!   computation behind each at full or reduced scale.
//! * `extensions` — forecasting models, elastic scaling, flexible grid
//!   load, merit-order dispatch, and the online simulator.
//! * `kernels` — ablation benchmarks for the design choices documented
//!   in `DESIGN.md` §4: sliding-window minimum vs naive rescan, the
//!   two-multiset k-smallest structure vs per-window sorting, prefix
//!   sums vs direct summation, and FFT periodograms vs brute-force ACF.
//!
//! Usage: `cargo bench -p decarb-bench` runs everything;
//! `cargo bench -p decarb-bench --bench kernels -- deferral` filters by
//! substring; `DECARB_BENCH_QUICK=1` shrinks the per-benchmark time
//! budget for smoke runs; `DECARB_BENCH_PRINT=1` additionally prints
//! each figure's regenerated tables so a bench log doubles as a
//! reproduction run.

use std::time::{Duration, Instant};

/// Returns the shared experiment context used by the bench targets.
pub fn bench_context() -> decarb_experiments::Context {
    decarb_experiments::Context::default()
}

/// Whether the bench log should also print each experiment's tables.
pub fn print_tables() -> bool {
    std::env::var("DECARB_BENCH_PRINT").is_ok_and(|v| v != "0")
}

/// A minimal benchmark runner: measures each closure over an adaptive
/// iteration count within a fixed per-benchmark time budget and prints
/// one aligned `name  mean-per-iter (iters)` line.
///
/// # Regression check mode
///
/// Setting `DECARB_BENCH_CHECK=<path to BASELINE.md>` arms a threshold
/// gate: every measured row whose name starts with
/// `DECARB_BENCH_CHECK_FILTER` (default `kernels/sim/`) and appears in
/// the baseline file is compared against the recorded mean, and
/// [`Harness::finish`] returns a nonzero exit code when any row runs
/// more than `DECARB_BENCH_CHECK_MAX_RATIO` (default 2.0) times slower
/// — the CI "Bench smoke" gate.
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    check: Option<CheckConfig>,
    results: std::cell::RefCell<Vec<(String, Duration)>>,
}

/// The armed regression gate: baseline rows plus thresholds.
struct CheckConfig {
    path: String,
    prefix: String,
    max_ratio: f64,
    baseline: std::collections::HashMap<String, Duration>,
}

/// Parses `name  value unit (N iters)` rows out of a BASELINE.md file.
/// Later occurrences of a name override earlier ones, so re-recorded
/// addendum rows win over the original table.
pub fn parse_baseline(text: &str) -> std::collections::HashMap<String, Duration> {
    let mut rows = std::collections::HashMap::new();
    for line in text.lines() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let [name, value, unit, iters, tail] = tokens[..] else {
            continue;
        };
        if !iters.starts_with('(') || tail != "iters)" {
            continue;
        }
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let nanos = match unit {
            "ns" => value,
            "us" => value * 1e3,
            "ms" => value * 1e6,
            "s" => value * 1e9,
            _ => continue,
        };
        rows.insert(name.to_string(), Duration::from_nanos(nanos as u64));
    }
    rows
}

impl Harness {
    /// Creates the runner for one bench target, reading the CLI filter
    /// (first non-flag argument after the ones Cargo passes), the
    /// `DECARB_BENCH_QUICK` budget override, and the
    /// `DECARB_BENCH_CHECK*` regression-gate configuration.
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .filter(|a| !a.is_empty());
        let quick = std::env::var("DECARB_BENCH_QUICK").is_ok_and(|v| v != "0");
        let budget = if quick {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(900)
        };
        let check = std::env::var("DECARB_BENCH_CHECK")
            .ok()
            .filter(|path| !path.is_empty())
            .map(|path| {
                // Cargo runs bench binaries from the package directory;
                // fall back to workspace-root-relative resolution so
                // `DECARB_BENCH_CHECK=crates/bench/BASELINE.md` works
                // from the repository root too.
                let candidates = [
                    std::path::PathBuf::from(&path),
                    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                        .join("../../")
                        .join(&path),
                ];
                let text = candidates
                    .iter()
                    .find_map(|p| std::fs::read_to_string(p).ok())
                    .unwrap_or_else(|| panic!("DECARB_BENCH_CHECK={path}: file not found"));
                let prefix = std::env::var("DECARB_BENCH_CHECK_FILTER")
                    .unwrap_or_else(|_| "kernels/sim/".to_string());
                let max_ratio = std::env::var("DECARB_BENCH_CHECK_MAX_RATIO")
                    .ok()
                    .and_then(|raw| raw.parse().ok())
                    .unwrap_or(2.0);
                CheckConfig {
                    baseline: parse_baseline(&text),
                    path,
                    prefix,
                    max_ratio,
                }
            });
        println!("== bench suite: {suite} ==");
        Self {
            filter,
            budget,
            check,
            results: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Times `f` and prints its mean per-iteration runtime.
    ///
    /// The first (warmup) call sizes the iteration count so the
    /// measured loop fits the time budget; single calls slower than the
    /// budget run exactly once more.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(needle) = &self.filter {
            if !name.contains(needle.as_str()) {
                return;
            }
        }
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let run = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let mean = run.elapsed() / iters;
        println!("{name:<58} {:>12} ({iters} iters)", format_duration(mean));
        self.results.borrow_mut().push((name.to_string(), mean));
    }

    /// Applies the regression gate (when armed) and returns the process
    /// exit code: `0` clean, `1` when any checked row regressed beyond
    /// the ratio threshold. Bench mains end with
    /// `std::process::exit(h.finish())`.
    pub fn finish(&self) -> i32 {
        let Some(check) = &self.check else {
            return 0;
        };
        let results = self.results.borrow();
        let mut checked = 0usize;
        let mut failures = 0usize;
        println!(
            "== bench check: `{}*` vs {} (fail > {:.1}x) ==",
            check.prefix, check.path, check.max_ratio
        );
        for (name, measured) in results.iter() {
            if !name.starts_with(check.prefix.as_str()) {
                continue;
            }
            let Some(baseline) = check.baseline.get(name) else {
                println!("{name:<58} no baseline row — skipped");
                continue;
            };
            checked += 1;
            let ratio = measured.as_secs_f64() / baseline.as_secs_f64().max(1e-12);
            let verdict = if ratio > check.max_ratio {
                failures += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{name:<58} {:>12} vs {:>12} ({ratio:.2}x) {verdict}",
                format_duration(*measured),
                format_duration(*baseline),
            );
        }
        if checked == 0 {
            println!("no rows matched the check filter — nothing gated");
        }
        if failures > 0 {
            println!("{failures} of {checked} checked rows regressed beyond the threshold");
            1
        } else {
            0
        }
    }
}

/// Formats a duration with an SI-appropriate unit.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units_scale() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0 us");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.0 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn baseline_parser_reads_bench_rows_and_prefers_later_entries() {
        let text = "\
# Benchmark baseline

```text
kernels/sim/run_year                        2.2 ms (401 iters)
kernels/prefix/prefix_sum_queries            544 ns (10000 iters)
kernels/ksmallest/two_multiset_sliding     582.1 us (1336 iters)
slow/row                                    2.00 s (2 iters)
```

prose lines are ignored, as are before/after tables:
extensions/sim/year     3.0 ms      1.7 ms   (1.76x)

```text
kernels/sim/run_year                        1.1 ms (800 iters)
```
";
        let rows = parse_baseline(text);
        assert_eq!(rows.len(), 4);
        // The re-recorded addendum value wins.
        assert_eq!(
            rows["kernels/sim/run_year"],
            Duration::from_nanos(1_100_000)
        );
        assert_eq!(
            rows["kernels/prefix/prefix_sum_queries"],
            Duration::from_nanos(544)
        );
        assert_eq!(
            rows["kernels/ksmallest/two_multiset_sliding"],
            Duration::from_nanos(582_100)
        );
        assert_eq!(rows["slow/row"], Duration::from_secs(2));
        assert!(!rows.contains_key("extensions/sim/year"));
    }

    #[test]
    fn baseline_parser_survives_the_real_baseline_file() {
        let text = include_str!("../BASELINE.md");
        let rows = parse_baseline(text);
        assert!(rows.len() > 30, "found {} rows", rows.len());
        assert!(rows.contains_key("kernels/sim/scenario_batch_deferral_europe"));
    }
}
