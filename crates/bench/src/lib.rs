//! `decarb-bench` — Criterion benchmark harness.
//!
//! Two bench targets live under `benches/`:
//!
//! * `figures` — one benchmark group per paper table/figure. Each group
//!   prints the regenerated rows/series once (so `cargo bench` doubles as
//!   a reproduction run) and then times the computation that produces
//!   them, at full or reduced scale depending on cost.
//! * `kernels` — ablation benchmarks for the design choices documented in
//!   `DESIGN.md` §4: sliding-window minimum vs naive rescan, the
//!   two-multiset k-smallest structure vs per-window sorting, prefix sums
//!   vs direct summation, and FFT periodograms vs brute-force ACF scans.

/// Returns the shared experiment context used by the bench targets.
pub fn bench_context() -> decarb_experiments::Context {
    decarb_experiments::Context::default()
}
