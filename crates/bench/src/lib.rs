//! `decarb-bench` — benchmark harness.
//!
//! Three bench targets live under `benches/` (all `harness = false`;
//! the container this workspace builds in has no route to a crates
//! registry, so the timing loop below stands in for criterion):
//!
//! * `figures` — one benchmark group per paper table/figure, timing the
//!   computation behind each at full or reduced scale.
//! * `extensions` — forecasting models, elastic scaling, flexible grid
//!   load, merit-order dispatch, and the online simulator.
//! * `kernels` — ablation benchmarks for the design choices documented
//!   in `DESIGN.md` §4: sliding-window minimum vs naive rescan, the
//!   two-multiset k-smallest structure vs per-window sorting, prefix
//!   sums vs direct summation, and FFT periodograms vs brute-force ACF.
//!
//! Usage: `cargo bench -p decarb-bench` runs everything;
//! `cargo bench -p decarb-bench --bench kernels -- deferral` filters by
//! substring; `DECARB_BENCH_QUICK=1` shrinks the per-benchmark time
//! budget for smoke runs; `DECARB_BENCH_PRINT=1` additionally prints
//! each figure's regenerated tables so a bench log doubles as a
//! reproduction run.

use std::time::{Duration, Instant};

/// Returns the shared experiment context used by the bench targets.
pub fn bench_context() -> decarb_experiments::Context {
    decarb_experiments::Context::default()
}

/// Whether the bench log should also print each experiment's tables.
pub fn print_tables() -> bool {
    std::env::var("DECARB_BENCH_PRINT").is_ok_and(|v| v != "0")
}

/// A minimal benchmark runner: measures each closure over an adaptive
/// iteration count within a fixed per-benchmark time budget and prints
/// one aligned `name  mean-per-iter (iters)` line.
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
}

impl Harness {
    /// Creates the runner for one bench target, reading the CLI filter
    /// (first non-flag argument after the ones Cargo passes) and the
    /// `DECARB_BENCH_QUICK` budget override.
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .filter(|a| !a.is_empty());
        let quick = std::env::var("DECARB_BENCH_QUICK").is_ok_and(|v| v != "0");
        let budget = if quick {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(900)
        };
        println!("== bench suite: {suite} ==");
        Self { filter, budget }
    }

    /// Times `f` and prints its mean per-iteration runtime.
    ///
    /// The first (warmup) call sizes the iteration count so the
    /// measured loop fits the time budget; single calls slower than the
    /// budget run exactly once more.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(needle) = &self.filter {
            if !name.contains(needle.as_str()) {
                return;
            }
        }
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let run = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let mean = run.elapsed() / iters;
        println!("{name:<58} {:>12} ({iters} iters)", format_duration(mean));
    }
}

/// Formats a duration with an SI-appropriate unit.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units_scale() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0 us");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.0 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
