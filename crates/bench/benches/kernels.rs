//! Ablation benchmarks for the design choices called out in DESIGN.md §4.
//!
//! Each pair compares the optimized kernel used by `decarb-core` against
//! the naive alternative it replaced, on identical inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use decarb_core::ksmallest::SlidingKSmallest;
use decarb_core::temporal::TemporalPlanner;
use decarb_stats::autocorr::autocorrelation;
use decarb_stats::periodicity::detect_periods;
use decarb_traces::rng::Xoshiro256;
use decarb_traces::{Hour, TimeSeries};

fn synthetic_trace(n: usize) -> Vec<f64> {
    let mut rng = Xoshiro256::seeded(0xBE7C);
    (0..n)
        .map(|t| {
            300.0 + 120.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin() + 40.0 * rng.normal()
        })
        .map(|v| v.max(1.0))
        .collect()
}

/// Naive deferral: rescan the whole slack window per arrival.
fn naive_deferral_sweep(values: &[f64], count: usize, slots: usize, slack: usize) -> Vec<f64> {
    (0..count)
        .map(|a| {
            let last = (a + slack).min(values.len() - slots);
            (a..=last)
                .map(|s| values[s..s + slots].iter().sum())
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Naive interruptibility: sort every window.
fn naive_interruptible_sweep(values: &[f64], count: usize, slots: usize, slack: usize) -> Vec<f64> {
    (0..count)
        .map(|a| {
            let end = (a + slots + slack).min(values.len());
            let mut window = values[a..end].to_vec();
            window.sort_by(f64::total_cmp);
            window.iter().take(slots).sum()
        })
        .collect()
}

fn bench_kernel_deferral(c: &mut Criterion) {
    let values = synthetic_trace(24 * 120);
    let series = TimeSeries::new(Hour(0), values.clone());
    let planner = TemporalPlanner::new(&series);
    let slots = 24;
    let slack = 168;
    let count = values.len() - slots - slack;
    let mut group = c.benchmark_group("bench_kernel_deferral");
    group.bench_function("monotonic_deque", |b| {
        b.iter(|| black_box(planner.deferral_sweep(Hour(0), count, slots, slack)))
    });
    group.bench_function("naive_rescan", |b| {
        b.iter(|| black_box(naive_deferral_sweep(&values, count, slots, slack)))
    });
    group.finish();
}

fn bench_kernel_ksmallest(c: &mut Criterion) {
    let values = synthetic_trace(24 * 120);
    let series = TimeSeries::new(Hour(0), values.clone());
    let planner = TemporalPlanner::new(&series);
    let slots = 24;
    let slack = 168;
    let count = values.len() - slots - slack;
    let mut group = c.benchmark_group("bench_kernel_ksmallest");
    group.bench_function("two_multiset_sliding", |b| {
        b.iter(|| black_box(planner.interruptible_sweep(Hour(0), count, slots, slack)))
    });
    group.bench_function("sort_per_window", |b| {
        b.iter(|| black_box(naive_interruptible_sweep(&values, count, slots, slack)))
    });
    group.finish();
}

fn bench_kernel_prefix(c: &mut Criterion) {
    let values = synthetic_trace(8760);
    let series = TimeSeries::new(Hour(0), values.clone());
    let prefix = series.prefix_sum();
    let mut group = c.benchmark_group("bench_kernel_prefix");
    group.bench_function("prefix_sum_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for from in (0..8000).step_by(7) {
                acc += prefix.sum(Hour(from as u32), 168);
            }
            black_box(acc)
        })
    });
    group.bench_function("direct_summation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for from in (0..8000).step_by(7) {
                acc += values[from..from + 168].iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_kernel_period(c: &mut Criterion) {
    let values = synthetic_trace(8760);
    let mut group = c.benchmark_group("bench_kernel_period");
    group.sample_size(20);
    group.bench_function("fft_periodogram_detect", |b| {
        b.iter(|| black_box(detect_periods(&values, 0.2)))
    });
    group.bench_function("brute_acf_scan", |b| {
        b.iter(|| {
            // Scan every candidate lag up to a week.
            let best = (2..=168)
                .map(|lag| (lag, autocorrelation(&values, lag)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            black_box(best)
        })
    });
    group.finish();
}

fn bench_sliding_structure_scaling(c: &mut Criterion) {
    let values = synthetic_trace(20_000);
    let mut group = c.benchmark_group("bench_sliding_structure_scaling");
    group.sample_size(20);
    for window in [48usize, 336, 2048] {
        group.bench_with_input(BenchmarkId::new("k16", window), &window, |b, &window| {
            b.iter(|| {
                let mut s = SlidingKSmallest::new(16);
                let mut acc = 0.0;
                for i in 0..values.len() {
                    s.insert(values[i]);
                    if i >= window {
                        s.remove(values[i - window]);
                    }
                    acc += s.k_sum();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_kernel_deferral,
    bench_kernel_ksmallest,
    bench_kernel_prefix,
    bench_kernel_period,
    bench_sliding_structure_scaling
);
criterion_main!(kernels);
