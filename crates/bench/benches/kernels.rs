//! Ablation benchmarks for the design choices called out in DESIGN.md §4.
//!
//! Each pair compares the optimized kernel used by `decarb-core` against
//! the naive alternative it replaced, on identical inputs.

use std::hint::black_box;

use decarb_bench::Harness;
use decarb_core::ksmallest::SlidingKSmallest;
use decarb_core::temporal::TemporalPlanner;
use decarb_sim::{CarbonAgnostic, SimConfig, Simulator, ThresholdSuspend};
use decarb_stats::autocorr::autocorrelation;
use decarb_stats::periodicity::detect_periods;
use decarb_traces::rng::Xoshiro256;
use decarb_traces::time::year_start;
use decarb_traces::{builtin_dataset, Hour, RegionId, TimeSeries};
use decarb_workloads::{Job, Slack};

fn synthetic_trace(n: usize) -> Vec<f64> {
    let mut rng = Xoshiro256::seeded(0xBE7C);
    (0..n)
        .map(|t| {
            300.0 + 120.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin() + 40.0 * rng.normal()
        })
        .map(|v| v.max(1.0))
        .collect()
}

/// Naive deferral: rescan the whole slack window per arrival.
fn naive_deferral_sweep(values: &[f64], count: usize, slots: usize, slack: usize) -> Vec<f64> {
    (0..count)
        .map(|a| {
            let last = (a + slack).min(values.len() - slots);
            (a..=last)
                .map(|s| values[s..s + slots].iter().sum())
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Naive interruptibility: sort every window.
fn naive_interruptible_sweep(values: &[f64], count: usize, slots: usize, slack: usize) -> Vec<f64> {
    (0..count)
        .map(|a| {
            let end = (a + slots + slack).min(values.len());
            let mut window = values[a..end].to_vec();
            window.sort_by(f64::total_cmp);
            window.iter().take(slots).sum()
        })
        .collect()
}

fn bench_kernel_deferral(h: &Harness) {
    let values = synthetic_trace(24 * 120);
    let series = TimeSeries::new(Hour(0), values.clone());
    let planner = TemporalPlanner::new(&series);
    let slots = 24;
    let slack = 168;
    let count = values.len() - slots - slack;
    h.bench("kernels/deferral/monotonic_deque", || {
        black_box(planner.deferral_sweep(Hour(0), count, slots, slack))
    });
    h.bench("kernels/deferral/naive_rescan", || {
        black_box(naive_deferral_sweep(&values, count, slots, slack))
    });
}

fn bench_kernel_ksmallest(h: &Harness) {
    let values = synthetic_trace(24 * 120);
    let series = TimeSeries::new(Hour(0), values.clone());
    let planner = TemporalPlanner::new(&series);
    let slots = 24;
    let slack = 168;
    let count = values.len() - slots - slack;
    h.bench("kernels/ksmallest/two_multiset_sliding", || {
        black_box(planner.interruptible_sweep(Hour(0), count, slots, slack))
    });
    h.bench("kernels/ksmallest/sort_per_window", || {
        black_box(naive_interruptible_sweep(&values, count, slots, slack))
    });
}

fn bench_kernel_prefix(h: &Harness) {
    let values = synthetic_trace(8760);
    let series = TimeSeries::new(Hour(0), values.clone());
    let prefix = series.prefix_sum();
    h.bench("kernels/prefix/prefix_sum_queries", || {
        let mut acc = 0.0;
        for from in (0..8000).step_by(7) {
            acc += prefix.sum(Hour(from as u32), 168);
        }
        black_box(acc)
    });
    h.bench("kernels/prefix/direct_summation", || {
        let mut acc = 0.0;
        for from in (0..8000).step_by(7) {
            acc += values[from..from + 168].iter().sum::<f64>();
        }
        black_box(acc)
    });
}

fn bench_kernel_period(h: &Harness) {
    let values = synthetic_trace(8760);
    h.bench("kernels/period/fft_periodogram_detect", || {
        black_box(detect_periods(&values, 0.2))
    });
    h.bench("kernels/period/brute_acf_scan", || {
        // Scan every candidate lag up to a week.
        let best = (2..=168)
            .map(|lag| (lag, autocorrelation(&values, lag)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        black_box(best)
    });
}

fn bench_sliding_structure_scaling(h: &Harness) {
    let values = synthetic_trace(20_000);
    for window in [48usize, 336, 2048] {
        h.bench(&format!("kernels/sliding_scaling/k16/{window}"), || {
            let mut s = SlidingKSmallest::new(16);
            let mut acc = 0.0;
            for i in 0..values.len() {
                s.insert(values[i]);
                if i >= window {
                    s.remove(values[i - window]);
                }
                acc += s.k_sum();
            }
            black_box(acc)
        });
    }
}

/// The `Simulator::run` hot path at scenario-matrix scale: a year of
/// hourly steps over five datacenters with 150 interruptible jobs.
/// Tracks the placement (job move, not clone), per-step CI buffer, and
/// hoisted-series-lookup optimizations.
fn bench_kernel_sim(h: &Harness) {
    let data = builtin_dataset();
    let regions: Vec<RegionId> = ["US-CA", "DE", "GB", "SE", "IN-WE"]
        .iter()
        .map(|c| data.id_of(c).expect("bench region"))
        .collect();
    let start = year_start(2022);
    let jobs: Vec<Job> = (0..150u64)
        .map(|i| {
            let origin = regions[(i % 5) as usize];
            Job::batch(
                i,
                origin,
                start.plus(11 + (i as usize / 5) * 263),
                24.0,
                Slack::Week,
            )
            .with_interruptible()
        })
        .collect();
    h.bench("kernels/sim/run_year_5dc_150jobs_agnostic", || {
        let mut sim = Simulator::new(&data, &regions, SimConfig::new(start, 8760, 64));
        black_box(sim.run(&mut CarbonAgnostic, &jobs))
    });
    h.bench("kernels/sim/run_year_5dc_150jobs_threshold", || {
        let mut sim = Simulator::new(&data, &regions, SimConfig::new(start, 8760, 64));
        black_box(sim.run(&mut ThresholdSuspend::default(), &jobs))
    });
    h.bench("kernels/sim/scenario_batch_deferral_europe", || {
        let scenario = decarb_sim::find_scenario("batch-deferral-europe").expect("built-in");
        black_box(scenario.run(&data))
    });
}

/// The dataset's region-resolution paths: the string edge
/// (`series(code)`, one hash + map probe per call) against the dense
/// interned path (`series_by_id`, one bounds-checked index) the
/// simulator's step loop now runs on. 123 regions × 1000 rounds.
fn bench_region_lookup(h: &Harness) {
    let data = builtin_dataset();
    let codes: Vec<String> = data.regions().iter().map(|r| r.code.clone()).collect();
    let ids: Vec<RegionId> = data.ids().collect();
    h.bench("kernels/traces/lookup_by_code_123x1000", || {
        let mut acc = 0usize;
        for _ in 0..1000 {
            for code in &codes {
                acc += data.series(code).expect("known code").len();
            }
        }
        black_box(acc)
    });
    h.bench("kernels/traces/lookup_by_id_123x1000", || {
        let mut acc = 0usize;
        for _ in 0..1000 {
            for &id in &ids {
                acc += data.series_by_id(id).len();
            }
        }
        black_box(acc)
    });
}

/// The sub-hourly tentpole's throughput claim: the same year / five
/// datacenters / 150 jobs as `kernels/sim/run_year_5dc_150jobs_agnostic`,
/// but on a 5-minute axis (105,120 slots per trace, 12× denser).
/// Event-driven stepping must hold the denser axis within ~3× the
/// hourly row's wall-clock (acceptance bar recorded in BASELINE.md);
/// the slot-stepped row is the reference semantics it replaced. The
/// core row measures the planner's deferral query on the chunked
/// prefix backend at the same 105k-sample scale.
fn bench_subhourly(h: &Harness) {
    use decarb_sim::Stepping;
    use decarb_traces::time::hours_in_year;
    use decarb_traces::{Resolution, TraceSet};

    let data = builtin_dataset();
    let start = year_start(2022);
    let hours = hours_in_year(2022);
    let codes = ["US-CA", "DE", "GB", "SE", "IN-WE"];
    let year = TraceSet::from_series(
        data.iter()
            .filter(|(r, _)| codes.contains(&r.code.as_str()))
            .map(|(r, s)| {
                (
                    r.clone(),
                    s.slice(start, hours).expect("builtin covers 2022"),
                )
            })
            .collect(),
    );
    let five_min = Resolution::from_minutes(5).expect("5 divides 60");
    let fine = year
        .resample_to(five_min)
        .expect("hourly embeds losslessly");
    let regions: Vec<RegionId> = codes
        .iter()
        .map(|c| fine.id_of(c).expect("bench region"))
        .collect();
    let fine_start = Hour(start.0 * 12);
    let jobs: Vec<Job> = (0..150u64)
        .map(|i| {
            let origin = regions[(i % 5) as usize];
            Job::batch(
                i,
                origin,
                Hour(start.plus(11 + (i as usize / 5) * 263).0 * 12),
                24.0,
                Slack::Week,
            )
            .with_interruptible()
        })
        .collect();
    let horizon = hours * 12;
    h.bench("kernels/sim/subhourly_year_event_driven", || {
        let config = SimConfig::new(fine_start, horizon, 64).with_stepping(Stepping::EventDriven);
        let mut sim = Simulator::new(&fine, &regions, config);
        black_box(sim.run(&mut CarbonAgnostic, &jobs))
    });
    h.bench("kernels/sim/subhourly_year_slot_stepped", || {
        let config = SimConfig::new(fine_start, horizon, 64).with_stepping(Stepping::SlotPerSlot);
        let mut sim = Simulator::new(&fine, &regions, config);
        black_box(sim.run(&mut CarbonAgnostic, &jobs))
    });
    let series = fine.series_by_id(regions[1]);
    let planner = TemporalPlanner::with_resolution(series, five_min);
    let last_start = series.len() - (24 + 168) * 12;
    h.bench("kernels/core/sweep_5min", || {
        let mut acc = 0.0;
        for offset in (0..last_start).step_by(97) {
            let p = planner.best_deferred(Hour(fine_start.0 + offset as u32), 24 * 12, 168 * 12);
            acc += p.cost_g;
        }
        black_box(acc)
    });
}

/// Dataset cold start: parsing the year-long 123-zone CSV export
/// against decoding the equivalent binary trace container (plus the
/// one-time packing cost). Both inputs live in memory, so the rows
/// compare pure parse/decode work with no disk noise.
fn bench_trace_container(h: &Harness) {
    use decarb_traces::time::hours_in_year;
    use decarb_traces::{container, csv, TraceSet};
    let data = builtin_dataset();
    let start = year_start(2022);
    let hours = hours_in_year(2022);
    let year = TraceSet::from_series(
        data.iter()
            .map(|(r, s)| {
                (
                    r.clone(),
                    s.slice(start, hours).expect("builtin covers 2022"),
                )
            })
            .collect(),
    );
    let mut csv_bytes = Vec::new();
    csv::write_dataset(&year, &mut csv_bytes).expect("in-memory write");
    let csv_text = String::from_utf8(csv_bytes).expect("CSV is UTF-8");
    let packed = container::encode(&year).expect("builtin coverage is uniform");
    h.bench("kernels/traces/load_csv", || {
        black_box(csv::read_dataset_str_with(&csv_text, &[]).expect("round-trips"))
    });
    h.bench("kernels/traces/load_container", || {
        black_box(container::decode(&packed, "bench").expect("verifies"))
    });
    h.bench("kernels/traces/pack_container", || {
        black_box(container::encode(&year).expect("builtin coverage is uniform"))
    });
}

/// The shared planner cache against the per-placement rebuild it
/// replaced: one scenario-sized deferral run under each policy, plus a
/// ≥500-scenario matrix sweep through the scenario engine (which shares
/// one cache across every scenario and worker thread).
fn bench_planner_cache(h: &Harness) {
    use decarb_sim::scenario::{OverheadKind, PolicyKind, RegionSet, ScenarioMatrix};
    use decarb_sim::{CachedDeferral, PlannedDeferral, PlannerCache};
    use decarb_workloads::{Arrival, WorkloadSpec};

    let data = builtin_dataset();
    let regions: Vec<RegionId> = RegionSet::Europe.resolve(&data);
    let start = year_start(2022);
    let spec = WorkloadSpec::Batch {
        per_origin: 12,
        arrival: Arrival::fixed(24),
        length_hours: 8.0,
        slack: Slack::Day,
        interruptible: true,
    };
    let jobs = spec.materialize(&regions, start);
    h.bench("kernels/sim/deferral_96jobs_rebuild_per_placement", || {
        let mut sim = Simulator::new(&data, &regions, SimConfig::new(start, 16 * 24, 8));
        black_box(sim.run(&mut PlannedDeferral, &jobs))
    });
    h.bench("kernels/sim/deferral_96jobs_shared_cache", || {
        let cache = PlannerCache::new();
        let mut sim = Simulator::new(&data, &regions, SimConfig::new(start, 16 * 24, 8));
        black_box(sim.run(&mut CachedDeferral::new(&cache), &jobs))
    });
    // A 540-entry matrix (capacity × overhead axes on deferral-heavy
    // policies) through the scenario engine's shared-cache fan-out.
    let matrix = ScenarioMatrix {
        workloads: vec![("batch".to_string(), spec)],
        policies: vec![
            PolicyKind::CarbonAgnostic,
            PolicyKind::PlannedDeferral,
            PolicyKind::ThresholdSuspend,
        ],
        region_sets: RegionSet::ALL.iter().map(|&s| s.into()).collect(),
        overheads: OverheadKind::ALL.to_vec(),
        capacities: vec![
            2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64, 96, 128, 192, 256,
            384, 512, 768, 1024, 2048, 4096, 8192,
        ],
        forecaster: decarb_sim::ForecasterKind::Seasonal,
        slo_ms: decarb_sim::scenario::SPATIOTEMPORAL_SLO_MS,
        start,
        horizon: 16 * 24,
    };
    let scenarios = matrix.expand();
    assert!(
        scenarios.len() >= 500,
        "sweep is {} scenarios",
        scenarios.len()
    );
    h.bench("kernels/sim/matrix_540_shared_cache", || {
        black_box(decarb_sim::run_scenarios(&data, &scenarios))
    });

    // The sweep pipeline's non-simulation stages at the same 540-entry
    // scale: planning (validation + content addressing), partitioning
    // into 8 shards, and merging 4 shard report documents. These are
    // the per-process overheads a sharded multi-process sweep pays on
    // top of raw simulation time.
    use decarb_sim::sweep::{merge_reports, SweepPlan};
    h.bench("kernels/sweep/plan_540", || {
        black_box(SweepPlan::plan(&data, scenarios.clone()).expect("plan validates"))
    });
    let plan = SweepPlan::plan(&data, scenarios.clone()).expect("plan validates");
    h.bench("kernels/sweep/shard_partition_540x8", || {
        let shards: Vec<_> = (0..8)
            .map(|i| plan.shard(8, i).expect("index in range"))
            .collect();
        black_box(shards)
    });
    let shard_docs: Vec<decarb_json::Value> = (0..4)
        .map(|i| {
            let shard = plan.shard(4, i).expect("index in range");
            decarb_json::Value::Array(shard.execute(&data).iter().map(|r| r.to_json()).collect())
        })
        .collect();
    let names = plan.names();
    h.bench("kernels/sweep/merge_540_reports_4shards", || {
        black_box(merge_reports(Some(&names), &shard_docs).expect("shards merge"))
    });
}

/// The placement service's request path at its three depths: the raw
/// planner query (`Snapshot::place`, what the ≥10k decisions/sec
/// budget in ISSUE/BASELINE is about), the full HTTP handler
/// (dispatch + JSON parse/render on top), and the request parser
/// alone — plus the keep-alive connection loop end to end (64
/// pipelined requests through reused buffers), a 64-job batch through
/// one `POST /v1/place`, and the off-path cost a reload pays: building
/// a full 123-zone snapshot with prewarmed planners.
fn bench_serve(h: &Harness) {
    use decarb_serve::{handle_connection, read_request, PlacementService};
    use decarb_sim::{PlaceRequest, Snapshot};
    use std::io::BufReader;

    let data = builtin_dataset();
    let snapshot = Snapshot::build(std::sync::Arc::clone(&data), 1);
    let origins: Vec<RegionId> = ["PL", "DE", "US-CA", "IN-WE", "SE", "AU-NSW", "GB", "FR"]
        .iter()
        .map(|c| data.id_of(c).expect("bench region"))
        .collect();
    let start = year_start(2022);
    // 64 distinct queries cycled per iteration so the row measures a
    // mixed request stream, not one memoized answer.
    let queries: Vec<PlaceRequest> = (0..64)
        .map(|i| PlaceRequest {
            origin: origins[i % origins.len()],
            arrival: start.plus((i * 131) % 8000),
            duration_hours: 1 + i % 12,
            slack_hours: 6 * (i % 5),
            slo_ms: [0.0, 50.0, 150.0, 1000.0][i % 4],
        })
        .collect();
    let cursor = std::cell::Cell::new(0usize);
    h.bench("kernels/serve/place", || {
        let i = cursor.get();
        cursor.set(i + 1);
        black_box(
            snapshot
                .place(&queries[i % queries.len()])
                .expect("in bounds"),
        )
    });

    let service = PlacementService::new(std::sync::Arc::clone(&data));
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| {
            format!(
                r#"{{"origin":"{}","arrival_hour":{},"duration_hours":{},"slack_hours":{},"slo_ms":{}}}"#,
                data.code(q.origin),
                q.arrival.0,
                q.duration_hours,
                q.slack_hours,
                q.slo_ms
            )
        })
        .collect();
    let requests: Vec<decarb_serve::Request> = bodies
        .iter()
        .map(|b| {
            let length = b.len().to_string();
            decarb_serve::Request::synthetic(
                "POST",
                "/v1/place",
                &[("content-length", &length)],
                b.as_bytes(),
            )
        })
        .collect();
    h.bench("kernels/serve/handle_place", || {
        let i = cursor.get();
        cursor.set(i + 1);
        black_box(service.handle(&requests[i % requests.len()]))
    });

    let raw = format!(
        "POST /v1/place HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        bodies[0].len(),
        bodies[0]
    );
    h.bench("kernels/serve/parse_request", || {
        let mut reader = BufReader::new(raw.as_bytes());
        black_box(read_request(&mut reader).expect("well-formed"))
    });

    // The keep-alive connection loop end to end: all 64 queries
    // pipelined over one simulated connection, parsed into reused
    // buffers and answered through `handle_connection` exactly as a
    // live TCP worker would run them. Compare against 64×
    // `handle_place` + 64× `parse_request` to see the loop's own cost.
    let mut pipelined = Vec::new();
    for body in &bodies {
        use std::io::Write as _;
        write!(
            pipelined,
            "POST /v1/place HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .expect("in-memory write");
    }
    h.bench("kernels/serve/keepalive_place", || {
        let mut reader = BufReader::new(pipelined.as_slice());
        let mut sink = std::io::sink();
        black_box(handle_connection(
            &service,
            &mut reader,
            &mut sink,
            u64::MAX,
        ))
    });

    // The same 64 queries as one batch `POST /v1/place` body: a single
    // parse + par_map fan-out + one rendered summary document.
    let batch_body = format!("[{}]", bodies.join(","));
    let length = batch_body.len().to_string();
    let batch_request = decarb_serve::Request::synthetic(
        "POST",
        "/v1/place",
        &[("content-length", &length)],
        batch_body.as_bytes(),
    );
    h.bench("kernels/serve/batch_place", || {
        black_box(service.handle(&batch_request))
    });

    h.bench("kernels/serve/snapshot_build_123z", || {
        black_box(Snapshot::build(std::sync::Arc::clone(&data), 1))
    });
}

fn bench_analyze(h: &Harness) {
    // The static-analysis gate CI runs on every push: lexing + linting
    // the whole workspace (root facade plus every crate's src/ tree),
    // file I/O included — this is the latency a contributor pays for
    // `decarb-cli analyze --workspace`. The second row isolates the
    // token-level lint pass on one in-memory source (a realistic
    // ~40-line module repeated to ~10k lines) so lexer throughput is
    // pinned independently of the filesystem.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives at <root>/crates/bench");
    h.bench("kernels/analyze/workspace", || {
        black_box(decarb_analyze::analyze_workspace(root).expect("workspace scans"))
    });
    let module = "\
fn shift(xs: &[f64], out: &mut Vec<f64>) {\n\
    for (i, x) in xs.iter().enumerate() {\n\
        let scaled = x * 0.5 + (i as f64);\n\
        out.push(scaled.max(0.0));\n\
    }\n\
}\n\
fn window(xs: &[f64]) -> f64 {\n\
    let head = match xs.first() { Some(v) => *v, None => return 0.0 };\n\
    xs.iter().fold(head, |acc, v| acc.min(*v))\n\
}\n";
    let hot = "// decarb-analyze: hot-path\n\
fn hot(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
    let source = format!("{hot}{}", module.repeat(10_000 / module.lines().count()));
    let config = decarb_analyze::LintConfig { no_panic: true };
    h.bench("kernels/analyze/lint_source_10k_lines", || {
        black_box(decarb_analyze::lint_source("bench.rs", &source, &config))
    });
}

fn main() {
    let h = Harness::from_args("kernels");
    bench_kernel_deferral(&h);
    bench_kernel_ksmallest(&h);
    bench_kernel_prefix(&h);
    bench_kernel_period(&h);
    bench_sliding_structure_scaling(&h);
    bench_kernel_sim(&h);
    bench_subhourly(&h);
    bench_region_lookup(&h);
    bench_trace_container(&h);
    bench_planner_cache(&h);
    bench_serve(&h);
    bench_analyze(&h);
    std::process::exit(h.finish());
}
