//! One benchmark group per paper table/figure.
//!
//! Each group first prints the regenerated rows (so a `cargo bench` log is
//! also a full reproduction run), then times the computation behind the
//! figure. Heavyweight sweeps are timed at a representative reduced scale;
//! the printed tables always use the full 123-region dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use decarb_core::capacity::{water_filling, IdleCapacity};
use decarb_core::latency::LatencyMatrix;
use decarb_core::spatial::lower_envelope;
use decarb_core::temporal::TemporalPlanner;
use decarb_experiments::{run_experiment, Context};
use decarb_stats::periodicity::periodicity_score;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::Region;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(Context::default)
}

/// Prints an experiment's tables once, outside any timed section.
fn print_once(id: &str) {
    static PRINTED: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let mut printed = PRINTED.lock().expect("print lock");
    if printed.iter().any(|p| p == id) {
        return;
    }
    printed.push(id.to_string());
    for table in run_experiment(ctx(), id).expect("known experiment id") {
        println!("{table}");
    }
}

fn bench_table1(c: &mut Criterion) {
    print_once("table1");
    c.bench_function("bench_table1/render", |b| {
        b.iter(|| black_box(decarb_experiments::table1::run()))
    });
}

fn bench_fig1(c: &mut Criterion) {
    print_once("fig1");
    c.bench_function("bench_fig1/example_traces", |b| {
        b.iter(|| black_box(decarb_experiments::fig1::run(ctx())))
    });
}

fn bench_fig3(c: &mut Criterion) {
    print_once("fig3a");
    print_once("fig3b");
    let mut group = c.benchmark_group("bench_fig3");
    group.sample_size(10);
    group.bench_function("mean_and_daily_cv", |b| {
        b.iter(|| black_box(decarb_experiments::fig3::run_a(ctx())))
    });
    group.bench_function("drift_and_kmeans", |b| {
        b.iter(|| black_box(decarb_experiments::fig3::run_b(ctx())))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    print_once("fig4");
    let data = ctx().data();
    let start = year_start(2022);
    let len = hours_in_year(2022);
    let window = data
        .series("US-CA")
        .expect("trace")
        .window(start, len)
        .expect("year")
        .to_vec();
    let mut group = c.benchmark_group("bench_fig4");
    group.sample_size(20);
    group.bench_function("periodicity_score_one_region_year", |b| {
        b.iter(|| black_box(periodicity_score(&window, 24)))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    print_once("fig5");
    let means = ctx().data().annual_means(2022);
    let feasible = |_: &Region, _: &Region| true;
    let mut group = c.benchmark_group("bench_fig5");
    group.bench_function("water_filling_123_regions", |b| {
        b.iter(|| {
            black_box(water_filling(
                &means,
                IdleCapacity::Fraction(0.5),
                &feasible,
            ))
        })
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    print_once("fig6a");
    print_once("fig6b");
    let regions = ctx().regions();
    let mut group = c.benchmark_group("bench_fig6");
    group.sample_size(10);
    group.bench_function("latency_matrix_build", |b| {
        b.iter(|| black_box(LatencyMatrix::build(regions)))
    });
    let data = ctx().data();
    let start = year_start(2022);
    group.bench_function("lower_envelope_global_week", |b| {
        b.iter(|| black_box(lower_envelope(data, regions, start, 168)))
    });
    group.finish();
}

/// Times one region's full-year sweep — the unit of work Figs. 7–10 fan
/// out over 123 regions × 7 lengths × slacks.
fn bench_fig7to10(c: &mut Criterion) {
    print_once("fig7");
    print_once("fig8");
    print_once("fig9");
    print_once("fig10");
    let data = ctx().data();
    let planner = TemporalPlanner::new(data.series("DE").expect("trace"));
    let start = year_start(2022);
    let count = hours_in_year(2022);
    let mut group = c.benchmark_group("bench_fig7to10");
    group.sample_size(10);
    group.bench_function("deferral_sweep_year_24h_job_1y_slack", |b| {
        b.iter(|| black_box(planner.deferral_sweep(start, count, 24, 365 * 24)))
    });
    group.bench_function("interruptible_sweep_year_24h_job_1y_slack", |b| {
        b.iter(|| black_box(planner.interruptible_sweep(start, count, 24, 365 * 24)))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    print_once("fig11a");
    print_once("fig11b");
    print_once("fig11cd");
    let data = ctx().data();
    let mut group = c.benchmark_group("bench_fig11");
    group.sample_size(10);
    group.bench_function("mixed_workload_sweep", |b| {
        b.iter(|| {
            black_box(decarb_core::mixed::migratable_sweep(
                data,
                &[0.0, 0.5, 1.0],
                2022,
            ))
        })
    });
    let base = data
        .series("US-CA")
        .expect("trace")
        .slice(year_start(2022), hours_in_year(2022))
        .expect("year");
    group.bench_function("greener_trace_transform_year", |b| {
        b.iter(|| black_box(decarb_core::greener::greener_trace(&base, 0.5, -8)))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    print_once("fig12");
    let data = ctx().data();
    let region = data.region("US-CA").expect("region");
    let mut group = c.benchmark_group("bench_fig12");
    group.sample_size(10);
    group.bench_function("combined_shift_one_destination", |b| {
        b.iter(|| {
            black_box(decarb_core::combined::combined_shift(
                data, region, 2022, 24, 24,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7to10,
    bench_fig11,
    bench_fig12
);
criterion_main!(figures);
