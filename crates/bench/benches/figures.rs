//! One benchmark group per paper table/figure.
//!
//! Figure-level timings go through the experiment registry (the same
//! uniform pipeline `repro` and `decarb-cli run` use); kernel-scale
//! rows below time the computation behind the figure directly. With
//! `DECARB_BENCH_PRINT=1` each group first prints the regenerated
//! tables, so a bench log doubles as a reproduction run.

use std::hint::black_box;
use std::sync::OnceLock;

use decarb_bench::{print_tables, Harness};
use decarb_core::capacity::{water_filling, IdleCapacity};
use decarb_core::latency::LatencyMatrix;
use decarb_core::spatial::lower_envelope;
use decarb_core::temporal::TemporalPlanner;
use decarb_experiments::{registry, Context};
use decarb_stats::periodicity::periodicity_score;
use decarb_traces::time::{hours_in_year, year_start};
use decarb_traces::Region;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(Context::default)
}

/// Prints an experiment's tables once, outside any timed section.
fn print_once(id: &str) {
    if !print_tables() {
        return;
    }
    static PRINTED: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let mut printed = PRINTED.lock().expect("print lock");
    if printed.iter().any(|p| p == id) {
        return;
    }
    printed.push(id.to_string());
    let experiment = registry::find(id).expect("known experiment id");
    for table in experiment.run(ctx()) {
        println!("{table}");
    }
}

/// Times one registry experiment end-to-end.
fn bench_experiment(h: &Harness, id: &str) {
    print_once(id);
    let experiment = registry::find(id).expect("known experiment id");
    h.bench(&format!("figures/registry/{id}"), || {
        black_box(experiment.run(ctx()))
    });
}

fn bench_fig4_kernel(h: &Harness) {
    let data = ctx().data();
    let start = year_start(2022);
    let len = hours_in_year(2022);
    let window = data
        .series("US-CA")
        .expect("trace")
        .window(start, len)
        .expect("year")
        .to_vec();
    h.bench("figures/kernel/periodicity_score_one_region_year", || {
        black_box(periodicity_score(&window, 24))
    });
}

fn bench_fig5_kernel(h: &Harness) {
    let means = ctx().data().annual_means(2022);
    let feasible = |_: &Region, _: &Region| true;
    h.bench("figures/kernel/water_filling_123_regions", || {
        black_box(water_filling(
            &means,
            IdleCapacity::Fraction(0.5),
            &feasible,
        ))
    });
}

fn bench_fig6_kernels(h: &Harness) {
    let regions: Vec<&decarb_traces::Region> = ctx().regions().iter().collect();
    h.bench("figures/kernel/latency_matrix_build", || {
        black_box(LatencyMatrix::build(&regions))
    });
    let data = ctx().data();
    let start = year_start(2022);
    h.bench("figures/kernel/lower_envelope_global_week", || {
        black_box(lower_envelope(data, &regions, start, 168))
    });
}

/// Times one region's full-year sweep — the unit of work Figs. 7–10 fan
/// out over 123 regions × 7 lengths × slacks.
fn bench_fig7to10_kernels(h: &Harness) {
    let data = ctx().data();
    let planner = TemporalPlanner::new(data.series("DE").expect("trace"));
    let start = year_start(2022);
    let count = hours_in_year(2022);
    h.bench(
        "figures/kernel/deferral_sweep_year_24h_job_1y_slack",
        || black_box(planner.deferral_sweep(start, count, 24, 365 * 24)),
    );
    h.bench(
        "figures/kernel/interruptible_sweep_year_24h_job_1y_slack",
        || black_box(planner.interruptible_sweep(start, count, 24, 365 * 24)),
    );
}

fn bench_fig11_kernels(h: &Harness) {
    let data = ctx().data();
    h.bench("figures/kernel/mixed_workload_sweep", || {
        black_box(decarb_core::mixed::migratable_sweep(
            data,
            &[0.0, 0.5, 1.0],
            2022,
        ))
    });
    let base = data
        .series("US-CA")
        .expect("trace")
        .slice(year_start(2022), hours_in_year(2022))
        .expect("year");
    h.bench("figures/kernel/greener_trace_transform_year", || {
        black_box(decarb_core::greener::greener_trace(&base, 0.5, -8))
    });
}

fn bench_fig12_kernel(h: &Harness) {
    let data = ctx().data();
    let region = data.region("US-CA").expect("region");
    h.bench("figures/kernel/combined_shift_one_destination", || {
        black_box(decarb_core::combined::combined_shift(
            data, region, 2022, 24, 24,
        ))
    });
}

fn main() {
    let h = Harness::from_args("figures");
    for id in [
        "table1", "fig1", "fig3a", "fig3b", "fig4", "fig5", "fig6a", "fig6b", "fig7", "fig8",
        "fig9", "fig10", "fig11a", "fig11b", "fig11cd", "fig12",
    ] {
        bench_experiment(&h, id);
    }
    bench_fig4_kernel(&h);
    bench_fig5_kernel(&h);
    bench_fig6_kernels(&h);
    bench_fig7to10_kernels(&h);
    bench_fig11_kernels(&h);
    bench_fig12_kernel(&h);
    std::process::exit(h.finish());
}
